"""Rendering: ASCII/DOT lattice views and the paper's tables as text."""

from .ascii_art import render_diff, render_lattice, render_levels, render_type_card
from .dot import to_dot
from .tables import (
    format_table,
    render_comparison,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "render_lattice",
    "render_diff",
    "render_levels",
    "render_type_card",
    "to_dot",
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_comparison",
]
