"""Programmatic regeneration of the paper's Tables 1-3 and the Section 5
comparison, as formatted text.

Each ``render_*`` function reproduces one table from live library state
(not hard-coded prose): Table 1 walks the axiomatic terms, Table 2 prints
the registered axioms with their formulas and current status on a given
lattice, Table 3 is rendered from the operation registry of
:mod:`repro.tigukat.evolution`, and the comparison table from
:func:`repro.systems.compare_systems`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

from ..core.axioms import ALL_AXIOMS
from ..tigukat.evolution import OPERATION_TABLE

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice
    from ..systems.base import ReducibleSystem

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_comparison",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Plain monospace table with column sizing and a header rule."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), rule, *map(line, rows)])


#: Table 1's term descriptions, keyed by the notation.
_TABLE1_TERMS: tuple[tuple[str, str], ...] = (
    ("T", "The lattice of all types in the system."),
    ("s, t, ⊤, ⊥", "Type elements of T."),
    ("P(t)", "Immediate supertypes of type t."),
    ("Pe(t)", "Essential supertypes of type t."),
    ("PL(t)", "Supertype lattice of type t."),
    ("N(t)", "Native properties of type t."),
    ("H(t)", "Inherited properties of type t."),
    ("Ne(t)", "Essential properties of type t."),
    ("I(t)", "Interface of type t."),
    ("α_x(f, T')", "Apply-all operation."),
)


def render_table1(lattice: "TypeLattice | None" = None,
                  example_type: str | None = None) -> str:
    """Table 1 (notation), optionally instantiated on a concrete type."""
    rows: list[list[str]] = []
    for term, description in _TABLE1_TERMS:
        row = [term, description]
        if lattice is not None and example_type is not None:
            row.append(_example_value(lattice, example_type, term))
        rows.append(row)
    headers = ["Term", "Description"]
    if lattice is not None and example_type is not None:
        headers.append(f"Value at t = {example_type}")
    return format_table(headers, rows)


def _example_value(lattice: "TypeLattice", t: str, term: str) -> str:
    if term == "T":
        return f"|T| = {len(lattice)}"
    if term.startswith("s, t"):
        return f"⊤={lattice.root or '—'}, ⊥={lattice.base or '—'}"
    value = {
        "P(t)": lambda: sorted(lattice.p(t)),
        "Pe(t)": lambda: sorted(lattice.pe(t)),
        "PL(t)": lambda: sorted(lattice.pl(t)),
        "N(t)": lambda: sorted(str(p) for p in lattice.n(t)),
        "H(t)": lambda: sorted(str(p) for p in lattice.h(t)),
        "Ne(t)": lambda: sorted(str(p) for p in lattice.ne(t)),
        "I(t)": lambda: sorted(str(p) for p in lattice.interface(t)),
    }.get(term)
    if value is None:
        return "(operator)"
    return "{" + ", ".join(value()) + "}"


def render_table2(lattice: "TypeLattice | None" = None) -> str:
    """Table 2 (the axioms), optionally with their status on a lattice."""
    rows: list[list[str]] = []
    for axiom in ALL_AXIOMS:
        row = [
            str(axiom.number),
            axiom.name + (" (relaxable)" if axiom.relaxable else ""),
            axiom.formula,
        ]
        if lattice is not None:
            violations = axiom.check(lattice)
            row.append("holds" if not violations else f"{len(violations)} violation(s)")
        rows.append(row)
    headers = ["#", "Axiom", "Formula"]
    if lattice is not None:
        headers.append("Status")
    return format_table(headers, rows)


def render_table3() -> str:
    """Table 3 (classification of schema changes), from the registry.

    Bold (schema evolution) entries render with ``**``, emphasized
    (non-schema) entries in plain text — matching the paper's typography.
    """
    # The paper's category letters (Collection is L, not C).
    letters = {
        "Type": "T", "Class": "C", "Behavior": "B",
        "Function": "F", "Collection": "L", "Other": "O",
    }
    categories = ["Type", "Class", "Behavior", "Function", "Collection", "Other"]
    kinds = ["Add", "Drop", "Modify"]
    rows: list[list[str]] = []
    for category in categories:
        row = [f"{category} ({letters[category]})"]
        for kind in kinds:
            cells = [
                str(e) for e in OPERATION_TABLE
                if e.category == category and e.kind == kind
            ]
            row.append("; ".join(cells))
        rows.append(row)
    return format_table(["Objects", "Add (A)", "Drop (D)", "Modify (M)"], rows)


def render_comparison(*systems: "ReducibleSystem") -> str:
    """The Section 5 comparison as a flags × systems table."""
    from ..systems.base import compare_systems

    table = compare_systems(*systems)
    names = [s.profile.name for s in systems]
    rows = [
        [flag, *("yes" if table[flag].get(n) else "no" for n in names)]
        for flag in table
    ]
    return format_table(["capability", *names], rows)
