"""Graphviz DOT output for lattices (minimal or essential edge views)."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["to_dot"]


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    lattice: "TypeLattice",
    use_essential: bool = False,
    highlight: frozenset[str] | set[str] = frozenset(),
    name: str = "lattice",
) -> str:
    """The lattice as a DOT digraph (subtype → supertype arrows, matching
    the paper's arrow convention: tail = subtype, head = supertype).

    ``use_essential=False`` (default) draws the minimal ``P`` edges —
    the Section 5 recommendation for lattice display.  ``highlight``
    marks types (e.g. those touched by the last operation).
    """
    lines = [
        f"digraph {name} {{",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for t in sorted(lattice.types()):
        attrs = ""
        if t in highlight:
            attrs = ' [style=filled, fillcolor="lightgrey"]'
        lines.append(f"  {_quote(t)}{attrs};")
    for t in sorted(lattice.types()):
        supers = lattice.pe(t) if use_essential else lattice.p(t)
        for s in sorted(supers):
            lines.append(f"  {_quote(t)} -> {_quote(s)};")
    lines.append("}")
    return "\n".join(lines)
