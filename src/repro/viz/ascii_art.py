"""ASCII rendering of type lattices (Figures 1 and 2 regenerated).

The Section 5 display claim — "a user would only need to see the minimal
subtype relationships in order to understand the complete functionality
of a type" — is reflected in the default: lattices render through the
derived ``P`` edges (the transitive reduction), not the raw ``Pe``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["render_lattice", "render_levels", "render_type_card", "render_diff"]


def render_lattice(
    lattice: "TypeLattice",
    root: str | None = None,
    use_essential: bool = False,
    max_depth: int = 30,
) -> str:
    """Indented downward tree from the root; shared subtrees repeat with
    an ellipsis marker after their first expansion."""
    start = root if root is not None else (lattice.root or _pick_root(lattice))
    if start is None:
        return "(empty lattice)"
    lines: list[str] = []
    expanded: set[str] = set()

    def children(t: str) -> list[str]:
        if use_essential:
            return sorted(lattice.essential_subtypes(t))
        return sorted(lattice.subtypes(t))

    def walk(t: str, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if not prefix and not lines else ("└── " if is_last else "├── ")
        marker = ""
        first_time = t not in expanded
        if not first_time:
            marker = " (…)"
        lines.append(f"{prefix}{connector}{t}{marker}")
        if not first_time or depth >= max_depth:
            return
        expanded.add(t)
        kids = children(t)
        extension = "    " if is_last or not prefix and len(lines) == 1 else "│   "
        child_prefix = prefix + ("" if not prefix and len(lines) == 1 else extension)
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, depth + 1)

    walk(start, "", True, 0)
    return "\n".join(lines)


def _pick_root(lattice: "TypeLattice") -> str | None:
    roots = sorted(t for t in lattice.types() if not lattice.p(t))
    return roots[0] if roots else None


def render_levels(lattice: "TypeLattice") -> str:
    """The lattice by depth level (root at top, base at bottom) — the
    layout of the paper's Figure 1."""
    from ..core.soundness import Oracle

    strata = Oracle(lattice).strata()
    width = max(
        (len("   ".join(sorted(level))) for level in strata), default=0
    )
    lines: list[str] = []
    for level in strata:
        row = "   ".join(sorted(level))
        lines.append(row.center(width))
    return "\n".join(lines)


def render_type_card(lattice: "TypeLattice", type_name: str) -> str:
    """A one-type summary card showing every term of Table 1."""
    lines = [
        f"type {type_name}",
        f"  Pe(t) = {sorted(lattice.pe(type_name))}",
        f"  P(t)  = {sorted(lattice.p(type_name))}",
        f"  PL(t) = {sorted(lattice.pl(type_name))}",
        f"  Ne(t) = {sorted(str(p) for p in lattice.ne(type_name))}",
        f"  N(t)  = {sorted(str(p) for p in lattice.n(type_name))}",
        f"  H(t)  = {sorted(str(p) for p in lattice.h(type_name))}",
        f"  I(t)  = {sorted(str(p) for p in lattice.interface(type_name))}",
    ]
    return "\n".join(lines)


def render_diff(diff) -> str:
    """Human-oriented rendering of a :class:`~repro.core.minimality.LatticeDiff`.

    Structured like a code review: type-level adds/removes first, then
    per-type supertype and interface deltas with +/- markers.
    """
    if diff.identical:
        return "(no differences)"
    lines: list[str] = []
    for t in sorted(diff.only_left):
        lines.append(f"- type {t}")
    for t in sorted(diff.only_right):
        lines.append(f"+ type {t}")
    for t, (left, right) in sorted(diff.edge_changes.items()):
        for s in sorted(left - right):
            lines.append(f"  {t}: - supertype {s}")
        for s in sorted(right - left):
            lines.append(f"  {t}: + supertype {s}")
    for t, (left, right) in sorted(diff.interface_changes.items()):
        for p in sorted(left - right):
            lines.append(f"  {t}: - behavior {p}")
        for p in sorted(right - left):
            lines.append(f"  {t}: + behavior {p}")
    return "\n".join(lines)
