"""Reproduction of Peters & Özsu, "Axiomatization of Dynamic Schema
Evolution in Objectbases" (ICDE 1995).

Subpackages
-----------
``repro.api``
    The stable facade: :class:`repro.api.Objectbase` — open/in-memory
    construction, the eight evolution operations, batched transactions,
    axiom checks, impact analysis, normalization, term-card queries,
    declarative migration (:meth:`~repro.api.Objectbase.migrate_to`).
``repro.ddl``
    Schema-as-code: a small text DDL for declaring target schemas, a
    round-trip-stable pretty-printer, and the differ that compiles a
    declared schema into a minimal evolution plan.
``repro.core``
    The axiomatic model: type lattice, the nine axioms, derivation engine,
    soundness/completeness oracle, evolution operations, journal.
``repro.tigukat``
    The TIGUKAT uniform behavioral objectbase substrate and its schema
    evolution policies (paper Section 3).
``repro.orion``
    The Orion model, its invariants, operations OP1-OP8, and their
    reduction to the axiomatic model (paper Section 4).
``repro.systems``
    GemStone / Encore / Sherpa reductions and the cross-system comparison
    interface (paper Sections 4-5).
``repro.propagation``
    Change propagation (screening, conversion, filtering, migration,
    temporal versions) — the companion problem the paper defers.
``repro.analysis``
    Workload generation, order-independence experiments, complexity study.
``repro.staticcheck``
    Static analysis: symbolic plan dry-runs, pluggable diagnostics
    registry, Orion-vs-TIGUKAT order-dependence detection, SARIF output.
``repro.storage``
    Snapshot and write-ahead journal persistence.
``repro.viz``
    ASCII/DOT lattice rendering and regeneration of the paper's tables.
"""

from . import (
    analysis,
    api,
    core,
    ddl,
    orion,
    propagation,
    query,
    staticcheck,
    storage,
    systems,
    tigukat,
    viz,
)
from .api import MigrationResult, Objectbase
from .ddl import diff_schemas, parse_schema, print_schema, schema_from
from .core import (
    LatticePolicy,
    Property,
    TypeLattice,
    build_figure1_lattice,
    check_all,
    prop,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "Objectbase",
    "MigrationResult",
    "core",
    "ddl",
    "parse_schema",
    "print_schema",
    "diff_schemas",
    "schema_from",
    "tigukat",
    "orion",
    "systems",
    "propagation",
    "query",
    "analysis",
    "staticcheck",
    "storage",
    "viz",
    "TypeLattice",
    "LatticePolicy",
    "Property",
    "prop",
    "build_figure1_lattice",
    "check_all",
    "verify",
    "__version__",
]
