"""A stdlib-only HTTP/JSON service over :class:`ConcurrentObjectbase`.

``repro serve`` (or :func:`serve`) turns one objectbase into a small,
operable network service — :class:`~http.server.ThreadingHTTPServer`
(one thread per connection), no dependencies beyond the standard
library.  The contract:

==========================  =============================================
endpoint                    semantics
==========================  =============================================
``GET /healthz``            liveness: 200 while the process serves at all
``GET /readyz``             readiness: 200 ``{"ready": true}``, or 503
                            with structured ``reasons`` (degraded,
                            draining, replica-too-stale, ...) and a
                            ``Retry-After`` header
``GET /metrics``            Prometheus text exposition 0.0.4
``GET /v1/replication``     replication role + status (standalone /
                            primary / replica)
``GET /v1/types``           all type names (from the current snapshot)
``GET /v1/types/<name>``    one type's full Table-1 term card
``GET /v1/schema``          the schema as canonical DDL text
                            (``text/plain``; generation in the
                            ``X-Schema-Generation`` header)
``POST /v1/apply``          one operation: ``{"op": {"code": "AT", ...}}``
``POST /v1/batch``          atomic group: ``{"operations": [...],
                            "verify": true}``
``POST /v1/migrate``        declarative migration: ``{"schema": "<DDL>",
                            "dry_run": false}`` — differ + lint gate
                            under the write lock
``POST /v1/undo``           revert the most recent operation
``POST /v1/recover``        heal the WAL, leave degraded mode
==========================  =============================================

Reads are lock-free (served from the published snapshot); writes
serialize through the store's fair single-writer lock.  Failure modes
map to status codes via the machine-readable error taxonomy:

* ``lock-timeout`` → **503** with ``Retry-After`` (safe to retry:
  the request was never admitted);
* ``degraded-mode`` → **503** (the store is read-only; ``/readyz``
  reports not-ready until ``POST /v1/recover`` or ``repro recover``);
* ``unknown-type`` / ``unknown-property`` → **404**;
* malformed JSON / unknown operation code / malformed DDL text
  (``ddl-syntax`` / ``ddl-invalid``) → **400**;
* any other :class:`~repro.core.errors.EvolutionError` (cycle,
  root-violation, axiom failure at commit, ...) → **409** — the request
  was well-formed, the schema rejected it;
* ``lint-rejected`` / ``plan-interference`` → **409** with the analyzer
  diagnostics under ``error.diagnostics`` (see below);
* write admission beyond ``max_inflight`` queued writers → **429**
  (load shed before touching the lock);
* ``read-only-replica`` / ``lease-lost`` → **503** with ``Retry-After``
  (this node cannot take writes; the body names the primary).

Every 503, whatever produced it, carries a ``Retry-After`` header; GET
responses carry the service's read headers (``X-Schema-Generation``,
plus ``X-Replica-Lag`` on replicas), so a poller can watch catch-up
without parsing bodies.

**Replica mode.**  :class:`ReplicaService` serves the same read
endpoints from a :class:`~repro.replication.replica.ReplicaStore`,
refuses every write with ``503 read-only-replica`` pointing at the
primary, and folds replication health (initial sync, staleness bound)
into ``/readyz``.  See ``docs/replication.md``.

Every response carries ``{"error": {"code": ..., "message": ...}}`` on
failure, so clients branch on the same codes the CLI exits with.

**Admission-time lint gate.**  With ``lint="warn"`` or ``"error"``
(``repro serve --lint``), every write is statically analyzed *under the
write lock* against exactly the schema it would execute against, before
anything is mutated.  Plan-scope findings at or above the configured
threshold veto the write with ``409 lint-rejected`` and the diagnostics
in the body.  A batch may additionally declare ``"expect_generation"``:
the snapshot generation the client planned against.  The service keeps
the effect summaries of recently committed writes; if any write
committed at or after that generation has effects overlapping the
incoming operations', the request is rejected with ``409
plan-interference`` — the optimistic-concurrency twin of the static
``cross-plan-interference`` rule (:func:`repro.staticcheck.analyze_pair`).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import TYPE_CHECKING

from collections import deque

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import weight
    from .replication.primary import ReplicationServer
    from .replication.replica import ReplicaStore, ReplicationClient

from .concurrent import ConcurrentObjectbase
from .api import MIGRATE_LINT_MODES
from .core.errors import (
    DDLError,
    DegradedModeError,
    EvolutionError,
    LeaseError,
    LintRejectedError,
    LockTimeoutError,
    PlanInterferenceError,
    ReadOnlyReplicaError,
    UnknownPropertyError,
    UnknownTypeError,
    error_code,
)
from .core.operations import operation_from_dict
from .ddl.parser import parse_schema
from .obs.metrics import PROMETHEUS_CONTENT_TYPE, REGISTRY
from .obs.tracing import trace
from .staticcheck.analyzer import analyze
from .staticcheck.effects import conflict_witness, plan_summaries
from .staticcheck.plan import EvolutionPlan
from .staticcheck.registry import Severity

__all__ = [
    "ObjectbaseService",
    "ReplicaService",
    "make_server",
    "serve",
    "serve_service",
]

logger = logging.getLogger(__name__)

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, route template, and status",
    labelnames=("method", "route", "status"),
)
_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request latency by route template",
    labelnames=("route",),
)
_HTTP_INFLIGHT = REGISTRY.gauge(
    "repro_http_inflight_writes",
    "Write requests currently admitted (holding an admission slot)",
)
_HTTP_SHED = REGISTRY.counter(
    "repro_http_shed_total",
    "Requests shed by write admission control (HTTP 429)",
)
_LINT_GATE_RUNS = REGISTRY.counter(
    "repro_lint_gate_runs_total",
    "Writes analyzed by the admission-time lint gate",
)
_LINT_GATE_REJECTIONS = REGISTRY.counter(
    "repro_lint_gate_rejections_total",
    "Writes vetoed by the lint gate (HTTP 409 lint-rejected), by mode",
    labelnames=("mode",),
)
_INTERFERENCE_REJECTIONS = REGISTRY.counter(
    "repro_lint_interference_rejections_total",
    "Writes vetoed by the effect-summary interference check "
    "(HTTP 409 plan-interference)",
)


def status_for(exc: BaseException) -> int:
    """The HTTP status an error maps to (see the module docstring)."""
    if isinstance(
        exc,
        (LockTimeoutError, DegradedModeError, ReadOnlyReplicaError,
         LeaseError),
    ):
        # All four are "not here, not now" conditions: the request was
        # never admitted, the state is intact, and a retry (possibly
        # against a different node) is safe — so every one of them
        # carries a Retry-After.
        return 503
    if isinstance(exc, (UnknownTypeError, UnknownPropertyError)):
        return 404
    if isinstance(exc, DDLError):
        # The request's schema text was malformed or self-inconsistent:
        # a client error, not a schema conflict.
        return 400
    if isinstance(exc, EvolutionError):
        return 409
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return 400
    return 500


#: Valid settings of the admission-time lint gate.
LINT_MODES = ("off", "warn", "error")


class ObjectbaseService:
    """The store plus the service policy (admission control, timeouts,
    and the optional admission-time lint gate).

    ``lint`` sets the gate threshold: ``"off"`` (default) admits
    everything, ``"error"`` vetoes writes with plan-scope ERROR
    findings, ``"warn"`` vetoes at WARNING and above.
    ``interference_history`` bounds how many committed writes' effect
    summaries are retained for the ``expect_generation`` interference
    check.
    """

    def __init__(
        self,
        store: ConcurrentObjectbase,
        *,
        max_inflight: int = 8,
        lint: str = "off",
        interference_history: int = 64,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if lint not in LINT_MODES:
            raise ValueError(f"lint must be one of {LINT_MODES}, not {lint!r}")
        self.store = store
        self.max_inflight = max_inflight
        self.lint = lint
        #: Set by :func:`serve_service` while the process shuts down, so
        #: ``/readyz`` turns away new traffic before the listener closes.
        self.draining = False
        #: Attached by ``repro serve --replication-port``: the
        #: :class:`~repro.replication.primary.ReplicationServer` whose
        #: shippers :meth:`notify_commit` wakes after each write.
        self.replication: ReplicationServer | None = None
        self._admission = threading.Semaphore(max_inflight)
        #: (base generation, effect summaries) of recently committed
        #: gated writes, oldest first.  Appended after a successful
        #: commit; read inside the gate (under the write lock).
        self._recent: deque = deque(maxlen=max(1, interference_history))

    # -- the admission-time lint gate -------------------------------------

    def _make_gate(self, ops: list, expect) -> tuple:
        """(gate callable or None, record-on-commit callable).

        The gate runs under the store's write lock against the live
        lattice; ``record()`` must be called by the handler *after* the
        write committed, so failed writes leave no history entry.
        """
        if expect is not None and (
            isinstance(expect, bool) or not isinstance(expect, int)
        ):
            raise ValueError('"expect_generation" must be an integer')
        if self.lint == "off" and expect is None:
            return None, lambda: None
        pending: list[tuple[int, list]] = []

        def gate(lattice) -> None:
            _LINT_GATE_RUNS.inc()
            summaries = plan_summaries(lattice, ops)
            if expect is not None:
                self._check_interference(lattice, summaries, expect)
            if self.lint != "off":
                self._check_lint(lattice, ops)
            pending.append((lattice.generation, summaries))

        def record() -> None:
            if pending:
                self._recent.append(pending[0])

        return gate, record

    def _check_lint(self, lattice, ops: list) -> None:
        """Veto when plan-scope findings reach the configured threshold.

        Only *plan* findings gate: pre-existing schema-state advisories
        (a shadowed name that was already there) must not block every
        subsequent write.
        """
        report = analyze(lattice, EvolutionPlan(ops, name="request"))
        threshold = (
            Severity.ERROR if self.lint == "error" else Severity.WARNING
        )
        offending = [
            d for d in report.diagnostics
            if d.step is not None and d.severity >= threshold
        ]
        if not offending:
            return
        _LINT_GATE_REJECTIONS.labels(mode=self.lint).inc()
        raise LintRejectedError(
            f"rejected by the lint gate (--lint {self.lint}): "
            f"{len(offending)} finding(s) at or above {threshold}",
            [_diag_dict(d) for d in offending],
        )

    def _check_interference(self, lattice, summaries: list, expect: int) -> None:
        """Veto when effects overlap a write committed since ``expect``."""
        if expect < 0 or expect > lattice.generation:
            raise ValueError(
                f'"expect_generation" {expect} is not a generation this '
                f"store has published (current: {lattice.generation})"
            )
        entries = list(self._recent)
        if (
            entries
            and len(entries) == self._recent.maxlen
            and expect < entries[0][0]
        ):
            _INTERFERENCE_REJECTIONS.inc()
            raise PlanInterferenceError(
                f"expect_generation {expect} predates the retained "
                f"interference history (floor {entries[0][0]}); re-read "
                f"the schema and rebase the plan"
            )
        conflicts: list[dict] = []
        for base_gen, prior in entries:
            if base_gen < expect:
                continue  # committed before the client's read: visible
            for i, sa in enumerate(prior):
                for j, sb in enumerate(summaries):
                    witness = conflict_witness(sa, sb)
                    if witness:
                        conflicts.append({
                            "rule": "cross-plan-interference",
                            "severity": "error",
                            "step": j,
                            "message": (
                                f"operation {j} "
                                f"({sb.operation.describe()}) conflicts "
                                f"with operation {i} of the write "
                                f"committed at generation {base_gen} on "
                                + ", ".join(
                                    "/".join(str(p) for p in c)
                                    for c in sorted(witness)[:4]
                                )
                            ),
                        })
        if conflicts:
            _INTERFERENCE_REJECTIONS.inc()
            raise PlanInterferenceError(
                f"{len(conflicts)} effect conflict(s) with writes "
                f"committed since generation {expect}; re-read the "
                f"schema and rebase the plan",
                conflicts,
            )

    # -- write admission --------------------------------------------------

    def admit(self) -> bool:
        """Claim one write slot without blocking; False sheds the request."""
        admitted = self._admission.acquire(blocking=False)
        if admitted:
            _HTTP_INFLIGHT.inc()
        else:
            _HTTP_SHED.inc()
        return admitted

    def release(self) -> None:
        _HTTP_INFLIGHT.dec()
        self._admission.release()

    # -- request handlers (return (status, body_dict[, headers])) ---------

    def healthz(self) -> tuple[int, dict]:
        return 200, {"status": "ok"}

    def ready_reasons(self) -> list[dict]:
        """Structured unreadiness: ``[{"code", "message"}, ...]``.

        Empty means ready.  Subclasses extend this (replicas add
        sync/staleness reasons) rather than overriding :meth:`readyz`,
        so the wire shape stays uniform.
        """
        reasons: list[dict] = []
        if self.draining:
            reasons.append({
                "code": "draining",
                "message": "server is draining before shutdown",
            })
        if self.store.degraded:
            reasons.append({
                "code": "degraded",
                "message": "store is in read-only degraded mode",
            })
        return reasons

    def readyz(self) -> tuple[int, dict]:
        reasons = self.ready_reasons()
        if reasons:
            # "reason" (the first message) predates the structured list
            # and stays for old probes; new ones branch on the codes.
            return 503, {
                "ready": False,
                "reason": reasons[0]["message"],
                "reasons": reasons,
            }
        return 200, {"ready": True}

    def read_headers(self) -> dict[str, str]:
        """Headers attached to every GET response (position telemetry)."""
        return {
            "X-Schema-Generation": str(self.store.snapshot.generation),
        }

    def replication_status(self) -> tuple[int, dict]:
        if self.replication is None:
            return 200, {"role": "standalone"}
        hub = self.replication
        host, port = hub.address
        return 200, {
            "role": "primary",
            "epoch": hub.epoch,
            "address": f"{host}:{port}",
            "position": str(hub.source.state().position),
            "connected_replicas": hub.connected_replicas,
        }

    def notify_commit(self) -> None:
        """Wake replication shippers after a committed write (no-op when
        replication is not attached)."""
        if self.replication is not None:
            self.replication.notify()

    def list_types(self) -> tuple[int, dict]:
        snap = self.store.snapshot
        return 200, {
            "types": sorted(snap.types()),
            "generation": snap.generation,
        }

    def get_type(self, name: str) -> tuple[int, dict]:
        return 200, self.store.card(name).as_dict()

    def apply(self, body: dict) -> tuple[int, dict]:
        op = operation_from_dict(body.get("op", body))
        gate, record = self._make_gate([op], body.get("expect_generation"))
        result = self.store.apply(op, gate=gate)
        record()
        return 200, {"applied": op.code, "changed": result.changed}

    def batch(self, body: dict) -> tuple[int, dict]:
        raw = body.get("operations")
        if not isinstance(raw, list):
            raise ValueError('"operations" must be a list of operations')
        ops = [operation_from_dict(d) for d in raw]
        gate, record = self._make_gate(ops, body.get("expect_generation"))
        results = self.store.apply_batch(
            ops, verify_on_commit=bool(body.get("verify", True)), gate=gate
        )
        record()
        return 200, {
            "applied": len(results),
            "changed": sum(1 for r in results if r.changed),
        }

    def schema(self) -> tuple[str, int]:
        """(canonical DDL text, generation), from one snapshot."""
        snap = self.store.snapshot
        from .ddl.differ import schema_from
        from .ddl.printer import print_schema

        return print_schema(schema_from(snap)), snap.generation

    def migrate(self, body: dict) -> tuple[int, dict]:
        """Declarative migration: differ + lint gate under the write lock.

        Body: ``{"schema": "<DDL text>", "dry_run": false, "lint":
        "error", "expect_generation": <int>}`` — only ``schema`` is
        required.  The differ and the lint gate run while the write lock
        is held, so the computed delta executes against exactly the
        schema it was diffed from; ``expect_generation`` additionally
        rejects the migration when a write committed since the client's
        read has overlapping effects (``409 plan-interference``).
        """
        schema_text = body.get("schema")
        if not isinstance(schema_text, str):
            raise ValueError('"schema" must be a string of DDL text')
        target = parse_schema(schema_text)
        dry_run = bool(body.get("dry_run", False))
        # Migrations default to the strictest gate; the service-wide
        # --lint mode only tightens ("warn" gates at WARNING).
        lint = body.get("lint", "warn" if self.lint == "warn" else "error")
        if lint not in MIGRATE_LINT_MODES:
            raise ValueError(
                f'"lint" must be one of {MIGRATE_LINT_MODES}, not {lint!r}'
            )
        gate, record = self._migrate_gate(body.get("expect_generation"))
        result = self.store.migrate_to(
            target, dry_run=dry_run, lint=lint, gate=gate
        )
        if result.applied:
            record()
        return 200, {
            "applied": result.applied,
            "operations": [op.to_dict() for op in result.plan],
            "changed": sum(1 for r in result.results if r.changed),
            "findings": result.report.summary(),
            "generation": self.store.snapshot.generation,
        }

    def _migrate_gate(self, expect) -> tuple:
        """The interference/effect-recording gate for :meth:`migrate`.

        Unlike :meth:`_make_gate`, the operations are not known until
        the differ has run under the lock — the gate receives the
        computed plan from :meth:`~repro.api.Objectbase.migrate_to`.
        """
        if expect is not None and (
            isinstance(expect, bool) or not isinstance(expect, int)
        ):
            raise ValueError('"expect_generation" must be an integer')
        pending: list[tuple[int, list]] = []

        def gate(lattice, plan) -> None:
            summaries = plan_summaries(lattice, list(plan.operations))
            if expect is not None:
                self._check_interference(lattice, summaries, expect)
            pending.append((lattice.generation, summaries))

        def record() -> None:
            if pending:
                self._recent.append(pending[0])

        return gate, record

    def undo(self) -> tuple[int, dict]:
        entry = self.store.undo()
        return 200, {"undone": entry.operation.code}

    def recover(self) -> tuple[int, dict]:
        report = self.store.recover()
        return 200, {
            "degraded": self.store.degraded,
            "recovery": report.summary() if report is not None else None,
        }


class ReplicaService(ObjectbaseService):
    """The read-only replica face of the same HTTP contract.

    Reads serve from the :class:`ReplicaStore`'s published snapshot
    exactly like the primary's; every write is refused with ``503
    read-only-replica`` whose message names the primary.  ``/readyz``
    additionally reports ``replica-syncing`` (fresh replica, no local
    history yet) and ``replica-too-stale`` (the client's latched
    staleness bound tripped) — a replica with durable local state keeps
    serving stale reads rather than failing closed.
    """

    def __init__(
        self,
        store: ReplicaStore,
        client: ReplicationClient,
        *,
        max_inflight: int = 8,
    ) -> None:
        # The lint gate and interference history are write-side policy;
        # a replica has no writes, so the defaults are inert.
        super().__init__(store, max_inflight=max_inflight)  # type: ignore[arg-type]
        self.client = client

    @property
    def primary(self) -> str:
        return self.client.describe()

    def ready_reasons(self) -> list[dict]:
        reasons = super().ready_reasons()
        if self.client.stale:
            staleness = self.client.staleness()
            detail = (
                "never heard from the primary"
                if staleness == float("inf")
                else f"last contact {staleness:.1f}s ago"
            )
            reasons.append({
                "code": "replica-too-stale",
                "message": (
                    f"replica exceeded its staleness bound "
                    f"({self.client.max_staleness:g}s): {detail}"
                ),
            })
        elif not self.client.synced and not self._has_local_history():
            reasons.append({
                "code": "replica-syncing",
                "message": (
                    f"initial sync from {self.primary} has not completed"
                ),
            })
        return reasons

    def _has_local_history(self) -> bool:
        # The durable position, not len(store): a fresh lattice already
        # holds the base types, but 0:0 means no primary history yet.
        return not self.store.position.zero

    def read_headers(self) -> dict[str, str]:
        # The durable position (not the in-memory snapshot counter) is
        # what catch-up pollers compare across restarts and nodes.
        lag = self.client.lag_records
        return {
            "X-Schema-Generation": str(self.store.position),
            "X-Replica-Lag": "unknown" if lag is None else str(lag),
        }

    def replication_status(self) -> tuple[int, dict]:
        client = self.client
        staleness = client.staleness()
        return 200, {
            "role": "replica",
            "primary": self.primary,
            "position": str(self.store.position),
            "primary_position": (
                str(client.primary_position)
                if client.primary_position is not None else None
            ),
            "lag_records": client.lag_records,
            "staleness_seconds": (
                None if staleness == float("inf") else staleness
            ),
            "stale": client.stale,
            "synced": client.synced,
            "connected": client.connected,
            "seen_epoch": client.seen_epoch,
            "last_error": client.last_error,
        }

    # -- writes are refused before admission ---------------------------

    def _refuse_write(self) -> tuple[int, dict]:
        raise ReadOnlyReplicaError(self.primary)

    def apply(self, body: dict) -> tuple[int, dict]:
        return self._refuse_write()

    def batch(self, body: dict) -> tuple[int, dict]:
        return self._refuse_write()

    def migrate(self, body: dict) -> tuple[int, dict]:
        return self._refuse_write()

    def undo(self) -> tuple[int, dict]:
        return self._refuse_write()

    def recover(self) -> tuple[int, dict]:
        return self._refuse_write()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`ObjectbaseService` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro"

    # -- plumbing ---------------------------------------------------------

    @property
    def service(self) -> ObjectbaseService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, headers=headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        decoded = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        if not isinstance(decoded, dict):
            raise ValueError("request body must be a JSON object")
        return decoded

    # -- routing ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("DELETE")

    def _route(self) -> tuple[str, str | None]:
        """(route template, path parameter) for metric labels/dispatch."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/v1/types/"):
            return "/v1/types/{name}", path[len("/v1/types/"):]
        return path, None

    def _dispatch(self, method: str) -> None:
        route, param = self._route()
        started = perf_counter()
        status = 500
        try:
            with trace.span("http", method=method, route=route) as span:
                status = self._handle(method, route, param)
                span.set_attr("status", status)
        except BrokenPipeError:  # client went away mid-response
            pass
        finally:
            _HTTP_REQUESTS.labels(
                method=method, route=route, status=str(status)
            ).inc()
            _HTTP_SECONDS.labels(route=route).observe(
                perf_counter() - started
            )

    def _handle(self, method: str, route: str, param: str | None) -> int:
        service = self.service
        try:
            if method == "GET":
                if route == "/metrics":
                    body = REGISTRY.render_prometheus().encode("utf-8")
                    self._send(200, body, content_type=PROMETHEUS_CONTENT_TYPE)
                    return 200
                if route == "/v1/schema":
                    text, generation = service.schema()
                    headers = {"X-Schema-Generation": str(generation)}
                    # A replica's read headers override the in-memory
                    # generation with its durable position (comparable
                    # across nodes) and add X-Replica-Lag.
                    headers.update(service.read_headers())
                    self._send(
                        200,
                        text.encode("utf-8"),
                        content_type="text/plain; charset=utf-8",
                        headers=headers,
                    )
                    return 200
                handler = {
                    "/healthz": service.healthz,
                    "/readyz": service.readyz,
                    "/v1/types": service.list_types,
                    "/v1/replication": service.replication_status,
                }.get(route)
                if handler is not None:
                    status, payload = handler()
                elif route == "/v1/types/{name}":
                    status, payload = service.get_type(param or "")
                else:
                    status, payload = 404, _error_body("not-found", route)
                headers = dict(service.read_headers())
                if status == 503:
                    headers["Retry-After"] = "1"
                self._send_json(status, payload, headers=headers)
                return status
            if method == "POST":
                writer = {
                    "/v1/apply": lambda body: service.apply(body),
                    "/v1/batch": lambda body: service.batch(body),
                    "/v1/migrate": lambda body: service.migrate(body),
                    "/v1/undo": lambda body: service.undo(),
                    "/v1/recover": lambda body: service.recover(),
                }.get(route)
                if writer is None:
                    self._send_json(404, _error_body("not-found", route))
                    return 404
                if not service.admit():
                    self._send_json(
                        429,
                        _error_body(
                            "write-shed",
                            f"more than {service.max_inflight} writes "
                            f"in flight; retry later",
                        ),
                        headers={"Retry-After": "1"},
                    )
                    return 429
                try:
                    body = self._read_body()
                    status, payload = writer(body)
                finally:
                    service.release()
                if status == 200:
                    # Committed (or at least state-changing) write: wake
                    # the replication shippers instead of letting them
                    # find it on the next poll tick.
                    service.notify_commit()
                self._send_json(status, payload)
                return status
            self._send_json(
                405, _error_body("method-not-allowed", method)
            )
            return 405
        except json.JSONDecodeError as exc:
            self._send_json(400, _error_body("bad-json", str(exc)))
            return 400
        except Exception as exc:  # noqa: BLE001 - mapped to taxonomy codes
            status = status_for(exc)
            if status == 500:
                logger.exception("unhandled error on %s %s", method, route)
            # Every 503 is retryable by definition here (the request
            # was never admitted), so every one advertises it.
            headers = {"Retry-After": "1"} if status == 503 else None
            self._send_json(
                status,
                _error_body(
                    error_code(exc), str(exc),
                    diagnostics=getattr(exc, "diagnostics", None),
                ),
                headers,
            )
            return status


def _diag_dict(d) -> dict:
    """A Diagnostic as the wire shape used in 409 bodies."""
    return d.as_dict()


def _error_body(
    code: str, message: str, diagnostics: list | None = None
) -> dict:
    body = {"error": {"code": code, "message": message}}
    if diagnostics:
        body["error"]["diagnostics"] = diagnostics
    return body


class ObjectbaseHTTPServer(ThreadingHTTPServer):
    """One service, many connection threads, clean-shutdown drain.

    ``daemon_threads`` stays ``False`` so :meth:`shutdown` waits for
    in-flight requests — an acknowledged write is durable before the
    process exits.
    """

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, service: ObjectbaseService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: ObjectbaseService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ObjectbaseHTTPServer:
    """Bind (port 0 picks a free one) without starting the accept loop."""
    return ObjectbaseHTTPServer((host, port), service)


def serve_service(
    service: ObjectbaseService,
    host: str = "127.0.0.1",
    port: int = 8787,
) -> None:
    """Serve a prebuilt service until interrupted.

    The seam ``repro serve`` uses for its replication roles: the CLI
    wires up an :class:`ObjectbaseService` (plus lease and shipping
    server) or a :class:`ReplicaService` and hands it here.  On the way
    down the service is marked draining first, so ``/readyz`` turns
    load balancers away while in-flight requests finish.
    """
    server = make_server(service, host, port)
    logger.info(
        "serving objectbase on http://%s:%d", *server.server_address[:2]
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.draining = True
        server.shutdown()
        server.server_close()


def serve(
    store: ConcurrentObjectbase,
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    max_inflight: int = 8,
    lint: str = "off",
) -> None:
    """Serve ``store`` until interrupted (the ``repro serve`` body)."""
    service = ObjectbaseService(store, max_inflight=max_inflight, lint=lint)
    logger.info(
        "service policy: lock timeout %.3fs, max inflight %d, lint gate %s",
        store.lock_timeout, max_inflight, lint,
    )
    serve_service(service, host, port)
