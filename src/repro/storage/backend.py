"""Pluggable storage backends behind the :class:`StorageFS` seam.

:class:`~repro.storage.faults.StorageFS` started life as a test seam;
this module promotes it into the real backend abstraction.  Everything
above the seam — framed WAL records, checkpoint generation fencing,
salvage/quarantine, retry/degraded-mode, replication shipping — is
already expressed purely in the ten byte-stream primitives, so a new
backend only has to implement those primitives faithfully and the whole
durability stack (and its crash matrix) comes along for free.

The design follows the two exemplars the ROADMAP names: an ABC with
capability *probes* rather than subclass checks (Snippet 1's
``LogicObjectStorage`` probing ``supports_transactions``), and a
content-addressed segment store published by an atomic pointer swap
(Snippet 2's Retikon ``ObjectStore`` with ``atomic_write_bytes``).

Capability probes
-----------------
Backends differ in what the primitives *already* guarantee; the probes
let the durability layer skip work a substrate makes redundant instead
of branching on types:

``supports_atomic_replace``
    ``replace`` publishes all-or-nothing even across a crash.  True for
    every shipped backend (POSIX rename, a sqlite transaction, a
    manifest pointer swap).
``supports_transactions``
    The backend can group primitives into one atomic transaction
    (sqlite).  Probed, not assumed — callers that want a transaction
    try ``transaction()`` and fall back to ordered writes.
``durable_rename``
    ``replace`` is durable by itself; the post-rename directory fsync
    is unnecessary and :func:`~repro.storage.framing.write_checkpoint`
    skips it.
``durable_writes``
    Every mutating primitive commits durably before returning; fsync
    barriers are no-ops and write reordering is impossible.

Backend URLs
------------
Every open surface (:meth:`repro.api.Objectbase.open`, ``repro serve``,
``repro recover``, replication) accepts a backend URL instead of a bare
path:

* ``file:/var/lib/repro/schema.wal`` (or just the path) — POSIX files;
* ``sqlite:/var/lib/repro/schema.db`` — WAL frames as rows, checkpoints
  as blobs, inside one sqlite database;
* ``objstore:/var/lib/repro/store`` — immutable content-addressed
  segments plus an atomically-swapped manifest.

:func:`resolve_storage_url` returns the backend plus the *logical* path
the journal should use inside it and the *physical* on-disk anchor
(where sidecar files like the primary lease live).  Third-party
backends register a scheme with :func:`register_backend`;
``docs/storage.md`` walks through writing a conforming backend and
running the conformance suite against it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..core.errors import JournalError
from .faults import RealFS, StorageFS

__all__ = [
    "StorageBackend",
    "FileBackend",
    "StorageTarget",
    "atomic_write_bytes",
    "resolve_storage_url",
    "storage_physical_path",
    "register_backend",
    "backend_schemes",
]


class StorageBackend(StorageFS):
    """A production storage substrate: :class:`StorageFS` primitives
    plus a scheme, capability probes and a lifecycle.

    Subclass contract (the conformance suite in
    ``tests/storage/test_crash_matrix.py`` / ``test_recovery_modes.py``
    checks all of it — see ``docs/storage.md``):

    * the ten byte-stream primitives with POSIX-file semantics
      (``unlink`` tolerates a missing file; ``read_bytes``/``size``/
      ``truncate``/``replace`` raise :class:`FileNotFoundError` family
      errors on missing sources);
    * transient substrate failures surface as :class:`OSError` so the
      retry layer (:mod:`repro.storage.reliability`) absorbs them;
    * the capability probes inherited from :class:`StorageFS` describe
      what the substrate already guarantees;
    * :meth:`close` releases substrate handles (idempotent).
    """

    #: URL scheme this backend answers to (``""`` for none).
    scheme: str = ""

    def close(self) -> None:
        """Release substrate resources; further use is undefined."""

    def gc(self) -> int:
        """Collect substrate garbage (orphan segments, stale temp
        residue); returns the number of objects removed."""
        return 0


class FileBackend(RealFS, StorageBackend):
    """The POSIX-file backend: :class:`RealFS` with a scheme.

    Durability is the classic recipe — write, fsync the file, rename,
    fsync the directory — so ``durable_rename`` stays false and the
    checkpoint writer performs the directory fsync itself.
    """

    scheme = "file"


@dataclass(frozen=True)
class StorageTarget:
    """A resolved backend URL.

    ``path`` is the logical journal path *inside* the backend (the WAL;
    the checkpoint rides next to it via suffixing).  ``physical`` is the
    on-disk anchor — the WAL file, the sqlite database file, the object
    store root — where path-shaped sidecars (the primary lease) and
    operator tooling point.
    """

    fs: StorageFS
    path: Path
    physical: Path
    url: str


def atomic_write_bytes(
    fs: StorageFS, path: Path, data: bytes, *, sync: bool = True
) -> None:
    """Publish ``data`` at ``path`` atomically through ``fs`` primitives.

    Temp file, optional fsync, rename, directory fsync (skipped when the
    backend's rename is intrinsically durable).  A failed write never
    touches the destination; the partial temp is removed.  This is the
    pointer-swap primitive the object-store backend builds its manifest
    on, and what the snapshot savers use.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        fs.write_bytes(tmp, data)
        if sync:
            fs.fsync_file(tmp)
        fs.replace(tmp, path)
    except OSError:
        try:
            fs.unlink(tmp)
        except OSError:
            pass
        raise
    if sync and not getattr(fs, "durable_rename", False):
        fs.fsync_dir(path.parent if str(path.parent) else Path("."))


# -- URL resolution -----------------------------------------------------

_SCHEME_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]*):")

#: scheme -> factory(rest-of-url, full-url) -> StorageTarget
_FACTORIES: dict[str, Callable[[str, str], StorageTarget]] = {}


def register_backend(
    scheme: str, factory: Callable[[str, str], StorageTarget]
) -> None:
    """Register a backend URL scheme (see ``docs/storage.md``)."""
    _FACTORIES[scheme.lower()] = factory


def backend_schemes() -> tuple[str, ...]:
    """The registered URL schemes, for help text and validation."""
    return tuple(sorted(_FACTORIES))


def _file_target(rest: str, url: str) -> StorageTarget:
    path = Path(rest)
    return StorageTarget(fs=FileBackend(), path=path, physical=path, url=url)


def _sqlite_target(rest: str, url: str) -> StorageTarget:
    from .sqlite_backend import SqliteBackend

    database = Path(rest)
    return StorageTarget(
        fs=SqliteBackend(database),
        path=Path("wal"),
        physical=database,
        url=url,
    )


def _objstore_target(rest: str, url: str) -> StorageTarget:
    from .objstore_backend import ObjectStoreBackend

    root = Path(rest)
    return StorageTarget(
        fs=ObjectStoreBackend(root),
        path=Path("wal"),
        physical=root,
        url=url,
    )


register_backend("file", _file_target)
register_backend("sqlite", _sqlite_target)
register_backend("objstore", _objstore_target)


def _split_storage_url(db: str | Path) -> tuple[str, str] | None:
    """``(scheme, rest)`` for a backend URL, or ``None`` for a bare path.

    A single-letter "scheme" is treated as a path (Windows drive
    letters), and an unknown scheme is a typed error rather than a
    surprise relative directory.  Pure parsing — no backend is
    constructed and nothing on disk is touched.
    """
    raw = str(db)
    match = _SCHEME_RE.match(raw) if isinstance(db, str) else None
    if match is None or len(match.group(1)) == 1:
        return None
    scheme = match.group(1).lower()
    if scheme not in _FACTORIES:
        raise JournalError(
            f"unknown storage backend scheme {scheme!r} in {raw!r} "
            f"(expected one of: {', '.join(backend_schemes())})"
        )
    rest = raw[match.end():]
    if rest.startswith("//"):
        rest = rest[2:]
    if not rest:
        raise JournalError(f"storage URL {raw!r} names no path")
    return scheme, rest


def storage_physical_path(db: str | Path) -> Path:
    """The on-disk anchor of a database location, **without** opening it.

    Unlike :func:`resolve_storage_url` — which constructs a live
    backend, creating directories, opening a sqlite connection, or
    initialising an object-store root as a side effect — this is pure
    parsing.  It is what path-shaped sidecar placement (the primary
    lease) and help text must use *before* ownership of the store is
    established: a failover candidate anchoring its lease must not
    mutate a store it does not yet own.

    For every shipped scheme the anchor is the URL's path part (the WAL
    file, the sqlite database file, the object-store root).  Third-party
    schemes registered via :func:`register_backend` are assumed to
    follow the same convention.
    """
    split = _split_storage_url(db)
    if split is None:
        return Path(db)
    _, rest = split
    return Path(rest)


def resolve_storage_url(
    db: str | Path, *, fs: StorageFS | None = None
) -> StorageTarget:
    """Resolve a database location (path or backend URL) to a target.

    An explicit ``fs`` wins (tests injecting fault layers); a bare path
    resolves to the :class:`FileBackend`; ``scheme:rest`` dispatches to
    the registered backend.  Resolving **constructs** the backend
    (directories created, connections opened) — callers that only need
    the anchor path must use :func:`storage_physical_path` instead.
    """
    raw = str(db)
    if fs is not None:
        path = Path(db)
        return StorageTarget(fs=fs, path=path, physical=path, url=raw)
    split = _split_storage_url(db)
    if split is None:
        path = Path(db)
        return StorageTarget(
            fs=FileBackend(), path=path, physical=path, url=f"file:{path}"
        )
    scheme, rest = split
    return _FACTORIES[scheme](rest, raw)
