"""Whole-objectbase snapshots: schema + behaviors + functions + data.

Extends the schema-only snapshot of :mod:`repro.storage.snapshot` to the
full TIGUKAT store: behavior definitions and signatures, implementation
associations, classes, collections, and application instances with their
stored state — everything needed to reopen an objectbase and keep
answering behavior applications.

Computed functions are code; code does not serialize.  They are captured
by *name* and rebound at restore time from a ``computed_bodies`` registry
the application supplies (the classic externalized-code contract).  A
computed function with no re-registered body restores as a poisoned stub
that raises on first invocation, so the gap is loud, not silent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from ..core.errors import JournalError
from ..core.identity import Oid
from ..tigukat.behaviors import Signature
from ..tigukat.functions import Function, FunctionKind
from ..tigukat.objects import TigukatObject
from ..tigukat.primitive import PRIMITIVE_TYPE_BEHAVIORS
from ..tigukat.store import Objectbase
from .backend import atomic_write_bytes
from .faults import RealFS, StorageFS
from .snapshot import FORMAT_VERSION, lattice_from_dict, lattice_to_dict

__all__ = ["objectbase_to_dict", "objectbase_from_dict",
           "save_objectbase", "load_objectbase"]

_JSON_SCALARS = (str, int, float, bool, type(None))


def _encode_value(value: Any) -> Any:
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, TigukatObject):
        return {"$oid": [value.oid.space, value.oid.serial]}
    if isinstance(value, Oid):
        return {"$oid": [value.space, value.serial]}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    raise JournalError(
        f"instance state value of type {type(value).__name__!r} is not "
        f"snapshot-serializable"
    )


def _decode_value(value: Any, store: Objectbase) -> Any:
    if isinstance(value, dict) and "$oid" in value:
        oid = Oid(value["$oid"][0], value["$oid"][1])
        return store.get(oid) if oid in store else oid
    if isinstance(value, list):
        return [_decode_value(v, store) for v in value]
    return value


def objectbase_to_dict(store: Objectbase) -> dict[str, Any]:
    """The full store as plain data (bootstrap content excluded — it is
    reproduced by construction at restore time)."""
    behaviors = []
    for b in sorted(store.behaviors(), key=lambda b: b.semantics):
        if b.semantics in PRIMITIVE_TYPE_BEHAVIORS:
            continue
        behaviors.append(
            {
                "semantics": b.semantics,
                "signature": {
                    "name": b.signature.name,
                    "argument_types": list(b.signature.argument_types),
                    "result_type": b.signature.result_type,
                },
                "implementations": {
                    t: [b.implementation_for(t).space,
                        b.implementation_for(t).serial]
                    for t in sorted(b.implementing_types())
                },
            }
        )

    functions = []
    primitive_function_oids = {
        store.behavior(sem).implementation_for("T_type")
        for sem in PRIMITIVE_TYPE_BEHAVIORS
    }
    for f in sorted(store.functions(), key=lambda f: f.oid):
        if f.oid in primitive_function_oids:
            continue
        functions.append(
            {
                "oid": [f.oid.space, f.oid.serial],
                "name": f.name,
                "kind": f.kind.value,
                "slot": f.slot,
            }
        )

    classes = sorted(c.of_type for c in store.classes())

    from ..tigukat.collections_ import ClassObject

    user_collections = sorted(
        (c for c in store.collections() if not isinstance(c, ClassObject)),
        key=lambda c: c.name,
    )
    collections = [
        {
            "name": c.name,
            "member_type": c.member_type,
            "members": [[o.space, o.serial] for o in sorted(c.members())],
        }
        for c in user_collections
    ]

    instances = []
    for cls in sorted(store.classes(), key=lambda c: c.of_type):
        for oid in sorted(cls.members()):
            obj = store.get(oid)
            instances.append(
                {
                    "oid": [oid.space, oid.serial],
                    "type": obj.type_name,
                    "state": {
                        key: _encode_value(obj._get_slot(key))
                        for key in sorted(obj._slots())
                    },
                }
            )

    return {
        "format": FORMAT_VERSION,
        "lattice": lattice_to_dict(store.lattice),
        "behaviors": behaviors,
        "functions": functions,
        "classes": classes,
        "collections": collections,
        "instances": instances,
    }


def objectbase_from_dict(
    data: dict[str, Any],
    computed_bodies: dict[str, Callable[..., Any]] | None = None,
) -> Objectbase:
    """Rebuild a store from :func:`objectbase_to_dict` output.

    ``computed_bodies`` maps function *names* to callables for computed
    implementations; missing entries restore as poisoned stubs.
    """
    if data.get("format") != FORMAT_VERSION:
        raise JournalError(
            f"unsupported objectbase snapshot format: {data.get('format')!r}"
        )
    bodies = computed_bodies or {}
    store = Objectbase()  # bootstrap recreates the primitive world

    # 1. Schema: install non-primitive types in dependency order.
    target = lattice_from_dict(data["lattice"])
    for t in target.derivation.order:
        if t in store.lattice:
            continue
        base, root = target.base, target.root
        store.lattice.add_type(
            t,
            supertypes=[
                s for s in target.pe(t) if s not in (root, base)
            ],
            properties=sorted(target.ne(t)),
            frozen=target.is_frozen(t),
        )
        store._reify_type(t)
    # Extra essential edges/properties beyond creation defaults are
    # already covered: add_type installed the full Pe/Ne from the target.

    # 2. Behaviors and their signatures.
    for record in data["behaviors"]:
        sig = record["signature"]
        store.define_behavior(
            record["semantics"],
            Signature(
                sig["name"],
                tuple(sig["argument_types"]),
                sig["result_type"],
            ),
        )

    # 3. Functions (stored fully; computed rebound or poisoned).
    max_serial = 0
    for record in data["functions"]:
        oid = Oid(record["oid"][0], record["oid"][1])
        max_serial = max(max_serial, oid.serial)
        kind = FunctionKind(record["kind"])
        if kind is FunctionKind.STORED:
            function = Function(oid, record["name"], kind,
                                slot=record["slot"])
        else:
            body = bodies.get(record["name"])
            if body is None:
                name = record["name"]

                def poisoned(store_, receiver, *args, _name=name):
                    raise JournalError(
                        f"computed function {_name!r} was not "
                        f"re-registered at restore time"
                    )

                body = poisoned
            function = Function(oid, record["name"], kind, body=body)
        store._functions[oid] = function
        store._objects[oid] = function

    # 4. Implementation associations.
    for record in data["behaviors"]:
        behavior = store.behavior(record["semantics"])
        for type_name, (space, serial) in record["implementations"].items():
            behavior.associate(type_name, Oid(space, serial))

    # 5. Classes, instances (identity-preserving), collections.
    for type_name in data["classes"]:
        store.add_class(type_name)
    # Two passes: create every instance first so object-valued slots can
    # decode forward references, then fill the state.
    created: list[tuple[TigukatObject, dict[str, Any]]] = []
    for record in data["instances"]:
        oid = Oid(record["oid"][0], record["oid"][1])
        max_serial = max(max_serial, oid.serial)
        obj = TigukatObject(oid, record["type"])
        store._objects[oid] = obj
        cls = store.class_of(record["type"])
        if cls is None:
            raise JournalError(
                f"instance {oid} of classless type {record['type']!r}"
            )
        cls.insert(oid)
        created.append((obj, record["state"]))
    for obj, state in created:
        for key, value in state.items():
            obj._set_slot(key, _decode_value(value, store))
    for record in data["collections"]:
        collection = store.add_collection(
            record["name"], record["member_type"]
        )
        for space, serial in record["members"]:
            collection.insert(Oid(space, serial))

    # Never re-issue a persisted identity.
    while True:
        probe = store._oids.allocate()
        if probe.serial > max_serial:
            break
    return store


def save_objectbase(
    store: Objectbase, path: str | Path, *, fs: StorageFS | None = None
) -> Path:
    """Write a whole-store snapshot atomically (temp file + rename,
    through the storage backend's primitives)."""
    path = Path(path)
    atomic_write_bytes(
        fs or RealFS(),
        path,
        json.dumps(
            objectbase_to_dict(store), indent=2, sort_keys=True
        ).encode("utf-8"),
        sync=False,
    )
    return path


def load_objectbase(
    path: str | Path,
    computed_bodies: dict[str, Callable[..., Any]] | None = None,
    *,
    fs: StorageFS | None = None,
) -> Objectbase:
    fs = fs or RealFS()
    return objectbase_from_dict(
        json.loads(fs.read_bytes(Path(path)).decode("utf-8")),
        computed_bodies,
    )
