"""Schema snapshots: JSON persistence of lattice state.

An OBMS manages schema changes "while the system is in operation"
(Section 1); surviving restarts requires durable schema state.  A
snapshot captures exactly the designer-managed inputs — policy, ``Pe``,
``Ne``, frozen marks, property payloads — because everything else is
derivable through the axioms (persisting derived terms would be redundant
and a consistency hazard).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.config import EssentialityDefault, LatticePolicy
from ..core.errors import JournalError
from ..core.lattice import TypeLattice
from ..core.properties import Property
from .backend import atomic_write_bytes
from .faults import RealFS, StorageFS

__all__ = [
    "lattice_to_dict",
    "lattice_from_dict",
    "save_lattice",
    "load_lattice",
]

FORMAT_VERSION = 1


def lattice_to_dict(lattice: TypeLattice) -> dict[str, Any]:
    """The designer-managed state of a lattice as plain data."""
    policy = lattice.policy
    return {
        "format": FORMAT_VERSION,
        "policy": {
            "rooted": policy.rooted,
            "pointed": policy.pointed,
            "root_name": policy.root_name,
            "base_name": policy.base_name,
            "essentiality": policy.essentiality.value,
        },
        "types": [
            {
                "name": t,
                "pe": sorted(lattice.pe(t)),
                "ne": [
                    {"semantics": p.semantics, "name": p.name,
                     "domain": p.domain}
                    for p in sorted(lattice.ne(t))
                ],
                "frozen": lattice.is_frozen(t),
            }
            for t in sorted(lattice.types())
        ],
    }


def lattice_from_dict(data: dict[str, Any]) -> TypeLattice:
    """Rebuild a lattice from :func:`lattice_to_dict` output.

    The snapshot's derived terms are re-instantiated through the axioms;
    a snapshot whose ``Pe`` graph is cyclic or whose references dangle is
    rejected with :class:`JournalError`.
    """
    if data.get("format") != FORMAT_VERSION:
        raise JournalError(
            f"unsupported snapshot format: {data.get('format')!r}"
        )
    pdata = data["policy"]
    policy = LatticePolicy(
        rooted=pdata["rooted"],
        pointed=pdata["pointed"],
        root_name=pdata["root_name"],
        base_name=pdata["base_name"],
        essentiality=EssentialityDefault(pdata["essentiality"]),
    )
    lattice = TypeLattice(policy)

    records = {r["name"]: r for r in data["types"]}
    known = set(records)
    for name, record in records.items():
        for s in record["pe"]:
            if s not in known:
                raise JournalError(
                    f"snapshot is corrupt: Pe({name}) references "
                    f"unknown type {s!r}"
                )

    # Install in dependency order (supertypes first).
    installed = set(lattice.types())
    pending = [n for n in sorted(records) if n not in installed]
    while pending:
        progressed = False
        remaining: list[str] = []
        for name in pending:
            record = records[name]
            if all(s in installed for s in record["pe"]):
                lattice.add_type(
                    name,
                    supertypes=[
                        s for s in record["pe"]
                        if s not in (lattice.root, lattice.base)
                    ],
                    properties=[
                        Property(p["semantics"], p["name"], p.get("domain"))
                        for p in record["ne"]
                    ],
                    frozen=record.get("frozen", False),
                )
                installed.add(name)
                progressed = True
            else:
                remaining.append(name)
        if not progressed:
            raise JournalError(
                f"snapshot is corrupt: cyclic Pe among {sorted(remaining)}"
            )
        pending = remaining

    # Restore Ne entries for the policy-created root/base if present.
    for special in (lattice.root, lattice.base):
        if special and special in records:
            rec = records[special]
            for p in rec["ne"]:
                lattice._ne[special].add(
                    lattice.universe.intern(
                        Property(p["semantics"], p["name"], p.get("domain"))
                    )
                )
    lattice.invalidate_cache()
    return lattice


def save_lattice(
    lattice: TypeLattice, path: str | Path, *, fs: StorageFS | None = None
) -> Path:
    """Write a snapshot file atomically; returns the path.

    The snapshot lands via temp-file + rename (through the storage
    backend's primitives) so a crash mid-save leaves the previous
    snapshot intact instead of a torn JSON document.
    """
    path = Path(path)
    atomic_write_bytes(
        fs or RealFS(),
        path,
        json.dumps(
            lattice_to_dict(lattice), indent=2, sort_keys=True
        ).encode("utf-8"),
        sync=False,
    )
    return path


def load_lattice(
    path: str | Path, *, fs: StorageFS | None = None
) -> TypeLattice:
    """Load a snapshot file back into a lattice."""
    fs = fs or RealFS()
    return lattice_from_dict(
        json.loads(fs.read_bytes(Path(path)).decode("utf-8"))
    )
