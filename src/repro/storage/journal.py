"""Write-ahead journal: durable, replayable operation log.

The durability counterpart of :mod:`repro.storage.snapshot`: instead of
persisting state, persist the *operations* (which are already serializable
command objects) as JSON lines and recover by replay.  The recovery
contract is the journal-replay property tested in the core suite: a
replayed lattice is state-identical to the lost one.

Layout: one JSONL file, one record per applied operation, plus an
optional snapshot checkpoint that truncates the log (classic WAL +
checkpoint).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from time import perf_counter

from ..core.config import LatticePolicy
from ..core.errors import JournalError
from ..core.history import EvolutionJournal
from ..core.lattice import TypeLattice
from ..core.operations import SchemaOperation, operation_from_dict
from ..obs.metrics import REGISTRY, SIZE_BUCKETS
from .snapshot import lattice_from_dict, lattice_to_dict

__all__ = ["JournalFile", "DurableLattice"]

logger = logging.getLogger(__name__)

_WAL_APPENDS = REGISTRY.counter(
    "repro_wal_appends_total", "Operation records appended to the WAL"
)
_WAL_APPEND_SECONDS = REGISTRY.histogram(
    "repro_wal_append_seconds", "Latency of one WAL append"
)
_WAL_REPLAY_OPS = REGISTRY.counter(
    "repro_wal_replayed_ops_total", "Operations replayed from WAL tails"
)
_WAL_REPLAY_SECONDS = REGISTRY.histogram(
    "repro_wal_replay_seconds",
    "Wall time to replay one WAL tail through the in-memory journal",
)
_WAL_COALESCED = REGISTRY.histogram(
    "repro_wal_replay_coalesced_ops",
    "Operations coalesced into one derivation pass per replayed tail",
    buckets=SIZE_BUCKETS,
)
_WAL_CHECKPOINTS = REGISTRY.counter(
    "repro_wal_checkpoints_total", "WAL-to-snapshot checkpoint folds"
)


class JournalFile:
    """An append-only JSONL operation log with checkpointing."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.checkpoint_path = self.path.with_suffix(
            self.path.suffix + ".checkpoint"
        )

    def append(self, operation: SchemaOperation) -> None:
        """Append one operation record (fsync-free; tests exercise crash
        semantics at record granularity)."""
        started = perf_counter()
        with self.path.open("a") as fh:
            fh.write(json.dumps(operation.to_dict(), sort_keys=True) + "\n")
        _WAL_APPENDS.inc()
        _WAL_APPEND_SECONDS.observe(perf_counter() - started)

    def operations(self) -> list[SchemaOperation]:
        """All logged operations, in order.  Torn trailing writes (a
        truncated final line) are tolerated; corruption elsewhere is not."""
        if not self.path.exists():
            return []
        ops: list[SchemaOperation] = []
        lines = self.path.read_text().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                ops.append(operation_from_dict(json.loads(line)))
            except (json.JSONDecodeError, ValueError, KeyError) as exc:
                if i == len(lines) - 1:
                    break  # torn tail from a crash mid-append: discard
                raise JournalError(
                    f"journal corrupt at line {i + 1}: {exc}"
                ) from exc
        return ops

    def checkpoint(self, lattice: TypeLattice) -> None:
        """Write a snapshot and truncate the log (applied ops are now
        baked into the checkpoint)."""
        self.checkpoint_path.write_text(
            json.dumps(lattice_to_dict(lattice), sort_keys=True)
        )
        self.path.write_text("")
        _WAL_CHECKPOINTS.inc()
        logger.info(
            "checkpointed %d types to %s; WAL truncated",
            len(lattice), self.checkpoint_path,
        )

    def recover(
        self, policy: LatticePolicy | None = None
    ) -> TypeLattice:
        """Rebuild the lattice: load the checkpoint (if any), then replay
        the tail of the log."""
        if self.checkpoint_path.exists():
            lattice = lattice_from_dict(
                json.loads(self.checkpoint_path.read_text())
            )
        else:
            lattice = TypeLattice(policy)
        for op in self.operations():
            op.apply(lattice)
        return lattice

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)
        self.checkpoint_path.unlink(missing_ok=True)


class DurableLattice:
    """An :class:`EvolutionJournal` wired to a :class:`JournalFile`.

    Every applied operation is logged *before* the in-memory journal
    records it as done (write-ahead), so recovery never misses an applied
    change.

    Replay is *batched*: recovery applies the whole WAL tail without ever
    touching a derived term, so the lattice's invalidations coalesce in
    its dirty set and the first post-open query pays a single derivation
    pass — reopening a database costs O(plan), not O(plan × schema).

    The full :class:`~repro.core.transactions.SchemaTransaction` protocol
    is supported (``apply``/``undo``/``__len__``/``lattice``), so atomic
    batches work directly against durable storage::

        with SchemaTransaction(durable) as txn:
            txn.apply(...)
    """

    def __init__(
        self,
        path: str | Path,
        policy: LatticePolicy | None = None,
    ) -> None:
        self.file = JournalFile(path)
        # Recover the checkpoint state, then replay the WAL tail *through*
        # the in-memory journal so history (and undo) survive a restart.
        if self.file.checkpoint_path.exists():
            import json

            from .snapshot import lattice_from_dict

            base = lattice_from_dict(
                json.loads(self.file.checkpoint_path.read_text())
            )
        else:
            base = TypeLattice(policy)
        self.journal = EvolutionJournal(lattice=base)
        started = perf_counter()
        replayed = 0
        for op in self.file.operations():
            self.journal.apply(op)
            replayed += 1
        if replayed:
            _WAL_REPLAY_OPS.inc(replayed)
            _WAL_COALESCED.observe(replayed)
            _WAL_REPLAY_SECONDS.observe(perf_counter() - started)
            logger.info(
                "replayed %d WAL operation(s) from %s (coalesced into one "
                "deferred derivation pass)", replayed, self.file.path,
            )

    @property
    def lattice(self) -> TypeLattice:
        return self.journal.lattice

    def __len__(self) -> int:
        return len(self.journal)

    def apply(self, operation: SchemaOperation):
        """Validate, log (write-ahead), then apply."""
        operation.validate(self.lattice)
        self.file.append(operation)
        return self.journal.apply(operation)

    def apply_all(self, operations):
        """Apply a batch; invalidations coalesce into one later pass."""
        return [self.apply(op) for op in operations]

    def undo(self):
        """Undo the last operation, keeping the WAL replay-consistent.

        The recorded inverse operations are appended to the log *before*
        the in-memory undo (write-ahead, like ``apply``): a replay then
        re-executes the original operation followed by its inverses and
        lands in the same state.
        """
        if not len(self.journal):
            raise JournalError("nothing to undo")
        entry = self.journal.entries[-1]
        for op in entry.inverse:
            self.file.append(op)
        return self.journal.undo()

    def checkpoint(self) -> None:
        self.file.checkpoint(self.lattice)

    @classmethod
    def reopen(
        cls, path: str | Path, policy: LatticePolicy | None = None
    ) -> "DurableLattice":
        """Simulated restart: rebuild purely from durable state."""
        return cls(path, policy)
