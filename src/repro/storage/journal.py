"""Write-ahead journal: durable, replayable operation log.

The durability counterpart of :mod:`repro.storage.snapshot`: instead of
persisting state, persist the *operations* (which are already
serializable command objects) and recover by replay.  The recovery
contract is the journal-replay property tested in the core suite: a
replayed lattice is state-identical to the lost one.

Layout: one record per applied operation in a checksummed, framed log
(see :mod:`repro.storage.framing` for the frame grammar, the torn/
corrupt damage taxonomy, and checkpoint generation fencing), plus an
atomically-replaced snapshot checkpoint that truncates the log (classic
WAL + checkpoint).  Legacy unframed JSONL journals read transparently.

Durability is governed by a :class:`~repro.storage.framing.DurabilityPolicy`
(fsync per append / per checkpoint / never, plus the auto-checkpoint
thresholds) and recovery by a mode — ``strict`` raises on corruption,
``salvage`` quarantines it — both surfaced through
:meth:`DurableLattice.reopen` and the ``repro recover`` CLI.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from time import perf_counter
from typing import Callable

from ..core.config import LatticePolicy
from ..core.errors import JournalError
from ..core.history import EvolutionJournal
from ..core.lattice import TypeLattice
from ..core.operations import SchemaOperation, operation_from_dict
from ..obs.metrics import REGISTRY, SIZE_BUCKETS
from .backend import resolve_storage_url
from .faults import StorageFS
from .framing import (
    DurabilityPolicy,
    SalvageReport,
    encode_frame,
    fence_records,
    load_checkpoint,
    read_log,
    timed_fsync,
    write_checkpoint,
)
from .reliability import DegradedLatch, RetryPolicy, append_record
from .snapshot import lattice_from_dict, lattice_to_dict

__all__ = ["JournalFile", "DurableLattice"]

logger = logging.getLogger(__name__)

_WAL_APPENDS = REGISTRY.counter(
    "repro_wal_appends_total", "Operation records appended to the WAL"
)
_WAL_APPEND_SECONDS = REGISTRY.histogram(
    "repro_wal_append_seconds", "Latency of one WAL append"
)
_WAL_REPLAY_OPS = REGISTRY.counter(
    "repro_wal_replayed_ops_total", "Operations replayed from WAL tails"
)
_WAL_REPLAY_SECONDS = REGISTRY.histogram(
    "repro_wal_replay_seconds",
    "Wall time to replay one WAL tail through the in-memory journal",
)
_WAL_COALESCED = REGISTRY.histogram(
    "repro_wal_replay_coalesced_ops",
    "Operations coalesced into one derivation pass per replayed tail",
    buckets=SIZE_BUCKETS,
)
_WAL_CHECKPOINTS = REGISTRY.counter(
    "repro_wal_checkpoints_total", "WAL-to-snapshot checkpoint folds"
)
_WAL_AUTO_CHECKPOINTS = REGISTRY.counter(
    "repro_wal_auto_checkpoints_total",
    "Checkpoints triggered automatically by the durability policy",
    labelnames=("reason",),
)


class JournalFile:
    """An append-only, checksummed operation log with checkpointing."""

    def __init__(
        self,
        path: str | Path,
        *,
        durability: DurabilityPolicy | None = None,
        fs: StorageFS | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        # A backend URL (sqlite:…, objstore:…, file:…) resolves to its
        # backend plus the logical journal path inside it; an explicit
        # ``fs`` always wins (fault injection, pre-built backends).
        target = resolve_storage_url(path, fs=fs)
        self.path = Path(target.path)
        self.checkpoint_path = self.path.with_suffix(
            self.path.suffix + ".checkpoint"
        )
        self.durability = durability or DurabilityPolicy()
        self.fs = target.fs
        self.retry = retry or RetryPolicy()
        self.latch = DegradedLatch(store=str(self.path))
        #: Optional write fence, checked before every append and
        #: checkpoint.  Replication installs the primary lease's
        #: ``check`` here so a paused-and-resumed ex-primary raises
        #: :class:`~repro.core.errors.LeaseLostError` instead of
        #: extending a history the new primary has diverged from.
        self.fence: Callable[[], None] | None = None
        self._generation: int | None = None
        self._tail_checked = False

    @property
    def degraded(self) -> bool:
        """Whether the log is latched read-only after append failure."""
        return self.latch.degraded

    @property
    def generation(self) -> int:
        """The current checkpoint generation new appends are stamped with."""
        if self._generation is None:
            _, self._generation = load_checkpoint(
                self.checkpoint_path, fs=self.fs
            )
        return self._generation

    def _ensure_clean_tail(self) -> None:
        """Heal a torn tail before the first append of this process.

        Appending after an unterminated final line would concatenate the
        new record onto the crash residue and corrupt *both*; repair
        first (strict: a damaged interior should fail loudly here, not
        be buried under fresh appends).
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        if self.fs.exists(self.path):
            data = self.fs.read_bytes(self.path)
            if data and not data.endswith(b"\n"):
                self.repair("strict")

    def append(self, operation: SchemaOperation) -> None:
        """Append one framed operation record (fsync per policy).

        Transient storage faults (an fsync EIO, a short write) are
        retried with rollback per :attr:`retry`; exhausted retries trip
        the degraded-mode latch and raise a typed
        :class:`~repro.core.errors.DegradedModeError` — the log is never
        left with a half-appended record in front of a whole one.
        """
        started = perf_counter()
        self.latch.check_writable()
        if self.fence is not None:
            self.fence()
        self._ensure_clean_tail()
        payload = json.dumps(operation.to_dict(), sort_keys=True)
        append_record(
            self.fs,
            self.path,
            encode_frame(payload, self.generation),
            retry=self.retry,
            latch=self.latch,
            sync=(
                (lambda: timed_fsync(self.fs, self.path))
                if self.durability.sync_appends else None
            ),
        )
        _WAL_APPENDS.inc()
        _WAL_APPEND_SECONDS.observe(perf_counter() - started)

    def operations(self, mode: str = "strict") -> list[SchemaOperation]:
        """The live logged operations, in order (read-only).

        Torn trailing writes are tolerated and records fenced off by the
        checkpoint generation are skipped; structural corruption raises
        :class:`~repro.core.errors.CorruptRecordError` in strict mode.
        A final record that parses but decodes to no valid operation is
        *schema* corruption, not a torn write, and is treated as corrupt
        no matter where it sits.
        """
        records, _ = read_log(
            self.path, fs=self.fs, mode=mode, decode=operation_from_dict
        )
        live, _ = fence_records(records, self.generation)
        return [r.decoded for r in live]

    def repair(self, mode: str = "strict") -> SalvageReport:
        """Heal the log in place (truncate torn tails; in salvage mode,
        quarantine corruption into a ``.corrupt`` sidecar).

        Also removes a stale checkpoint temp file — residue of a crash
        (or torn rename) inside a checkpoint publish.  The real
        checkpoint is authoritative either way; leaving the temp behind
        would hand backup tooling and future publishes a plausible-
        looking but unterminated snapshot.
        """
        stale_tmp = self.checkpoint_path.with_suffix(
            self.checkpoint_path.suffix + ".tmp"
        )
        if self.fs.exists(stale_tmp):
            logger.warning(
                "removing stale checkpoint temp %s (crash residue from "
                "an interrupted checkpoint publish)", stale_tmp,
            )
            self.fs.unlink(stale_tmp)
        records, report = read_log(
            self.path, fs=self.fs, mode=mode,
            decode=operation_from_dict, repair=True,
        )
        _, report.records_fenced = fence_records(records, self.generation)
        if not report.clean:
            logger.warning("repair(%s): %s", mode, report.summary())
        return report

    def checkpoint(self, lattice: TypeLattice) -> None:
        """Fold the applied operations into an atomic snapshot.

        The checkpoint is written to a temp file, fsynced, renamed into
        place and the directory fsynced; only then is the WAL truncated.
        Records appended before the checkpoint carry an older generation
        than the one stamped into it, so a crash *between* the rename
        and the truncate cannot double-apply the tail on recovery — the
        fence skips it.
        """
        if self.fence is not None:
            self.fence()
        new_generation = self.generation + 1
        sync = self.durability.sync_checkpoints
        write_checkpoint(
            self.checkpoint_path,
            lattice_to_dict(lattice),
            new_generation,
            fs=self.fs,
            sync=sync,
        )
        self._generation = new_generation
        self.fs.write_bytes(self.path, b"")
        if sync:
            timed_fsync(self.fs, self.path)
        _WAL_CHECKPOINTS.inc()
        logger.info(
            "checkpointed %d types to %s (generation %d); WAL truncated",
            len(lattice), self.checkpoint_path, new_generation,
        )

    def recover(
        self, policy: LatticePolicy | None = None, mode: str = "strict"
    ) -> TypeLattice:
        """Rebuild the lattice: load the checkpoint (if any), then replay
        the live tail of the log."""
        state, self._generation = load_checkpoint(
            self.checkpoint_path, fs=self.fs
        )
        lattice = (
            lattice_from_dict(state) if state is not None
            else TypeLattice(policy)
        )
        for op in self.operations(mode):
            op.apply(lattice)
        return lattice

    def sync(self) -> None:
        """Force the appended records to stable storage (batch policy)."""
        if self.fs.exists(self.path):
            timed_fsync(self.fs, self.path)

    def gc(self) -> int:
        """Sweep backend garbage (orphan object-store segments, stale
        temp residue); returns the number of objects removed.

        Backends without substrate garbage report zero.  Call only with
        exclusive write access established — the fenced primary after
        acquiring its lease, or ``repro recover`` — never from a
        read-only or pre-fence open (see ``docs/storage.md``).
        """
        collect = getattr(self.fs, "gc", None)
        return collect() if callable(collect) else 0

    def clear(self) -> None:
        self.fs.unlink(self.path)
        self.fs.unlink(self.checkpoint_path)
        self._generation = 0


class DurableLattice:
    """An :class:`EvolutionJournal` wired to a :class:`JournalFile`.

    Every applied operation is logged *before* the in-memory journal
    records it as done (write-ahead), so recovery never misses an applied
    change.

    Replay is *batched*: recovery applies the whole WAL tail without ever
    touching a derived term, so the lattice's invalidations coalesce in
    its dirty set and the first post-open query pays a single derivation
    pass — reopening a database costs O(plan), not O(plan × schema).

    ``durability`` selects the fsync/auto-checkpoint policy and
    ``recovery`` the damage response (``"strict"`` raises on corruption,
    ``"salvage"`` quarantines it); the outcome of opening is recorded in
    :attr:`recovery_report`.

    The full :class:`~repro.core.transactions.SchemaTransaction` protocol
    is supported (``apply``/``undo``/``__len__``/``lattice``), so atomic
    batches work directly against durable storage::

        with SchemaTransaction(durable) as txn:
            txn.apply(...)
    """

    def __init__(
        self,
        path: str | Path,
        policy: LatticePolicy | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        fs: StorageFS | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.file = JournalFile(
            path, durability=durability, fs=fs, retry=retry
        )
        # Opening is the mutating entry point, so heal crash residue now
        # (a torn tail must not swallow the next append).
        self.recovery_report = self.file.repair(recovery)
        state, generation = load_checkpoint(
            self.file.checkpoint_path, fs=self.file.fs
        )
        self.file._generation = generation
        base = (
            lattice_from_dict(state) if state is not None
            else TypeLattice(policy)
        )
        # Replay the WAL tail *through* the in-memory journal so history
        # (and undo) survive a restart.
        self.journal = EvolutionJournal(lattice=base)
        started = perf_counter()
        replayed = 0
        for op in self.file.operations(recovery):
            self.journal.apply(op)
            replayed += 1
        elapsed = perf_counter() - started
        self._since_checkpoint = replayed
        if replayed:
            _WAL_REPLAY_OPS.inc(replayed)
            _WAL_COALESCED.observe(replayed)
            _WAL_REPLAY_SECONDS.observe(elapsed)
            logger.info(
                "replayed %d WAL operation(s) from %s (coalesced into one "
                "deferred derivation pass)", replayed, self.file.path,
            )
        budget = self.file.durability.replay_budget_seconds
        if replayed and budget is not None and elapsed > budget:
            logger.info(
                "replay took %.3fs (budget %.3fs): auto-checkpointing",
                elapsed, budget,
            )
            self.checkpoint()
            _WAL_AUTO_CHECKPOINTS.labels(reason="replay-budget").inc()

    @property
    def lattice(self) -> TypeLattice:
        return self.journal.lattice

    @property
    def degraded(self) -> bool:
        """Whether the store is latched read-only (see :class:`JournalFile`)."""
        return self.file.degraded

    def __len__(self) -> int:
        return len(self.journal)

    def apply(self, operation: SchemaOperation):
        """Validate, log (write-ahead), then apply."""
        operation.validate(self.lattice)
        self.file.append(operation)
        result = self.journal.apply(operation)
        self._since_checkpoint += 1
        self._maybe_auto_checkpoint()
        return result

    def apply_all(self, operations):
        """Apply a batch; invalidations coalesce into one later pass."""
        return [self.apply(op) for op in operations]

    def undo(self):
        """Undo the last operation, keeping the WAL replay-consistent.

        The recorded inverse operations are appended to the log *before*
        the in-memory undo (write-ahead, like ``apply``): a replay then
        re-executes the original operation followed by its inverses and
        lands in the same state.
        """
        if not len(self.journal):
            raise JournalError("nothing to undo")
        entry = self.journal.entries[-1]
        for op in entry.inverse:
            self.file.append(op)
            self._since_checkpoint += 1
        result = self.journal.undo()
        self._maybe_auto_checkpoint()
        return result

    def _maybe_auto_checkpoint(self) -> None:
        every = self.file.durability.checkpoint_every
        if every is not None and self._since_checkpoint >= every:
            logger.info(
                "auto-checkpoint after %d record(s) (policy: every %d)",
                self._since_checkpoint, every,
            )
            self.checkpoint()
            _WAL_AUTO_CHECKPOINTS.labels(reason="interval").inc()

    def checkpoint(self) -> None:
        self.file.checkpoint(self.lattice)
        self._since_checkpoint = 0

    def sync(self) -> None:
        """Flush appended records to disk (the batch-policy commit point)."""
        self.file.sync()

    def gc(self) -> int:
        """Sweep backend garbage; exclusive-writer-only (see
        :meth:`JournalFile.gc`)."""
        return self.file.gc()

    @classmethod
    def reopen(
        cls,
        path: str | Path,
        policy: LatticePolicy | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        fs: StorageFS | None = None,
        retry: RetryPolicy | None = None,
    ) -> "DurableLattice":
        """Simulated restart: rebuild purely from durable state."""
        return cls(
            path, policy, durability=durability, recovery=recovery,
            fs=fs, retry=retry,
        )
