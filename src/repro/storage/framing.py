"""Framed WAL records: checksummed framing, fenced checkpoints, salvage.

The shared durability substrate under :mod:`repro.storage.journal` (the
schema WAL) and :mod:`repro.storage.durable_store` (the objectbase WAL).
Before this module existed, both kept private copies of the same
line-scanning loop and detected torn tails only by JSON parse failure;
now every record is *structurally* verifiable and both logs read through
one :func:`read_log`.

Record framing
--------------
A framed record is one text line::

    #W1 <generation> <length> <crc32> <payload>\\n

* ``#W1`` — frame magic plus format version (version byte, in spirit);
* ``generation`` — the checkpoint generation current at append time
  (decimal), the fence that keeps a crash between checkpoint-write and
  WAL-truncate from double-applying the tail;
* ``length`` — byte length of the UTF-8 payload;
* ``crc32`` — CRC-32 of the payload bytes, eight hex digits;
* ``payload`` — one compact JSON object (never containing a newline).

Legacy WALs (bare JSONL, every line starting ``{``) read transparently:
a line that does not start with ``#W`` is parsed as an unframed record
with unknown generation, which is always replayed — exactly the
pre-framing semantics, so old journals recover identically.

Damage taxonomy
---------------
Records are written whole-line; a crash mid-append therefore leaves an
*unterminated* final line.  That single observation drives the
classification:

* **torn** — the final line lacks its newline and fails structural
  checks: crash residue, silently truncated by recovery (both modes).
* **corrupt** — a newline-terminated line fails its checks (bit flip,
  interior truncation), or any line's payload passes its checksum but
  fails semantic decoding (``decode`` raised): never crash residue.
  Strict mode raises :class:`~repro.core.errors.CorruptRecordError`;
  salvage mode truncates the log to the last valid record and
  quarantines the damaged suffix into a ``.corrupt`` sidecar.
* a final line that is *valid but unterminated* (crash after the payload
  byte, before the newline) is **kept** — dropping it would discard a
  fully-written record — and repair re-terminates it.

Checkpoint fencing
------------------
:func:`write_checkpoint` writes ``{"format": 2, "generation": G,
"state": ...}`` to a temp file, fsyncs it, :func:`os.replace`\\ s it into
place and fsyncs the directory — atomic on POSIX.  Recovery replays only
WAL records whose generation is at least the checkpoint's; a tail left
behind by a crash before WAL truncation carries the previous generation
and is fenced off.  A legacy checkpoint (the bare state dict) reads as
generation 0.
"""

from __future__ import annotations

import json
import logging
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable

from ..core.errors import CorruptRecordError, JournalError
from ..obs.metrics import FSYNC_BUCKETS, REGISTRY
from .faults import RealFS, StorageFS

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "CHECKPOINT_FORMAT",
    "RECOVERY_MODES",
    "DurabilityPolicy",
    "FramedRecord",
    "LogDamage",
    "LogScan",
    "SalvageReport",
    "encode_frame",
    "frame_payload",
    "scan_log",
    "read_log",
    "fence_records",
    "timed_fsync",
    "write_checkpoint",
    "load_checkpoint",
]

logger = logging.getLogger(__name__)

FRAME_MAGIC = b"#W"
FRAME_VERSION = 1
_FRAME_TAG = b"#W1"
CHECKPOINT_FORMAT = 2

#: Recovery modes accepted throughout the storage layer.
RECOVERY_MODES = ("strict", "salvage")

_FSYNCS = REGISTRY.counter(
    "repro_wal_fsyncs_total", "File fsyncs issued by the durability layer"
)
_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds", "Latency of one WAL/checkpoint fsync",
    buckets=FSYNC_BUCKETS,
)
_TORN_TAILS = REGISTRY.counter(
    "repro_wal_torn_tails_total",
    "Torn trailing writes discarded during recovery",
)
_CRC_FAILURES = REGISTRY.counter(
    "repro_wal_crc_failures_total",
    "Framed records rejected by checksum/length verification",
)
_SALVAGED = REGISTRY.counter(
    "repro_wal_salvaged_records_total",
    "Damaged or unreachable records quarantined by salvage recovery",
)
_QUARANTINED_BYTES = REGISTRY.counter(
    "repro_wal_quarantined_bytes_total",
    "Bytes moved into .corrupt quarantine sidecars",
)
_FENCED = REGISTRY.counter(
    "repro_wal_fenced_records_total",
    "Stale-generation WAL records skipped by checkpoint fencing",
)
_QUARANTINE_FAILURES = REGISTRY.counter(
    "repro_wal_quarantine_failures_total",
    "Quarantine sidecar writes that failed (e.g. disk full); the "
    "damaged bytes were truncated without a preserved copy",
)


@dataclass(frozen=True)
class DurabilityPolicy:
    """How hard the storage layer pushes bytes toward the platter.

    Attributes
    ----------
    fsync:
        ``"always"`` — fsync after every record append (each acknowledged
        operation survives power loss); ``"batch"`` — fsync only at
        checkpoints and explicit ``sync()`` calls (a crash loses at most
        the un-synced tail, never consistency); ``"never"`` — leave
        flushing to the OS entirely.
    checkpoint_every:
        Auto-checkpoint after this many records since the last
        checkpoint (``None`` disables; the ROADMAP's compaction policy).
    replay_budget_seconds:
        Auto-checkpoint right after open when replaying the WAL tail
        took longer than this budget (``None`` disables).
    """

    fsync: str = "batch"
    checkpoint_every: int | None = None
    replay_budget_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.fsync not in ("always", "batch", "never"):
            raise ValueError(
                f"fsync policy must be always/batch/never, not {self.fsync!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")

    @property
    def sync_appends(self) -> bool:
        return self.fsync == "always"

    @property
    def sync_checkpoints(self) -> bool:
        return self.fsync != "never"


@dataclass(frozen=True)
class FramedRecord:
    """One valid record recovered from a log."""

    payload: dict
    decoded: Any
    generation: int | None  #: None for legacy unframed records
    offset: int  #: byte offset of the line start
    end: int  #: byte offset one past the line (incl. newline)
    lineno: int


@dataclass(frozen=True)
class LogDamage:
    """The first invalid point of a log, classified."""

    kind: str  #: "torn" | "corrupt"
    offset: int  #: where the valid prefix ends
    lineno: int
    reason: str


@dataclass
class LogScan:
    """Everything :func:`scan_log` can tell about a log's bytes."""

    records: list[FramedRecord]
    damage: LogDamage | None
    valid_end: int  #: byte offset of the end of the valid prefix
    size: int
    dropped_records: int  #: complete-looking lines beyond the damage
    needs_newline: bool  #: final record valid but unterminated


@dataclass
class SalvageReport:
    """What recovery kept, fenced, and threw away."""

    mode: str
    path: str
    records_recovered: int = 0
    records_fenced: int = 0
    records_dropped: int = 0
    torn_tail_bytes: int = 0
    bytes_quarantined: int = 0
    quarantine_path: str | None = None
    quarantine_error: str | None = None  #: sidecar write failed (ENOSPC…)
    damage_reason: str | None = None

    @property
    def clean(self) -> bool:
        return (
            self.torn_tail_bytes == 0
            and self.bytes_quarantined == 0
            and self.records_dropped == 0
        )

    def summary(self) -> str:
        if self.clean:
            return (
                f"{self.path}: clean; {self.records_recovered} record(s) "
                f"live, {self.records_fenced} fenced"
            )
        parts = [
            f"{self.path}: {self.records_recovered} record(s) recovered"
        ]
        if self.torn_tail_bytes:
            parts.append(f"torn tail of {self.torn_tail_bytes} byte(s)")
        if self.records_dropped or self.bytes_quarantined:
            where = (
                f" -> {self.quarantine_path}" if self.quarantine_path else ""
            )
            parts.append(
                f"{self.records_dropped} record(s) / "
                f"{self.bytes_quarantined} byte(s) quarantined{where}"
            )
        if self.quarantine_error:
            parts.append(
                f"quarantine sidecar failed ({self.quarantine_error}); "
                f"damaged bytes discarded"
            )
        if self.damage_reason:
            parts.append(f"cause: {self.damage_reason}")
        return "; ".join(parts)


def encode_frame(payload: str, generation: int) -> bytes:
    """One framed record line (including the trailing newline)."""
    if "\n" in payload:
        raise ValueError("record payloads must not contain newlines")
    data = payload.encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return b"%s %d %d %08x " % (_FRAME_TAG, generation, len(data), crc) \
        + data + b"\n"


def frame_payload(line: str | bytes) -> dict:
    """Parse one framed line back to its payload object.

    For tools (plan loaders, inspectors) that read WAL lines outside the
    recovery path; raises :class:`CorruptRecordError` on any mismatch.
    """
    raw = line.encode("utf-8") if isinstance(line, str) else line
    record, reason = _parse_line(raw.rstrip(b"\n"), None, 1)
    if record is None:
        raise CorruptRecordError(f"bad WAL frame: {reason}")
    return record.payload


def _parse_line(
    line: bytes,
    decode: Callable[[dict], Any] | None,
    lineno: int,
) -> tuple[FramedRecord | None, str | None]:
    """Parse one log line; ``(record, None)`` or ``(None, reason)``.

    Structural failures return a reason; semantic failures (the payload
    verified but ``decode`` rejected it) are prefixed ``"semantic: "``
    so the caller can classify them as corruption even on a torn line.
    """
    generation: int | None = None
    if line.startswith(FRAME_MAGIC):
        parts = line.split(b" ", 4)
        if len(parts) != 5:
            return None, "incomplete frame header"
        if parts[0] != _FRAME_TAG:
            return None, f"unsupported frame version {parts[0][2:]!r}"
        try:
            generation = int(parts[1])
            length = int(parts[2])
            crc = int(parts[3], 16)
        except ValueError:
            return None, "unparseable frame header"
        payload = parts[4]
        if len(payload) != length:
            _CRC_FAILURES.inc()
            return None, (
                f"length mismatch: header says {length}, "
                f"line carries {len(payload)}"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            _CRC_FAILURES.inc()
            return None, f"checksum mismatch (expected {crc:08x})"
    else:
        payload = line
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        if generation is not None:
            # The checksum passed but the payload is not JSON: the
            # writer itself misbehaved — semantic, not torn.
            return None, f"semantic: checksummed payload is not JSON: {exc}"
        return None, f"not JSON: {exc}"
    if not isinstance(obj, dict):
        return None, f"semantic: record is not an object: {obj!r}"
    decoded: Any = obj
    if decode is not None:
        try:
            decoded = decode(obj)
        except (ValueError, KeyError, TypeError) as exc:
            return None, f"semantic: undecodable record: {exc}"
    return (
        FramedRecord(
            payload=obj, decoded=decoded, generation=generation,
            offset=-1, end=-1, lineno=lineno,
        ),
        None,
    )


def scan_log(
    data: bytes, decode: Callable[[dict], Any] | None = None
) -> LogScan:
    """Classify a log's bytes into a valid prefix plus optional damage.

    Never raises and never touches the filesystem — pure classification;
    :func:`read_log` applies the recovery-mode policy on top.
    """
    records: list[FramedRecord] = []
    damage: LogDamage | None = None
    valid_end = 0
    needs_newline = False
    dropped = 0
    pos = 0
    lineno = 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        terminated = newline != -1
        line_end = newline + 1 if terminated else size
        line = data[pos:newline] if terminated else data[pos:size]
        lineno += 1
        if line.strip():
            if damage is not None:
                dropped += 1
                pos = line_end
                continue
            record, reason = _parse_line(line, decode, lineno)
            if record is None:
                semantic = reason is not None and reason.startswith(
                    "semantic: "
                )
                torn = not terminated and not semantic
                damage = LogDamage(
                    kind="torn" if torn else "corrupt",
                    offset=valid_end,
                    lineno=lineno,
                    reason=reason or "unreadable record",
                )
            else:
                records.append(
                    FramedRecord(
                        payload=record.payload,
                        decoded=record.decoded,
                        generation=record.generation,
                        offset=pos,
                        end=line_end,
                        lineno=lineno,
                    )
                )
                valid_end = line_end if terminated else size
                needs_newline = not terminated
        elif damage is None:
            valid_end = line_end
        pos = line_end
    return LogScan(
        records=records,
        damage=damage,
        valid_end=valid_end,
        size=size,
        dropped_records=dropped,
        needs_newline=needs_newline,
    )


def read_log(
    path: Path,
    *,
    fs: StorageFS | None = None,
    mode: str = "strict",
    decode: Callable[[dict], Any] | None = None,
    repair: bool = False,
) -> tuple[list[FramedRecord], SalvageReport]:
    """Read a WAL, applying the recovery-mode policy.

    ``mode="strict"`` raises :class:`CorruptRecordError` on corruption
    and silently (but countedly) ignores a torn tail; ``mode="salvage"``
    keeps the valid prefix whatever the damage.  With ``repair=True``
    the file is additionally healed in place: torn tails are truncated
    away (both modes), an unterminated-but-valid final record gets its
    newline, and salvage mode moves every damaged byte into a
    ``<name>.corrupt`` quarantine sidecar before truncating.  Read-only
    callers (plan analysis) leave ``repair`` off.
    """
    if mode not in RECOVERY_MODES:
        raise ValueError(
            f"recovery mode must be one of {RECOVERY_MODES}, not {mode!r}"
        )
    fs = fs or RealFS()
    path = Path(path)
    report = SalvageReport(mode=mode, path=str(path))
    if not fs.exists(path):
        return [], report
    data = fs.read_bytes(path)
    scan = scan_log(data, decode)
    report.records_recovered = len(scan.records)
    if scan.damage is not None:
        report.damage_reason = (
            f"line {scan.damage.lineno}: {scan.damage.reason}"
        )
        if scan.damage.kind == "corrupt":
            if mode == "strict":
                raise CorruptRecordError(
                    f"{path} is corrupt at line {scan.damage.lineno}: "
                    f"{scan.damage.reason} (run `repro recover "
                    f"--mode salvage` to quarantine the damage)"
                )
            report.records_dropped = scan.dropped_records + 1
        else:
            _TORN_TAILS.inc()
            report.torn_tail_bytes = scan.size - scan.damage.offset
            logger.warning(
                "%s: discarding torn tail of %d byte(s) (%s)",
                path, report.torn_tail_bytes, scan.damage.reason,
            )
    if repair:
        _repair_in_place(path, fs, scan, report)
    return scan.records, report


def _repair_in_place(
    path: Path, fs: StorageFS, scan: LogScan, report: SalvageReport
) -> None:
    """Heal ``path`` to exactly its valid prefix (see :func:`read_log`)."""
    if scan.damage is not None:
        doomed_start = scan.damage.offset
        if report.mode == "salvage" and scan.damage.kind == "corrupt":
            quarantine = path.with_suffix(path.suffix + ".corrupt")
            data = fs.read_bytes(path)
            condemned = data[doomed_start:]
            header = json.dumps({
                "quarantined_from": str(path),
                "offset": doomed_start,
                "lineno": scan.damage.lineno,
                "reason": scan.damage.reason,
                "bytes": len(condemned),
            }, sort_keys=True)
            try:
                fs.append_bytes(
                    quarantine, b"#QUARANTINE " + header.encode() + b"\n"
                )
                fs.append_bytes(quarantine, condemned)
                if not condemned.endswith(b"\n"):
                    fs.append_bytes(quarantine, b"\n")
            except OSError as exc:
                # Best effort: quarantine preserves evidence, but the
                # *repair* (truncating to the valid prefix) must succeed
                # even on a full disk.  Drop the partial sidecar so a
                # later salvage does not mistake it for a whole copy.
                try:
                    fs.unlink(quarantine)
                except OSError:
                    pass
                report.quarantine_error = str(exc)
                _QUARANTINE_FAILURES.inc()
                logger.error(
                    "%s: quarantine to %s failed (%s); truncating the "
                    "damaged suffix without a preserved copy",
                    path, quarantine, exc,
                )
            else:
                report.bytes_quarantined = len(condemned)
                report.quarantine_path = str(quarantine)
                _QUARANTINED_BYTES.inc(len(condemned))
            _SALVAGED.inc(report.records_dropped)
            logger.warning(
                "%s: salvaged around %d byte(s) (%d record(s)) at line %d",
                path, len(condemned), report.records_dropped,
                scan.damage.lineno,
            )
        fs.truncate(path, doomed_start)
    elif scan.needs_newline:
        # Crash after the last payload byte but before its newline: the
        # record is whole, so keep it and just re-terminate the line.
        fs.append_bytes(path, b"\n")


def timed_fsync(fs: StorageFS, path: Path) -> None:
    """fsync ``path``, observed; an EIO becomes a typed JournalError."""
    started = perf_counter()
    try:
        fs.fsync_file(path)
    except OSError as exc:
        raise JournalError(
            f"fsync of {path} failed; durability cannot be guaranteed: "
            f"{exc}"
        ) from exc
    _FSYNCS.inc()
    _FSYNC_SECONDS.observe(perf_counter() - started)


def fence_records(
    records: list[FramedRecord], generation: int
) -> tuple[list[FramedRecord], int]:
    """Drop records older than the checkpoint generation.

    Legacy (unframed) records carry no generation and always replay,
    matching pre-framing behavior.  Returns ``(live, fenced_count)``.
    """
    live = [
        r for r in records
        if r.generation is None or r.generation >= generation
    ]
    fenced = len(records) - len(live)
    if fenced:
        _FENCED.inc(fenced)
        logger.info(
            "fenced %d stale WAL record(s) predating checkpoint "
            "generation %d", fenced, generation,
        )
    return live, fenced


def write_checkpoint(
    path: Path,
    state: dict,
    generation: int,
    *,
    fs: StorageFS | None = None,
    sync: bool = True,
) -> None:
    """Atomically publish a checkpoint: temp file, fsync, rename, fsync
    the directory.  A crash at any boundary leaves either the old or the
    new checkpoint fully intact, never a torn hybrid."""
    fs = fs or RealFS()
    path = Path(path)
    doc = {
        "format": CHECKPOINT_FORMAT,
        "generation": generation,
        "state": state,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        fs.write_bytes(tmp, json.dumps(doc, sort_keys=True).encode("utf-8"))
        if sync:
            timed_fsync(fs, tmp)
        fs.replace(tmp, path)
    except (OSError, JournalError) as exc:
        # A failed temp write or fsync (disk full, EIO) never touched
        # the real checkpoint: remove the partial temp so later
        # recoveries see no residue, and surface a typed error with the
        # old state intact.
        try:
            fs.unlink(tmp)
        except OSError:
            pass
        if isinstance(exc, JournalError):
            raise
        raise JournalError(
            f"checkpoint write to {path} failed; the previous "
            f"checkpoint is intact: {exc}"
        ) from exc
    if sync and not getattr(fs, "durable_rename", False):
        # Backends whose rename is intrinsically durable (sqlite
        # transactions, manifest swaps) need no directory fsync.
        fs.fsync_dir(path.parent if str(path.parent) else Path("."))


def load_checkpoint(
    path: Path, *, fs: StorageFS | None = None
) -> tuple[dict | None, int]:
    """Read a checkpoint, legacy or fenced: ``(state, generation)``.

    A missing checkpoint is ``(None, 0)``; a legacy checkpoint (the bare
    state dict, written before generations existed) is generation 0.
    """
    fs = fs or RealFS()
    path = Path(path)
    if not fs.exists(path):
        return None, 0
    raw = fs.read_bytes(path)
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptRecordError(
            f"checkpoint {path} is unreadable: {exc} (checkpoints are "
            f"written atomically; this is external damage and cannot be "
            f"salvaged from the WAL alone)"
        ) from exc
    if (
        isinstance(data, dict)
        and data.get("format") == CHECKPOINT_FORMAT
        and "generation" in data
    ):
        return data["state"], int(data["generation"])
    return data, 0
