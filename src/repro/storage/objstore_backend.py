"""The content-addressed object-store backend: immutable segments plus
an atomically-swapped manifest pointer.

Layout (all under one root directory, the idiom of Snippet 2's Retikon
``ObjectStore``)::

    <root>/segments/<sha256>.seg    immutable, content-addressed
    <root>/manifest.json            {"format": 1, "objects": {...}}

Every logical byte stream is a manifest entry listing the segments that
concatenate to its contents.  Mutations never touch existing segments:
new data is written to a new segment (atomic temp+rename under its
content hash), then the *manifest* is swapped via
:func:`~repro.storage.backend.atomic_write_bytes` — temp, fsync,
rename, directory fsync.  The manifest is therefore the single commit
point:

* a crash before the swap leaves the old manifest and an **orphan
  segment** — invisible to readers, collected by :meth:`gc` (the
  backend-shaped fault ``FaultyFS(backend_torn=True)`` injects exactly
  this state via :meth:`simulate_torn_append`);
* a crash during the swap leaves either manifest whole (POSIX rename),
  never a hybrid — ``supports_atomic_replace``;
* ``replace`` is a manifest-only re-pointing, so ``durable_rename`` is
  true and every primitive returns only after its swap is durable
  (``durable_writes``).

Content addressing deduplicates identical payloads for free (appending
the same framed record twice references one segment twice) and makes
segments verifiable: a segment whose bytes do not hash to its name is
damage, never residue.

The manifest is re-read from disk on every operation rather than
cached, so independent backend instances over the same root (a writer
and a :class:`~repro.replication.primary.ReplicationSource` reader)
stay coherent without shared state; single-writer discipline is the
caller's (the primary lease / FIFO writer lock), as for every backend.

Because other processes may hold a live instance over the same root,
:meth:`gc` must never run from a merely-opened instance: opening the
store performs **no** garbage collection by default
(``gc_on_open=False``).  Only an owner that has established exclusive
write access — the fenced primary after acquiring its lease, or
``repro recover`` — should sweep, and even then :meth:`gc` skips any
candidate younger than ``gc_grace`` seconds so a concurrent writer's
in-flight segment (written but not yet published by its manifest swap)
or ``*.seg.tmp`` from an in-flight :func:`atomic_write_bytes` is never
deleted out from under it.

Write-amplification tradeoff: every mutation rewrites the whole
manifest (all streams, all segment lists) and fsyncs it, so the cost
of one WAL append grows with the total number of segments ever
appended — O(n) per append, quadratic over the life of the store —
and the manifest itself grows one digest per append.  Checkpoints
bound this in practice: ``truncate``/``write_bytes`` re-point a stream
at a single coalesced segment, which is exactly what the checkpoint
cadence of :class:`~repro.storage.framing.DurabilityPolicy` does to
the WAL stream.  The backend is deliberately simple rather than fast;
``docs/storage.md`` records the tradeoff.
"""

from __future__ import annotations

import errno
import hashlib
import json
import threading
import time
from pathlib import Path

from ..obs.metrics import REGISTRY
from .backend import StorageBackend, atomic_write_bytes
from .faults import RealFS

__all__ = ["ObjectStoreBackend", "DEFAULT_GC_GRACE"]

_GC_SEGMENTS = REGISTRY.counter(
    "repro_objstore_gc_segments_total",
    "Orphan object-store segments removed by GC",
)

MANIFEST_FORMAT = 1

#: Default :meth:`ObjectStoreBackend.gc` grace period (seconds).  An
#: unreferenced segment younger than this may be a concurrent writer's
#: append caught between its segment write and its manifest swap (a
#: window of milliseconds in practice), so it is spared; anything older
#: is crash residue.
DEFAULT_GC_GRACE = 60.0


class ObjectStoreBackend(StorageBackend):
    """Immutable content-addressed segments behind a manifest pointer."""

    scheme = "objstore"
    supports_atomic_replace = True
    supports_transactions = False
    durable_rename = True
    durable_writes = True

    def __init__(
        self,
        root: str | Path,
        *,
        gc_on_open: bool = False,
        gc_grace: float = DEFAULT_GC_GRACE,
        sync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.manifest_path = self.root / "manifest.json"
        self.sync = sync
        self.gc_grace = gc_grace
        self._disk = RealFS()
        self._lock = threading.RLock()
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        #: Orphan segments collected at construction when the caller
        #: owns the store exclusively and opted in with ``gc_on_open``
        #: (observability; conformance tests assert sweep counts here).
        #: Default off: merely resolving an ``objstore:`` URL (a
        #: replication reader, a failover candidate that has not yet
        #: acquired the lease) must never delete another process's
        #: in-flight writes.
        self.gc_removed = 0
        if gc_on_open:
            self.gc_removed = self.gc()

    # -- manifest -------------------------------------------------------

    def _manifest(self) -> dict:
        if not self._disk.exists(self.manifest_path):
            return {"format": MANIFEST_FORMAT, "objects": {}}
        return json.loads(
            self._disk.read_bytes(self.manifest_path).decode("utf-8")
        )

    def _swap(self, manifest: dict) -> None:
        atomic_write_bytes(
            self._disk,
            self.manifest_path,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
            sync=self.sync,
        )

    # -- segments -------------------------------------------------------

    def _segment_path(self, digest: str) -> Path:
        return self.segments_dir / f"{digest}.seg"

    def _write_segment(self, data: bytes) -> str:
        """Persist ``data`` under its content hash; idempotent."""
        digest = hashlib.sha256(data).hexdigest()
        seg = self._segment_path(digest)
        if not self._disk.exists(seg):
            atomic_write_bytes(self._disk, seg, data, sync=self.sync)
        return digest

    @staticmethod
    def _key(path: Path) -> str:
        return str(path)

    def _entry(self, manifest: dict, path: Path) -> dict:
        entry = manifest["objects"].get(self._key(path))
        if entry is None:
            raise FileNotFoundError(
                errno.ENOENT, "no such object in store", str(path)
            )
        return entry

    # -- StorageFS primitives -------------------------------------------

    def exists(self, path: Path) -> bool:
        with self._lock:
            return self._key(path) in self._manifest()["objects"]

    def size(self, path: Path) -> int:
        with self._lock:
            return sum(self._entry(self._manifest(), path)["sizes"])

    def read_bytes(self, path: Path) -> bytes:
        with self._lock:
            entry = self._entry(self._manifest(), path)
            chunks = []
            for digest in entry["segments"]:
                seg = self._segment_path(digest)
                if not self._disk.exists(seg):
                    raise OSError(
                        errno.EIO,
                        f"object store corrupt: segment {digest} "
                        f"referenced by {path} is missing",
                    )
                chunks.append(self._disk.read_bytes(seg))
        return b"".join(chunks)

    def append_bytes(self, path: Path, data: bytes) -> None:
        with self._lock:
            manifest = self._manifest()
            entry = manifest["objects"].setdefault(
                self._key(path), {"segments": [], "sizes": []}
            )
            digest = self._write_segment(data)
            entry["segments"].append(digest)
            entry["sizes"].append(len(data))
            self._swap(manifest)

    def write_bytes(self, path: Path, data: bytes) -> None:
        with self._lock:
            manifest = self._manifest()
            digest = self._write_segment(data)
            manifest["objects"][self._key(path)] = {
                "segments": [digest], "sizes": [len(data)],
            }
            self._swap(manifest)

    def replace(self, src: Path, dst: Path) -> None:
        with self._lock:
            manifest = self._manifest()
            self._entry(manifest, src)
            manifest["objects"][self._key(dst)] = (
                manifest["objects"].pop(self._key(src))
            )
            self._swap(manifest)

    def truncate(self, path: Path, size: int) -> None:
        with self._lock:
            data = self.read_bytes(path)
            if size > len(data):
                data = data.ljust(size, b"\x00")
            manifest = self._manifest()
            trimmed = data[:size]
            digest = self._write_segment(trimmed)
            manifest["objects"][self._key(path)] = {
                "segments": [digest], "sizes": [len(trimmed)],
            }
            self._swap(manifest)

    def unlink(self, path: Path) -> None:
        with self._lock:
            manifest = self._manifest()
            if manifest["objects"].pop(self._key(path), None) is not None:
                self._swap(manifest)

    def fsync_file(self, path: Path) -> None:
        """No-op: every manifest swap is already durable."""

    def fsync_dir(self, path: Path) -> None:
        """No-op: directory durability is handled at each swap."""

    def mkdirs(self, path: Path) -> None:
        """No-op: objects are manifest keys; directories are notional."""

    # -- maintenance ----------------------------------------------------

    def gc(self, *, grace: float | None = None) -> int:
        """Remove segments the manifest no longer references.

        Crash residue — a segment written whose manifest swap never
        happened, or segments stranded by ``truncate``/``unlink``/
        ``write_bytes`` re-pointing — is invisible to readers and safe
        to delete; stale ``.tmp`` files from interrupted swaps likewise.

        Call this only with exclusive write access established (the
        fenced primary, ``repro recover``): the manifest snapshot below
        cannot see another process's append that is mid-swap.  As a
        second line of defense, any candidate whose mtime is within
        ``grace`` seconds (default :attr:`gc_grace`) is spared — a live
        writer's unpublished segment or in-flight ``*.seg.tmp`` is
        always that young, while genuine crash residue ages past the
        grace and is collected by a later sweep.
        """
        if grace is None:
            grace = self.gc_grace
        cutoff = time.time() - grace
        with self._lock:
            manifest = self._manifest()
            referenced = {
                digest
                for entry in manifest["objects"].values()
                for digest in entry["segments"]
            }
            removed = 0
            for seg in sorted(self.segments_dir.iterdir()):
                name = seg.name
                if name.endswith(".seg") and name[:-4] in referenced:
                    continue
                try:
                    if seg.stat().st_mtime > cutoff:
                        continue  # possibly a concurrent writer's in-flight file
                except OSError:
                    continue  # vanished under us: someone else's swap/cleanup
                self._disk.unlink(seg)
                removed += 1
        if removed:
            _GC_SEGMENTS.inc(removed)
        return removed

    # -- backend-shaped fault hook --------------------------------------

    def simulate_torn_append(self, path: Path, data: bytes) -> None:
        """The manifest-swap crash state: the segment reached disk, the
        pointer swap did not — an orphan segment.

        Readers must never see the append (the manifest is the commit
        point) and the next owner's :meth:`gc` sweep must collect the
        orphan; the ``append-backend-torn`` conformance point asserts
        both.
        """
        with self._lock:
            self._write_segment(data)
