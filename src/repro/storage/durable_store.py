"""A durable TIGUKAT objectbase: full snapshots + schema-operation WAL.

Completes the persistence story: :class:`DurableLattice` covers schema
only; :class:`DurableObjectbase` persists the whole store.  The recipe
is the classic one:

* **snapshot** — the complete objectbase (schema, behaviors, functions,
  classes, collections, instances) via
  :mod:`repro.storage.objectbase_snapshot`, written atomically with a
  checkpoint generation (see :mod:`repro.storage.framing`);
* **WAL** — between snapshots, every schema-evolution operation executed
  through the manager is appended as a framed, checksummed record (the
  §3.3 operations are all replayable: the log stores the manager method
  and arguments) *before* it mutates the in-memory store — genuine
  write-ahead logging;
* **recovery** — load the latest snapshot, replay the live (unfenced)
  WAL tail through a fresh :class:`SchemaManager`.

Because the log is written ahead of the mutation, a record can be on
disk for an operation that never applied: (a) the method was *rejected*
in memory — an ``__abort__`` marker is appended so replay skips the
record deterministically; (b) the process crashed between append and
apply — then the record is necessarily the *final* one, and replay
treats a rejected final record as the logged-but-unapplied tail (skips
it, with a counter) rather than corruption.  Any mid-log replay failure
is still a hard error: something other than a crash broke the log.

Instance mutations (AO/MO/DO) are *not* WAL-logged — like most object
stores, data durability rides on snapshots (call :meth:`checkpoint`),
while schema durability is continuous.  The recovery contract tested:
after any crash point, the schema is exact and the data is at the last
checkpoint.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Callable

from ..core.errors import JournalError, SchemaError
from ..obs.metrics import REGISTRY
from ..tigukat.evolution import SchemaManager
from ..tigukat.store import Objectbase
from .backend import resolve_storage_url
from .faults import StorageFS
from .framing import (
    DurabilityPolicy,
    SalvageReport,
    encode_frame,
    fence_records,
    load_checkpoint,
    read_log,
    timed_fsync,
    write_checkpoint,
)
from .objectbase_snapshot import objectbase_from_dict, objectbase_to_dict
from .reliability import DegradedLatch, RetryPolicy, append_record

__all__ = ["DurableObjectbase"]

logger = logging.getLogger(__name__)

_UNAPPLIED_TAIL = REGISTRY.counter(
    "repro_wal_unapplied_tail_total",
    "Logged-but-unapplied tail records skipped during replay",
)

#: manager methods that are WAL-replayable, with their argument names
_REPLAYABLE = {
    "at": ("name", "supertypes", "behaviors", "with_class"),
    "dt": ("name", "migrate_to"),
    "mt_ab": ("type_name", "behavior"),
    "mt_db": ("type_name", "behavior"),
    "mt_asr": ("type_name", "supertype"),
    "mt_dsr": ("type_name", "supertype"),
    "ac": ("type_name",),
    "dc": ("type_name", "migrate_to"),
    "db": ("behavior",),
    "al": ("name", "member_type"),
    "dl": ("name",),
    "define_stored_behavior": ("semantics", "name", "result_type"),
}

#: WAL marker for a record whose in-memory application was rejected.
_ABORT = "__abort__"


def _decode_wal_record(record: dict) -> dict:
    """Semantic validation for the shared framed-record reader."""
    method = record.get("method")
    if not isinstance(method, str):
        raise ValueError(f"record has no method: {record!r}")
    if method != _ABORT and method not in _REPLAYABLE:
        raise ValueError(f"unknown WAL method {method!r}")
    if not isinstance(record.get("args"), dict):
        raise ValueError(f"record has no args object: {record!r}")
    return record


class DurableObjectbase:
    """An objectbase whose schema evolution is write-ahead durable."""

    def __init__(
        self,
        directory: str | Path,
        computed_bodies: dict[str, Callable[..., Any]] | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        fs: StorageFS | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        # A backend URL resolves to its backend plus a logical directory
        # inside it; an explicit ``fs`` always wins (fault injection).
        target = resolve_storage_url(directory, fs=fs)
        self.directory = Path(target.path)
        self.fs = target.fs
        self.fs.mkdirs(self.directory)
        self.snapshot_path = self.directory / "objectbase.json"
        self.wal_path = self.directory / "schema.wal"
        self._bodies = computed_bodies or {}
        self.durability = durability or DurabilityPolicy()
        self.retry = retry or RetryPolicy()
        self.latch = DegradedLatch(store=str(self.wal_path))

        state, self._generation = load_checkpoint(
            self.snapshot_path, fs=self.fs
        )
        if state is not None:
            self.store = objectbase_from_dict(state, self._bodies)
        else:
            self.store = Objectbase()
        self.manager = SchemaManager(self.store)
        self._seq = 0
        self._since_checkpoint = 0
        self.recovery_report = self._replay_wal(recovery)

    # -- the durable operation surface -------------------------------------

    def execute(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one schema-evolution method durably (write-ahead logged).

        ``method`` is a :class:`SchemaManager` method name (or the
        behavior-definition helper).  The record is appended to the WAL
        *before* the method touches the store — write-ahead, matching
        :meth:`DurableLattice.apply` — so no applied mutation can be
        lost.  If the method is then rejected in memory, an ``__abort__``
        marker is appended so replay skips the record; a crash between
        append and apply leaves the record as the final one, which
        replay treats as an unapplied tail (see the module docstring).
        """
        spec = _REPLAYABLE.get(method)
        if spec is None:
            raise JournalError(
                f"{method!r} is not a durable (WAL-replayable) operation"
            )
        target = (
            getattr(self.manager, method)
            if hasattr(self.manager, method)
            else getattr(self.store, method)
        )
        record_args = self._bind(spec, args, kwargs)
        self._seq += 1
        self._append(
            {"method": method, "args": record_args, "seq": self._seq}
        )
        try:
            result = target(*args, **kwargs)
        except SchemaError:
            self._append({"method": _ABORT, "args": {"seq": self._seq}})
            raise
        self._since_checkpoint += 1
        self._maybe_auto_checkpoint()
        return result

    @property
    def degraded(self) -> bool:
        """Whether the store is latched read-only after append failure."""
        return self.latch.degraded

    def _append(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True)
        append_record(
            self.fs,
            self.wal_path,
            encode_frame(payload, self._generation),
            retry=self.retry,
            latch=self.latch,
            sync=(
                (lambda: timed_fsync(self.fs, self.wal_path))
                if self.durability.sync_appends else None
            ),
        )

    def _bind(self, spec: tuple[str, ...], args: tuple, kwargs: dict) -> dict:
        bound: dict[str, Any] = {}
        for name, value in zip(spec, args):
            bound[name] = value
        for name, value in kwargs.items():
            if name not in spec:
                raise JournalError(f"unloggable argument {name!r}")
            bound[name] = value
        for name, value in bound.items():
            if isinstance(value, (tuple, frozenset, set)):
                bound[name] = sorted(value) if isinstance(
                    value, (set, frozenset)
                ) else list(value)
        return bound

    def _replay_wal(self, mode: str) -> SalvageReport:
        records, report = read_log(
            self.wal_path, fs=self.fs, mode=mode,
            decode=_decode_wal_record, repair=True,
        )
        live, report.records_fenced = fence_records(
            records, self._generation
        )
        aborted = {
            r.payload["args"].get("seq")
            for r in live
            if r.payload["method"] == _ABORT
        }
        self._seq = max(
            (
                r.payload.get("seq", 0) for r in live
                if isinstance(r.payload.get("seq"), int)
            ),
            default=0,
        )
        replayable = [
            r for r in live
            if r.payload["method"] != _ABORT
            and r.payload.get("seq") not in aborted
        ]
        for r in replayable:
            method = r.payload["method"]
            target = (
                getattr(self.manager, method)
                if hasattr(self.manager, method)
                else getattr(self.store, method)
            )
            kwargs = dict(r.payload["args"])
            for key in ("supertypes", "behaviors"):
                if key in kwargs and isinstance(kwargs[key], list):
                    kwargs[key] = tuple(kwargs[key])
            try:
                target(**kwargs)
            except SchemaError as exc:
                if r is live[-1]:
                    # Write-ahead tail: logged, crashed before applying.
                    _UNAPPLIED_TAIL.inc()
                    logger.info(
                        "skipping logged-but-unapplied tail record "
                        "(line %d, method %s): %s",
                        r.lineno, method, exc,
                    )
                    continue
                raise JournalError(
                    f"WAL replay failed at line {r.lineno}: {exc}"
                ) from exc
            self._since_checkpoint += 1
        if not report.clean:
            logger.warning("recovery(%s): %s", mode, report.summary())
        return report

    # -- snapshots ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot the whole store (schema AND instances); truncate WAL.

        Atomic and fenced exactly like :meth:`JournalFile.checkpoint`:
        temp file + fsync + rename + directory fsync, generation bumped
        before the WAL truncate so a crash in between cannot replay the
        stale tail on top of the snapshot.
        """
        new_generation = self._generation + 1
        sync = self.durability.sync_checkpoints
        write_checkpoint(
            self.snapshot_path,
            objectbase_to_dict(self.store),
            new_generation,
            fs=self.fs,
            sync=sync,
        )
        self._generation = new_generation
        self.fs.write_bytes(self.wal_path, b"")
        if sync:
            timed_fsync(self.fs, self.wal_path)
        self._since_checkpoint = 0

    def _maybe_auto_checkpoint(self) -> None:
        every = self.durability.checkpoint_every
        if every is not None and self._since_checkpoint >= every:
            logger.info(
                "auto-checkpoint after %d record(s) (policy: every %d)",
                self._since_checkpoint, every,
            )
            self.checkpoint()

    def sync(self) -> None:
        """Flush appended WAL records (the batch-policy commit point)."""
        if self.fs.exists(self.wal_path):
            timed_fsync(self.fs, self.wal_path)

    @classmethod
    def reopen(
        cls,
        directory: str | Path,
        computed_bodies: dict[str, Callable[..., Any]] | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        fs: StorageFS | None = None,
        retry: RetryPolicy | None = None,
    ) -> "DurableObjectbase":
        """Simulated restart: rebuild purely from durable state."""
        return cls(
            directory, computed_bodies,
            durability=durability, recovery=recovery, fs=fs, retry=retry,
        )
