"""A durable TIGUKAT objectbase: full snapshots + schema-operation WAL.

Completes the persistence story: :class:`DurableLattice` covers schema
only; :class:`DurableObjectbase` persists the whole store.  The recipe
is the classic one:

* **snapshot** — the complete objectbase (schema, behaviors, functions,
  classes, collections, instances) via
  :mod:`repro.storage.objectbase_snapshot`;
* **WAL** — between snapshots, every schema-evolution operation executed
  through the manager is appended as a JSON record (the §3.3 operations
  are all replayable: the log stores the manager method and arguments);
* **recovery** — load the latest snapshot, replay the WAL tail through a
  fresh :class:`SchemaManager`.

Instance mutations (AO/MO/DO) are *not* WAL-logged — like most object
stores, data durability rides on snapshots (call :meth:`checkpoint`),
while schema durability is continuous.  The recovery contract tested:
after any crash point, the schema is exact and the data is at the last
checkpoint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from ..core.errors import JournalError, SchemaError
from ..tigukat.evolution import SchemaManager
from ..tigukat.store import Objectbase
from .objectbase_snapshot import objectbase_from_dict, objectbase_to_dict

__all__ = ["DurableObjectbase"]

#: manager methods that are WAL-replayable, with their argument names
_REPLAYABLE = {
    "at": ("name", "supertypes", "behaviors", "with_class"),
    "dt": ("name", "migrate_to"),
    "mt_ab": ("type_name", "behavior"),
    "mt_db": ("type_name", "behavior"),
    "mt_asr": ("type_name", "supertype"),
    "mt_dsr": ("type_name", "supertype"),
    "ac": ("type_name",),
    "dc": ("type_name", "migrate_to"),
    "db": ("behavior",),
    "al": ("name", "member_type"),
    "dl": ("name",),
    "define_stored_behavior": ("semantics", "name", "result_type"),
}


class DurableObjectbase:
    """An objectbase whose schema evolution is write-ahead durable."""

    def __init__(
        self,
        directory: str | Path,
        computed_bodies: dict[str, Callable[..., Any]] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / "objectbase.json"
        self.wal_path = self.directory / "schema.wal"
        self._bodies = computed_bodies or {}

        if self.snapshot_path.exists():
            self.store = objectbase_from_dict(
                json.loads(self.snapshot_path.read_text()), self._bodies
            )
        else:
            self.store = Objectbase()
        self.manager = SchemaManager(self.store)
        self._replay_wal()

    # -- the durable operation surface -------------------------------------

    def execute(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one schema-evolution method durably (write-ahead logged).

        ``method`` is a :class:`SchemaManager` method name (or the
        behavior-definition helper).  The record is logged only after
        the operation succeeds in memory *on a validation basis*: the
        method runs first, and on success the record is appended — an
        operation that raises leaves neither state nor log entry.
        (Schema ops are single in-memory mutations; the crash window
        between apply and append loses at most the latest operation,
        which the recovery contract tolerates and the tests pin down.)
        """
        spec = _REPLAYABLE.get(method)
        if spec is None:
            raise JournalError(
                f"{method!r} is not a durable (WAL-replayable) operation"
            )
        target = (
            getattr(self.manager, method)
            if hasattr(self.manager, method)
            else getattr(self.store, method)
        )
        record_args = self._bind(spec, args, kwargs)
        result = target(*args, **kwargs)
        with self.wal_path.open("a") as fh:
            fh.write(json.dumps({"method": method, "args": record_args},
                                sort_keys=True) + "\n")
        return result

    def _bind(self, spec: tuple[str, ...], args: tuple, kwargs: dict) -> dict:
        bound: dict[str, Any] = {}
        for name, value in zip(spec, args):
            bound[name] = value
        for name, value in kwargs.items():
            if name not in spec:
                raise JournalError(f"unloggable argument {name!r}")
            bound[name] = value
        for name, value in bound.items():
            if isinstance(value, (tuple, frozenset, set)):
                bound[name] = sorted(value) if isinstance(
                    value, (set, frozenset)
                ) else list(value)
        return bound

    def _replay_wal(self) -> None:
        if not self.wal_path.exists():
            return
        lines = self.wal_path.read_text().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # torn tail: tolerated
                raise JournalError(
                    f"objectbase WAL corrupt at line {i + 1}"
                ) from exc
            method = record["method"]
            spec = _REPLAYABLE.get(method)
            if spec is None:
                raise JournalError(f"unknown WAL method {method!r}")
            target = (
                getattr(self.manager, method)
                if hasattr(self.manager, method)
                else getattr(self.store, method)
            )
            kwargs = dict(record["args"])
            for key in ("supertypes", "behaviors"):
                if key in kwargs and isinstance(kwargs[key], list):
                    kwargs[key] = tuple(kwargs[key])
            try:
                target(**kwargs)
            except SchemaError as exc:
                raise JournalError(
                    f"WAL replay failed at line {i + 1}: {exc}"
                ) from exc

    # -- snapshots ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot the whole store (schema AND instances); truncate WAL."""
        self.snapshot_path.write_text(
            json.dumps(objectbase_to_dict(self.store), sort_keys=True)
        )
        self.wal_path.write_text("")

    @classmethod
    def reopen(
        cls,
        directory: str | Path,
        computed_bodies: dict[str, Callable[..., Any]] | None = None,
    ) -> "DurableObjectbase":
        """Simulated restart: rebuild purely from durable state."""
        return cls(directory, computed_bodies)
