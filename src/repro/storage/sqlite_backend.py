"""The sqlite storage backend: WAL frames as rows, checkpoints as blobs.

One sqlite database hosts any number of logical byte streams, keyed by
their logical path.  Each stream is a base blob (whole-file writes —
checkpoints, truncations) plus an ordered run of appended frames (WAL
records), so the hot path — append one framed record — is a single-row
transactional insert, and ``read_bytes`` reassembles the stream as
``blob + frames`` without rewriting history.

Semantics the durability layer leans on:

* **real transactional rename** — ``replace`` re-keys the source rows
  and deletes the destination inside one ``BEGIN IMMEDIATE``
  transaction; a crash leaves either the old or the new binding
  (``supports_atomic_replace`` *and* ``supports_transactions``).
* **durable commits** — ``PRAGMA synchronous=FULL``: every commit is on
  stable storage before it returns, so ``fsync_file``/``fsync_dir`` are
  no-ops and ``durable_rename``/``durable_writes`` are true.  The
  fsync-per-append of ``DurabilityPolicy(fsync="always")`` is subsumed
  by the commit; the policy still controls *checkpoint cadence*.
* **busy/locked mapped to the retry layer** — sqlite's
  ``database is locked`` / ``busy`` conditions surface as
  ``OSError(EBUSY)``, which is in the retryable family
  (:data:`repro.storage.reliability.RETRYABLE`), so the existing
  :class:`~repro.storage.reliability.RetryPolicy` on the WAL append
  path absorbs lock contention exactly as it absorbs EIO blips.  Other
  sqlite errors surface as ``OSError(EIO)`` and ride the same
  retry-then-degrade path.

The backend-shaped fault the crash matrix adds
(``FaultyFS(backend_torn=True)``) is :meth:`simulate_torn_append`: half
the payload inserted in a transaction that is never committed — the
"process" dies with the write in flight.  sqlite's journal must make
the partial commit invisible on the next open; the conformance suite
proves the recovered state is exactly an acknowledged prefix.
"""

from __future__ import annotations

import errno
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path

from ..obs.metrics import REGISTRY
from .backend import StorageBackend

__all__ = ["SqliteBackend"]

_BUSY = REGISTRY.counter(
    "repro_sqlite_busy_total",
    "sqlite busy/locked conditions surfaced as retryable storage faults",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blobs (
    path TEXT PRIMARY KEY,
    data BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS frames (
    path TEXT NOT NULL,
    seq  INTEGER NOT NULL,
    data BLOB NOT NULL,
    PRIMARY KEY (path, seq)
);
"""

_NEXT_SEQ = "(SELECT COALESCE(MAX(seq), -1) + 1 FROM frames WHERE path = ?)"


class SqliteBackend(StorageBackend):
    """Logical byte streams inside one sqlite database file."""

    scheme = "sqlite"
    supports_atomic_replace = True
    supports_transactions = True
    durable_rename = True
    durable_writes = True

    def __init__(
        self,
        database: str | Path,
        *,
        busy_timeout: float = 5.0,
        synchronous: str = "FULL",
    ) -> None:
        self.database = Path(database)
        if str(self.database.parent) not in ("", "."):
            self.database.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._closed = False
        self._conn = sqlite3.connect(
            str(self.database),
            timeout=busy_timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit; we issue BEGIN ourselves
        )
        try:
            self._conn.execute(f"PRAGMA synchronous={synchronous}")
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            self._conn.close()
            self._closed = True
            self._raise_mapped(exc)

    # -- error mapping --------------------------------------------------

    def _raise_mapped(self, exc: sqlite3.Error) -> None:
        """Surface sqlite failures in the retryable :class:`OSError`
        family (busy/locked as EBUSY, everything else as EIO)."""
        message = str(exc).lower()
        if isinstance(exc, sqlite3.OperationalError) and (
            "locked" in message or "busy" in message
        ):
            _BUSY.inc()
            raise OSError(
                errno.EBUSY, f"sqlite database busy: {exc}"
            ) from exc
        raise OSError(errno.EIO, f"sqlite backend failure: {exc}") from exc

    def _rollback_quietly(self) -> None:
        """Best-effort ROLLBACK that never masks the original failure.

        Leaving the connection inside an open transaction would make
        every later ``BEGIN IMMEDIATE`` fail with "cannot start a
        transaction within a transaction" — one transient fault
        permanently wedging the backend.  A ROLLBACK that itself fails
        (connection dead, disk gone) is swallowed: the caller is about
        to surface the original error, and the retry layer will probe
        the connection again.
        """
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    @contextmanager
    def transaction(self):
        """One atomic unit over the primitives (``supports_transactions``
        is probed by attempting exactly this)."""
        with self._lock:
            if self._closed:
                raise OSError(
                    errno.EIO, f"sqlite backend {self.database} is closed"
                )
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.Error as exc:
                self._raise_mapped(exc)
            try:
                yield self._conn
            except sqlite3.Error as exc:
                self._rollback_quietly()
                self._raise_mapped(exc)
            except BaseException:
                self._rollback_quietly()
                raise
            else:
                try:
                    self._conn.execute("COMMIT")
                except sqlite3.Error as exc:
                    self._rollback_quietly()
                    self._raise_mapped(exc)

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _key(path: Path) -> str:
        return str(path)

    def _assembled(self, key: str) -> bytes | None:
        """The stream's bytes (``blob + ordered frames``), or None."""
        row = self._conn.execute(
            "SELECT data FROM blobs WHERE path = ?", (key,)
        ).fetchone()
        frames = self._conn.execute(
            "SELECT data FROM frames WHERE path = ? ORDER BY seq", (key,)
        ).fetchall()
        if row is None and not frames:
            return None
        base = bytes(row[0]) if row is not None else b""
        return base + b"".join(bytes(f[0]) for f in frames)

    def _set_blob(self, key: str, data: bytes) -> None:
        self._conn.execute("DELETE FROM frames WHERE path = ?", (key,))
        self._conn.execute(
            "INSERT OR REPLACE INTO blobs (path, data) VALUES (?, ?)",
            (key, data),
        )

    # -- StorageFS primitives -------------------------------------------

    def exists(self, path: Path) -> bool:
        key = self._key(path)
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT 1 FROM blobs WHERE path = ? "
                    "UNION ALL SELECT 1 FROM frames WHERE path = ? LIMIT 1",
                    (key, key),
                ).fetchone()
            except sqlite3.Error as exc:
                self._raise_mapped(exc)
            return row is not None

    def size(self, path: Path) -> int:
        key = self._key(path)
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT "
                    "(SELECT length(data) FROM blobs WHERE path = ?1), "
                    "(SELECT SUM(length(data)) FROM frames WHERE path = ?1)",
                    (key,),
                ).fetchone()
            except sqlite3.Error as exc:
                self._raise_mapped(exc)
        blob_len, frame_len = row
        if blob_len is None and frame_len is None:
            raise FileNotFoundError(
                errno.ENOENT, "no such stream in sqlite backend", str(path)
            )
        return (blob_len or 0) + (frame_len or 0)

    def read_bytes(self, path: Path) -> bytes:
        key = self._key(path)
        with self._lock:
            try:
                data = self._assembled(key)
            except sqlite3.Error as exc:
                self._raise_mapped(exc)
        if data is None:
            raise FileNotFoundError(
                errno.ENOENT, "no such stream in sqlite backend", str(path)
            )
        return data

    def append_bytes(self, path: Path, data: bytes) -> None:
        key = self._key(path)
        with self.transaction() as conn:
            conn.execute(
                f"INSERT INTO frames (path, seq, data) "
                f"VALUES (?, {_NEXT_SEQ}, ?)",
                (key, key, data),
            )

    def write_bytes(self, path: Path, data: bytes) -> None:
        key = self._key(path)
        with self.transaction():
            self._set_blob(key, data)

    def replace(self, src: Path, dst: Path) -> None:
        src_key, dst_key = self._key(src), self._key(dst)
        with self.transaction() as conn:
            present = conn.execute(
                "SELECT 1 FROM blobs WHERE path = ? "
                "UNION ALL SELECT 1 FROM frames WHERE path = ? LIMIT 1",
                (src_key, src_key),
            ).fetchone()
            if present is None:
                raise FileNotFoundError(
                    errno.ENOENT, "no such stream in sqlite backend",
                    str(src),
                )
            conn.execute("DELETE FROM blobs WHERE path = ?", (dst_key,))
            conn.execute("DELETE FROM frames WHERE path = ?", (dst_key,))
            conn.execute(
                "UPDATE blobs SET path = ? WHERE path = ?",
                (dst_key, src_key),
            )
            conn.execute(
                "UPDATE frames SET path = ? WHERE path = ?",
                (dst_key, src_key),
            )

    def truncate(self, path: Path, size: int) -> None:
        key = self._key(path)
        with self.transaction():
            data = self._assembled(key)
            if data is None:
                raise FileNotFoundError(
                    errno.ENOENT, "no such stream in sqlite backend",
                    str(path),
                )
            if size > len(data):
                data = data.ljust(size, b"\x00")
            self._set_blob(key, data[:size])

    def unlink(self, path: Path) -> None:
        key = self._key(path)
        with self.transaction() as conn:
            conn.execute("DELETE FROM blobs WHERE path = ?", (key,))
            conn.execute("DELETE FROM frames WHERE path = ?", (key,))

    def fsync_file(self, path: Path) -> None:
        """No-op: synchronous=FULL makes every commit durable."""

    def fsync_dir(self, path: Path) -> None:
        """No-op: rename durability is the transaction's."""

    def mkdirs(self, path: Path) -> None:
        """No-op: streams are rows; there are no directories to make."""

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    # -- backend-shaped fault hook --------------------------------------

    def simulate_torn_append(self, path: Path, data: bytes) -> None:
        """The mid-transaction crash state: half the payload inserted,
        the transaction never committed, the connection dead.

        sqlite's journal discards the in-flight transaction, so the next
        open must see *no trace* of the partial commit — the invariant
        the ``append-backend-torn`` conformance point asserts.
        """
        key = self._key(path)
        with self._lock:
            if self._closed:
                return
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.execute(
                f"INSERT INTO frames (path, seq, data) "
                f"VALUES (?, {_NEXT_SEQ}, ?)",
                (key, key, data[: len(data) // 2]),
            )
            # The power cut: abandon the connection with the transaction
            # open; sqlite rolls it back, exactly as journal recovery
            # would after a real crash.
            self._conn.close()
            self._closed = True
