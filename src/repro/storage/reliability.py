"""Retry/backoff on transient storage faults and the degraded-mode latch.

The availability layer of the durability story (``docs/durability.md``
covers *correctness* under crashes; this module covers *service* under
recoverable faults):

* :class:`RetryPolicy` — bounded exponential backoff for the WAL append
  path.  Transient faults (an EIO from fsync, a short write) are retried
  up to ``attempts`` times with multiplicative backoff; every retry is
  metered in ``repro_storage_retries_total{op}``.
* :func:`append_record` — the one append seam both WALs go through.  It
  makes a retried append *exactly-once*: the pre-append file size is
  captured first and any partial bytes a failed attempt left behind are
  truncated away before the next attempt, so a short write can never
  leave half a record in front of a whole one.
* :class:`DegradedLatch` — when the retry budget is exhausted the store
  flips into explicit read-only **degraded mode** instead of corrupting
  or crashing: the ``repro_degraded_mode`` gauge goes to 1, every
  subsequent write is rejected with a typed
  :class:`~repro.core.errors.DegradedModeError` (HTTP 503 / ``/readyz``
  not-ready at the service layer), and reads keep serving the last
  consistent state.  ``repro recover`` (or
  :meth:`repro.concurrent.ConcurrentObjectbase.recover`) heals the log
  and clears the latch.

:class:`~repro.storage.faults.CrashPoint` is deliberately *not* in the
retryable family: a simulated power failure kills the process mid-append
exactly like a real one, and recovery — not retry — is the answer.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TypeVar

from ..core.errors import CorruptRecordError, DegradedModeError, JournalError
from ..obs.metrics import REGISTRY
from .faults import StorageFS

__all__ = [
    "RetryPolicy",
    "DegradedLatch",
    "with_retries",
    "append_record",
    "RETRYABLE",
]

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: The transient-fault family the retry loop absorbs.  ``OSError`` is the
#: raw kernel-level failure (EIO, ENOSPC blips); ``JournalError`` is what
#: :func:`~repro.storage.framing.timed_fsync` wraps one into.  A
#: :class:`~repro.core.errors.CorruptRecordError` is *structural* damage,
#: never transient, and is excluded below.
RETRYABLE = (JournalError, OSError)

_RETRIES = REGISTRY.counter(
    "repro_storage_retries_total",
    "Transient storage faults absorbed by retry/backoff",
    labelnames=("op",),
)
_RETRY_EXHAUSTED = REGISTRY.counter(
    "repro_storage_retry_exhausted_total",
    "Storage operations that failed every retry attempt",
    labelnames=("op",),
)
_DEGRADED_MODE = REGISTRY.gauge(
    "repro_degraded_mode",
    "1 while the store is latched read-only after unrecoverable "
    "storage failure, else 0",
)
_DEGRADED_TRIPS = REGISTRY.counter(
    "repro_degraded_trips_total",
    "Times the store latched into read-only degraded mode",
)
_DEGRADED_WRITES_REJECTED = REGISTRY.counter(
    "repro_degraded_writes_rejected_total",
    "Writes rejected because the store was in degraded mode",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient storage faults.

    ``attempts`` counts total tries (1 = no retries).  Waits grow from
    ``base_delay`` by ``multiplier`` per retry, capped at ``max_delay``.
    ``jitter`` (0..1) randomizes each wait *downward* by up to that
    fraction, de-synchronizing concurrent writers that hit the same
    fault at the same moment (replication reconnect storms, lock-convoy
    retries) — the cap is never exceeded.  ``sleep`` and ``rng`` are
    injectable so tests pay no wall-clock cost and stay deterministic.
    """

    attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.25
    multiplier: float = 4.0
    jitter: float = 0.0
    sleep: Callable[[float], None] = field(
        default=time.sleep, repr=False, compare=False
    )
    rng: Callable[[], float] = field(
        default=random.random, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delays(self):
        """The backoff waits between attempts, in order (jitter applied)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            wait = min(delay, self.max_delay)
            if self.jitter:
                wait *= 1.0 - self.jitter * self.rng()
            yield wait
            delay *= self.multiplier

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt)."""
        return cls(attempts=1)


def with_retries(policy: RetryPolicy, op: str, fn: Callable[[], T]) -> T:
    """Run ``fn``, retrying transient faults per ``policy``.

    Retries only the :data:`RETRYABLE` family, never structural
    corruption (:class:`CorruptRecordError`) and never a simulated or
    real crash.  Each absorbed fault increments
    ``repro_storage_retries_total{op}``; exhaustion increments the
    ``..._exhausted_total`` counter and re-raises the final fault.
    """
    waits = list(policy.delays())
    for attempt in range(policy.attempts):
        try:
            return fn()
        except CorruptRecordError:
            raise
        except RETRYABLE as exc:
            if attempt >= len(waits):
                _RETRY_EXHAUSTED.labels(op=op).inc()
                logger.error(
                    "%s: retries exhausted after %d attempt(s): %s",
                    op, policy.attempts, exc,
                )
                raise
            _RETRIES.labels(op=op).inc()
            logger.warning(
                "%s: transient storage fault (attempt %d/%d), retrying "
                "in %.3fs: %s",
                op, attempt + 1, policy.attempts, waits[attempt], exc,
            )
            policy.sleep(waits[attempt])
    raise AssertionError("unreachable")  # pragma: no cover


class DegradedLatch:
    """The read-only latch one store trips on unrecoverable write failure.

    Not thread-synchronized by itself: trips happen on the (single)
    writer path, and readers only ever observe the boolean — a stale read
    at worst delays one rejection by a request.
    """

    def __init__(self, store: str = "") -> None:
        self.store = store
        self._reason: str | None = None

    @property
    def degraded(self) -> bool:
        return self._reason is not None

    @property
    def reason(self) -> str | None:
        return self._reason

    def trip(self, reason: str) -> None:
        if self._reason is None:
            _DEGRADED_TRIPS.inc()
            logger.error(
                "%s: entering read-only degraded mode: %s",
                self.store or "store", reason,
            )
        self._reason = reason
        _DEGRADED_MODE.set(1)

    def clear(self) -> None:
        if self._reason is not None:
            logger.info(
                "%s: leaving degraded mode (was: %s)",
                self.store or "store", self._reason,
            )
        self._reason = None
        _DEGRADED_MODE.set(0)

    def check_writable(self) -> None:
        """Raise :class:`DegradedModeError` when the latch is tripped."""
        if self._reason is not None:
            _DEGRADED_WRITES_REJECTED.inc()
            raise DegradedModeError(self._reason)


def append_record(
    fs: StorageFS,
    path: Path,
    data: bytes,
    *,
    retry: RetryPolicy,
    latch: DegradedLatch,
    sync: Callable[[], None] | None = None,
    op: str = "wal-append",
) -> None:
    """Durably append ``data`` to ``path``: retried, rolled-back, latched.

    The append (and the caller's ``sync`` step, when given) is retried as
    one unit under ``retry``.  Before every attempt the file is truncated
    back to its pre-append size, discarding any partial bytes the
    previous attempt persisted — a retried short write therefore lands
    the record exactly once.  Exhausted retries trip ``latch`` and raise
    :class:`DegradedModeError` chained to the final storage fault.
    """
    latch.check_writable()
    size_before = fs.size(path) if fs.exists(path) else 0

    def attempt() -> None:
        if fs.exists(path) and fs.size(path) != size_before:
            fs.truncate(path, size_before)
        fs.append_bytes(path, data)
        if sync is not None:
            sync()

    try:
        with_retries(retry, op, attempt)
    except CorruptRecordError:
        raise
    except RETRYABLE as exc:
        # Best effort: leave the log at exactly the acknowledged prefix.
        # If even the truncate fails, the residue is an unterminated tail
        # the framed-log recovery already classifies and heals as torn.
        try:
            if fs.exists(path) and fs.size(path) != size_before:
                fs.truncate(path, size_before)
        except OSError:  # pragma: no cover - depends on fault timing
            logger.warning(
                "%s: could not roll back partial append; recovery will "
                "treat it as a torn tail", path,
            )
        latch.trip(f"{op} failed after {retry.attempts} attempt(s): {exc}")
        raise DegradedModeError(latch.reason or str(exc)) from exc
