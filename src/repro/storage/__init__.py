"""Persistence: schema snapshots and the write-ahead operation journal.

.. deprecated::
    Reaching for :class:`DurableLattice` / :class:`JournalFile` through
    this package is deprecated for application code — open schemas with
    :meth:`repro.api.Objectbase.open` instead, which wraps the same WAL
    machinery behind the stable facade.  The names keep working (they
    delegate to :mod:`repro.storage.journal`) but emit a
    :class:`DeprecationWarning`.  Engine-internal code imports from
    :mod:`repro.storage.journal` directly, which stays warning-free.
"""

import warnings

from .durable_store import DurableObjectbase
from .faults import CrashPoint, FaultyFS, RealFS, StorageFS
from .framing import DurabilityPolicy, SalvageReport
from .objectbase_snapshot import (
    load_objectbase,
    objectbase_from_dict,
    objectbase_to_dict,
    save_objectbase,
)
from .snapshot import (
    lattice_from_dict,
    lattice_to_dict,
    load_lattice,
    save_lattice,
)

__all__ = [
    "DurableObjectbase",
    "DurabilityPolicy",
    "SalvageReport",
    "CrashPoint",
    "FaultyFS",
    "RealFS",
    "StorageFS",
    "objectbase_to_dict",
    "objectbase_from_dict",
    "save_objectbase",
    "load_objectbase",
    "lattice_to_dict",
    "lattice_from_dict",
    "save_lattice",
    "load_lattice",
    "JournalFile",
    "DurableLattice",
]

#: legacy entry points that now live behind the repro.api facade
_DEPRECATED_JOURNAL_NAMES = frozenset({"DurableLattice", "JournalFile"})


def __getattr__(name: str):
    if name in _DEPRECATED_JOURNAL_NAMES:
        warnings.warn(
            f"importing {name} from repro.storage is deprecated; "
            f"use repro.api.Objectbase.open() (or, for engine internals, "
            f"repro.storage.journal.{name})",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import journal

        return getattr(journal, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
