"""Persistence: schema snapshots and the write-ahead operation journal."""

from .durable_store import DurableObjectbase
from .journal import DurableLattice, JournalFile
from .objectbase_snapshot import (
    load_objectbase,
    objectbase_from_dict,
    objectbase_to_dict,
    save_objectbase,
)
from .snapshot import (
    lattice_from_dict,
    lattice_to_dict,
    load_lattice,
    save_lattice,
)

__all__ = [
    "DurableObjectbase",
    "objectbase_to_dict",
    "objectbase_from_dict",
    "save_objectbase",
    "load_objectbase",
    "lattice_to_dict",
    "lattice_from_dict",
    "save_lattice",
    "load_lattice",
    "JournalFile",
    "DurableLattice",
]
