"""Persistence: schema snapshots and the write-ahead operation journal.

Application code opens schemas with :meth:`repro.api.Objectbase.open`,
which wraps the WAL machinery behind the stable facade.  Engine-internal
code imports :class:`~repro.storage.journal.DurableLattice` /
:class:`~repro.storage.journal.JournalFile` from
:mod:`repro.storage.journal` directly (the deprecation shims that used
to re-export them here were removed after one release).
"""

from .backend import (
    FileBackend,
    StorageBackend,
    StorageTarget,
    atomic_write_bytes,
    backend_schemes,
    register_backend,
    resolve_storage_url,
    storage_physical_path,
)
from .durable_store import DurableObjectbase
from .faults import CrashPoint, FaultyFS, RealFS, StorageFS
from .framing import DurabilityPolicy, SalvageReport
from .objstore_backend import ObjectStoreBackend
from .sqlite_backend import SqliteBackend
from .objectbase_snapshot import (
    load_objectbase,
    objectbase_from_dict,
    objectbase_to_dict,
    save_objectbase,
)
from .snapshot import (
    lattice_from_dict,
    lattice_to_dict,
    load_lattice,
    save_lattice,
)

__all__ = [
    "DurableObjectbase",
    "DurabilityPolicy",
    "SalvageReport",
    "CrashPoint",
    "FaultyFS",
    "RealFS",
    "StorageFS",
    "StorageBackend",
    "FileBackend",
    "SqliteBackend",
    "ObjectStoreBackend",
    "StorageTarget",
    "atomic_write_bytes",
    "resolve_storage_url",
    "storage_physical_path",
    "register_backend",
    "backend_schemes",
    "objectbase_to_dict",
    "objectbase_from_dict",
    "save_objectbase",
    "load_objectbase",
    "lattice_to_dict",
    "lattice_from_dict",
    "save_lattice",
    "load_lattice",
]
