"""Deterministic fault injection for the durability path.

The storage layer performs every mutating filesystem operation through a
:class:`StorageFS` object.  :class:`RealFS` is the production
implementation (thin wrappers over :mod:`os` / :mod:`pathlib`);
:class:`FaultyFS` wraps one and injects the three failure families the
crash-matrix suite exercises:

* **crash-at-boundary** — every mutating primitive exposes numbered
  *injection points* (before the effect, mid-write, ...).  Points are
  counted process-wide per ``FaultyFS`` instance; when the running count
  reaches ``crash_at``, the point's partial effect is applied and
  :class:`CrashPoint` is raised.  Once crashed, every later call raises
  immediately — the "process" is dead, exactly like a power failure.
* **short writes** — the mid-write point of ``append_bytes`` /
  ``write_bytes`` persists only the first half of the payload before
  crashing, producing the torn records the framed-WAL reader must
  detect.
* **fsync failures** — with ``fail_fsync=True`` every file fsync raises
  :class:`OSError` *without* crashing, modeling an EIO from the kernel
  (the journal surfaces it as a typed :class:`~repro.core.errors.JournalError`).
* **disk full** — ``enospc_appends=N`` / ``enospc_writes=N`` fail the
  first N appends/whole-file writes with ``OSError(ENOSPC)`` after
  persisting half the payload, modeling a volume running out of space
  mid-write.  Unlike a crash the process survives and must cope: the
  salvage quarantine path downgrades to best-effort, the checkpoint
  writer surfaces a typed error with the old checkpoint intact, and the
  WAL retry layer rolls back the partial bytes exactly as it does for
  EIO.  Like transient faults, ENOSPC does not consume crash points.
* **torn renames** — with ``torn_replace=True`` every ``replace`` gains
  a second numbered point (``replace-torn:<dst>``) whose partial effect
  is the nastiest crash state a rename can leave: the *new* content is
  visible at the destination but the source (temp) file still exists —
  a crash after the data blocks and destination entry reached disk but
  before the source unlink did.  Recovery must prefer the destination
  and treat the stale temp file as residue to ignore and remove.
* **transient faults** — ``transient_fsync_failures=N`` /
  ``transient_append_failures=N`` fail the first N fsyncs/appends with
  :class:`OSError` and then recover, modeling the recoverable EIO and
  short-write blips the storage retry layer
  (:mod:`repro.storage.reliability`) must absorb.  A transient append
  persists only the first half of the payload before failing, so the
  retry path must also roll the partial write back.  Transient faults do
  **not** consume crash injection points — the two dimensions compose.

The crash-matrix driver iterates ``crash_at`` from 0 upward until a full
workload completes without crashing (``total_points`` many boundaries),
recovering and checking prefix consistency after each simulated failure.
Reads are never injection points: crashing a reader is just a process
restart, which the recovery tests cover directly.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path

__all__ = ["CrashPoint", "StorageFS", "RealFS", "FaultyFS"]


class CrashPoint(Exception):
    """A simulated power failure at one I/O boundary.

    Deliberately *outside* the :class:`~repro.core.errors.EvolutionError`
    taxonomy: storage code must never catch it, the same way it cannot
    catch a real power cut.
    """


class StorageFS:
    """The filesystem primitives the durability path is allowed to use."""

    def exists(self, path: Path) -> bool:
        raise NotImplementedError

    def size(self, path: Path) -> int:
        raise NotImplementedError

    def read_bytes(self, path: Path) -> bytes:
        raise NotImplementedError

    def append_bytes(self, path: Path, data: bytes) -> None:
        raise NotImplementedError

    def write_bytes(self, path: Path, data: bytes) -> None:
        raise NotImplementedError

    def replace(self, src: Path, dst: Path) -> None:
        raise NotImplementedError

    def truncate(self, path: Path, size: int) -> None:
        raise NotImplementedError

    def unlink(self, path: Path) -> None:
        raise NotImplementedError

    def fsync_file(self, path: Path) -> None:
        raise NotImplementedError

    def fsync_dir(self, path: Path) -> None:
        raise NotImplementedError


class RealFS(StorageFS):
    """Production filesystem access (POSIX semantics assumed)."""

    def exists(self, path: Path) -> bool:
        return Path(path).exists()

    def size(self, path: Path) -> int:
        return os.path.getsize(path)

    def read_bytes(self, path: Path) -> bytes:
        return Path(path).read_bytes()

    def append_bytes(self, path: Path, data: bytes) -> None:
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()

    def write_bytes(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()

    def replace(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def truncate(self, path: Path, size: int) -> None:
        os.truncate(path, size)

    def unlink(self, path: Path) -> None:
        Path(path).unlink(missing_ok=True)

    def fsync_file(self, path: Path) -> None:
        fd = os.open(path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: Path) -> None:
        # Durability of a rename needs the directory entry flushed too;
        # best effort where the platform cannot fsync a directory.
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class FaultyFS(StorageFS):
    """A :class:`StorageFS` that fails on purpose (see module docstring).

    Parameters
    ----------
    crash_at:
        Zero-based index of the injection point at which to crash, or
        ``None`` to never crash (useful to count a workload's points).
    fail_fsync:
        When true, :meth:`fsync_file` raises :class:`OSError` instead of
        syncing (the process survives; callers must surface the error).
    transient_fsync_failures:
        Fail the first N file fsyncs with :class:`OSError`, then behave
        normally — the recoverable-EIO case the retry layer absorbs.
    transient_append_failures:
        Fail the first N appends: persist half the payload, then raise
        :class:`OSError` (a recoverable short write).  The retry layer
        must truncate the partial bytes away before re-appending.
    enospc_appends / enospc_writes:
        Fail the first N appends / whole-file writes with
        ``OSError(ENOSPC)`` after persisting half the payload — the
        disk-full family (see module docstring).
    torn_replace:
        Add the ``replace-torn`` injection point to every ``replace``:
        new content visible at the destination, source left behind.
    base:
        The real filesystem to delegate surviving operations to.
    """

    def __init__(
        self,
        crash_at: int | None = None,
        fail_fsync: bool = False,
        base: StorageFS | None = None,
        transient_fsync_failures: int = 0,
        transient_append_failures: int = 0,
        enospc_appends: int = 0,
        enospc_writes: int = 0,
        torn_replace: bool = False,
    ) -> None:
        self.base = base or RealFS()
        self.crash_at = crash_at
        self.fail_fsync = fail_fsync
        self.transient_fsync_failures = transient_fsync_failures
        self.transient_append_failures = transient_append_failures
        self.enospc_appends = enospc_appends
        self.enospc_writes = enospc_writes
        self.torn_replace = torn_replace
        self.points = 0
        self.crashed = False
        self.trace: list[str] = []

    def _point(self, label: str) -> bool:
        """Count one injection point; True means crash *here* (the caller
        applies the point's partial effect first, then raises)."""
        if self.crashed:
            raise CrashPoint(f"process already dead (at {label})")
        index = self.points
        self.points += 1
        self.trace.append(label)
        if self.crash_at is not None and index == self.crash_at:
            self.crashed = True
            return True
        return False

    # -- reads are never injected --------------------------------------

    def exists(self, path: Path) -> bool:
        return self.base.exists(path)

    def size(self, path: Path) -> int:
        return self.base.size(path)

    def read_bytes(self, path: Path) -> bytes:
        return self.base.read_bytes(path)

    # -- mutating primitives -------------------------------------------

    def append_bytes(self, path: Path, data: bytes) -> None:
        if self.enospc_appends > 0:
            self.enospc_appends -= 1
            if len(data) > 1:
                self.base.append_bytes(path, data[: len(data) // 2])
            raise OSError(
                errno.ENOSPC, f"injected disk-full appending to {path}"
            )
        if self.transient_append_failures > 0:
            self.transient_append_failures -= 1
            if len(data) > 1:
                self.base.append_bytes(path, data[: len(data) // 2])
            raise OSError(5, f"injected transient short write to {path}")
        if self._point(f"append-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before append to {path}")
        if len(data) > 1 and self._point(f"append-short:{Path(path).name}"):
            self.base.append_bytes(path, data[: len(data) // 2])
            raise CrashPoint(f"short write appending to {path}")
        self.base.append_bytes(path, data)

    def write_bytes(self, path: Path, data: bytes) -> None:
        if self.enospc_writes > 0:
            self.enospc_writes -= 1
            if len(data) > 1:
                self.base.write_bytes(path, data[: len(data) // 2])
            raise OSError(
                errno.ENOSPC, f"injected disk-full writing {path}"
            )
        if self._point(f"write-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before write of {path}")
        if len(data) > 1 and self._point(f"write-short:{Path(path).name}"):
            self.base.write_bytes(path, data[: len(data) // 2])
            raise CrashPoint(f"short write of {path}")
        self.base.write_bytes(path, data)

    def replace(self, src: Path, dst: Path) -> None:
        if self._point(f"replace-pre:{Path(dst).name}"):
            raise CrashPoint(f"crash before replacing {dst}")
        if self.torn_replace and self._point(f"replace-torn:{Path(dst).name}"):
            # The torn-rename crash state: data blocks and destination
            # entry durable, source unlink not (see module docstring).
            self.base.write_bytes(dst, self.base.read_bytes(src))
            raise CrashPoint(
                f"torn rename: {dst} updated but {src} left behind"
            )
        self.base.replace(src, dst)

    def truncate(self, path: Path, size: int) -> None:
        if self._point(f"truncate-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before truncating {path}")
        self.base.truncate(path, size)

    def unlink(self, path: Path) -> None:
        if self._point(f"unlink-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before unlinking {path}")
        self.base.unlink(path)

    def fsync_file(self, path: Path) -> None:
        if self.transient_fsync_failures > 0:
            self.transient_fsync_failures -= 1
            raise OSError(5, f"injected transient fsync failure for {path}")
        if self._point(f"fsync-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before fsync of {path}")
        if self.fail_fsync:
            raise OSError(5, f"injected fsync failure for {path}")
        self.base.fsync_file(path)

    def fsync_dir(self, path: Path) -> None:
        if self._point(f"fsyncdir-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before directory fsync of {path}")
        self.base.fsync_dir(path)
