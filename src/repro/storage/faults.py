"""Deterministic fault injection for the durability path.

The storage layer performs every mutating storage operation through a
:class:`StorageFS` object.  :class:`RealFS` is the production filesystem
implementation (thin wrappers over :mod:`os` / :mod:`pathlib`); the
pluggable backends in :mod:`repro.storage.backend` implement the same
primitives over other substrates (sqlite, a content-addressed object
store).  :class:`FaultyFS` wraps *any* of them and injects the failure
families the crash-matrix suite exercises:

* **crash-at-boundary** — every mutating primitive exposes numbered
  *injection points* (before the effect, mid-write, ...).  Points are
  counted process-wide per ``FaultyFS`` instance; when the running count
  reaches ``crash_at``, the point's partial effect is applied and
  :class:`CrashPoint` is raised.  Once crashed, every later call raises
  immediately — the "process" is dead, exactly like a power failure.
  Scheduling is thread-safe: racing writers each draw a distinct point
  index under an internal lock, so a planned fault is never skipped.
* **short writes** — the mid-write point of ``append_bytes`` /
  ``write_bytes`` persists only the first half of the payload before
  crashing, producing the torn records the framed-WAL reader must
  detect.
* **fsync failures** — with ``fail_fsync=True`` every file fsync raises
  :class:`OSError` *without* crashing, modeling an EIO from the kernel
  (the journal surfaces it as a typed :class:`~repro.core.errors.JournalError`).
* **disk full** — ``enospc_appends=N`` / ``enospc_writes=N`` fail the
  first N appends/whole-file writes with ``OSError(ENOSPC)`` after
  persisting half the payload, modeling a volume running out of space
  mid-write.  Unlike a crash the process survives and must cope: the
  salvage quarantine path downgrades to best-effort, the checkpoint
  writer surfaces a typed error with the old checkpoint intact, and the
  WAL retry layer rolls back the partial bytes exactly as it does for
  EIO.  Like transient faults, ENOSPC does not consume crash points.
* **torn renames** — with ``torn_replace=True`` every ``replace`` gains
  a second numbered point (``replace-torn:<dst>``) whose partial effect
  is the nastiest crash state a rename can leave: the *new* content is
  visible at the destination but the source (temp) file still exists —
  a crash after the data blocks and destination entry reached disk but
  before the source unlink did.  Recovery must prefer the destination
  and treat the stale temp file as residue to ignore and remove.
* **transient faults** — ``transient_fsync_failures=N`` /
  ``transient_append_failures=N`` fail the first N fsyncs/appends with
  :class:`OSError` and then recover, modeling the recoverable EIO and
  short-write blips the storage retry layer
  (:mod:`repro.storage.reliability`) must absorb.  A transient append
  persists only the first half of the payload before failing, so the
  retry path must also roll the partial write back.  Transient faults do
  **not** consume crash injection points — the two dimensions compose.
* **backend-torn appends** — with ``backend_torn=True`` and a base that
  exposes ``simulate_torn_append`` (the sqlite and object-store
  backends), every append gains an ``append-backend-torn`` point whose
  partial effect is the backend's own nastiest mid-append crash state:
  sqlite leaves a half-payload *uncommitted transaction* (the partial
  commit must be invisible on the next open), the object store writes
  the segment but never swaps the manifest pointer (an orphan segment
  GC must collect).  On a base without the hook the point simply does
  not exist, so one matrix runs verbatim against every backend.
* **write reordering** — with ``reorder=True`` the fault model tracks,
  per file, the last state that an fsync barrier made durable.  When a
  mutation lands while *other* files still have un-synced changes, a
  ``reorder:`` point fires whose crash state is the classic reordered
  write: the current mutation is on disk but every other un-synced file
  rolls back to its last barrier state.  Writes to the *same* file stay
  ordered (byte-stream semantics); only cross-file ordering is at risk,
  which is exactly what fsync barriers — and checkpoint generation
  fencing — exist to control.  Backends whose every primitive commits
  durably (``durable_writes``) cannot reorder, and the tracking
  disables itself.

The crash-matrix driver iterates ``crash_at`` from 0 upward until a full
workload completes without crashing (``total_points`` many boundaries),
recovering and checking prefix consistency after each simulated failure.
Reads are never injection points: crashing a reader is just a process
restart, which the recovery tests cover directly.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path

__all__ = ["CrashPoint", "StorageFS", "RealFS", "FaultyFS"]


class CrashPoint(Exception):
    """A simulated power failure at one I/O boundary.

    Deliberately *outside* the :class:`~repro.core.errors.EvolutionError`
    taxonomy: storage code must never catch it, the same way it cannot
    catch a real power cut.
    """


class StorageFS:
    """The storage primitives the durability path is allowed to use.

    Implementations may keep "files" anywhere — POSIX paths, sqlite
    rows, content-addressed segments — as long as the byte-stream
    semantics hold: ``append_bytes`` extends, ``write_bytes`` replaces,
    ``replace`` atomically renames, ``truncate`` cuts to a prefix.
    The class-level capability probes describe what the substrate
    guarantees *beyond* the primitives; :mod:`repro.storage.backend`
    documents them and the conformance suite exercises them.
    """

    #: ``replace`` publishes all-or-nothing even across a crash.
    supports_atomic_replace: bool = True
    #: The backend can group primitives into one atomic transaction.
    supports_transactions: bool = False
    #: ``replace`` is durable by itself — no directory fsync needed.
    durable_rename: bool = False
    #: Every mutating primitive commits durably before returning
    #: (transactional backends); fsync barriers are no-ops.
    durable_writes: bool = False

    def exists(self, path: Path) -> bool:
        raise NotImplementedError

    def size(self, path: Path) -> int:
        raise NotImplementedError

    def read_bytes(self, path: Path) -> bytes:
        raise NotImplementedError

    def append_bytes(self, path: Path, data: bytes) -> None:
        raise NotImplementedError

    def write_bytes(self, path: Path, data: bytes) -> None:
        raise NotImplementedError

    def replace(self, src: Path, dst: Path) -> None:
        raise NotImplementedError

    def truncate(self, path: Path, size: int) -> None:
        raise NotImplementedError

    def unlink(self, path: Path) -> None:
        raise NotImplementedError

    def fsync_file(self, path: Path) -> None:
        raise NotImplementedError

    def fsync_dir(self, path: Path) -> None:
        raise NotImplementedError

    def mkdirs(self, path: Path) -> None:
        """Ensure a (logical) directory exists; no-op where the
        substrate has no directories."""
        raise NotImplementedError


class RealFS(StorageFS):
    """Production filesystem access (POSIX semantics assumed)."""

    def exists(self, path: Path) -> bool:
        return Path(path).exists()

    def size(self, path: Path) -> int:
        return os.path.getsize(path)

    def read_bytes(self, path: Path) -> bytes:
        return Path(path).read_bytes()

    def append_bytes(self, path: Path, data: bytes) -> None:
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()

    def write_bytes(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()

    def replace(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def truncate(self, path: Path, size: int) -> None:
        os.truncate(path, size)

    def unlink(self, path: Path) -> None:
        Path(path).unlink(missing_ok=True)

    def fsync_file(self, path: Path) -> None:
        fd = os.open(path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: Path) -> None:
        # Durability of a rename needs the directory entry flushed too;
        # best effort where the platform cannot fsync a directory.
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def mkdirs(self, path: Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)


_ABSENT = object()  #: reorder-tracking marker: file did not exist


class FaultyFS(StorageFS):
    """A :class:`StorageFS` that fails on purpose (see module docstring).

    Parameters
    ----------
    crash_at:
        Zero-based index of the injection point at which to crash, or
        ``None`` to never crash (useful to count a workload's points).
    fail_fsync:
        When true, :meth:`fsync_file` raises :class:`OSError` instead of
        syncing (the process survives; callers must surface the error).
    transient_fsync_failures:
        Fail the first N file fsyncs with :class:`OSError`, then behave
        normally — the recoverable-EIO case the retry layer absorbs.
    transient_append_failures:
        Fail the first N appends: persist half the payload, then raise
        :class:`OSError` (a recoverable short write).  The retry layer
        must truncate the partial bytes away before re-appending.
    enospc_appends / enospc_writes:
        Fail the first N appends / whole-file writes with
        ``OSError(ENOSPC)`` after persisting half the payload — the
        disk-full family (see module docstring).
    torn_replace:
        Add the ``replace-torn`` injection point to every ``replace``:
        new content visible at the destination, source left behind.
    backend_torn:
        Add the ``append-backend-torn`` injection point to every append
        when the base backend exposes ``simulate_torn_append`` — the
        backend-shaped mid-append crash (uncommitted sqlite transaction,
        orphan object-store segment).  Bases without the hook are
        unaffected, so the flag is safe to set unconditionally.
    reorder:
        Track fsync barriers and add ``reorder:`` injection points whose
        crash state persists the current mutation while rolling every
        *other* un-synced file back to its last barrier state (the
        write-reordering model; see module docstring).  Self-disables on
        ``durable_writes`` backends, which cannot reorder.
    base:
        The real storage to delegate surviving operations to (defaults
        to :class:`RealFS`).  Capability probes forward to it, so a
        ``FaultyFS`` is transparently backend-generic.
    """

    def __init__(
        self,
        crash_at: int | None = None,
        fail_fsync: bool = False,
        base: StorageFS | None = None,
        transient_fsync_failures: int = 0,
        transient_append_failures: int = 0,
        enospc_appends: int = 0,
        enospc_writes: int = 0,
        torn_replace: bool = False,
        backend_torn: bool = False,
        reorder: bool = False,
    ) -> None:
        self.base = base or RealFS()
        self.crash_at = crash_at
        self.fail_fsync = fail_fsync
        self.transient_fsync_failures = transient_fsync_failures
        self.transient_append_failures = transient_append_failures
        self.enospc_appends = enospc_appends
        self.enospc_writes = enospc_writes
        self.torn_replace = torn_replace
        self.backend_torn = backend_torn
        self.reorder = reorder
        self.points = 0
        self.crashed = False
        self.trace: list[str] = []
        self._mutex = threading.Lock()
        #: path -> bytes at the last fsync barrier (or _ABSENT).
        self._unsynced: dict[str, object] = {}

    # -- capability probes forward to the wrapped backend --------------

    @property
    def supports_atomic_replace(self) -> bool:  # type: ignore[override]
        return getattr(self.base, "supports_atomic_replace", True)

    @property
    def supports_transactions(self) -> bool:  # type: ignore[override]
        return getattr(self.base, "supports_transactions", False)

    @property
    def durable_rename(self) -> bool:  # type: ignore[override]
        return getattr(self.base, "durable_rename", False)

    @property
    def durable_writes(self) -> bool:  # type: ignore[override]
        return getattr(self.base, "durable_writes", False)

    def gc(self) -> int:
        """Forward substrate GC to the wrapped backend (never injected:
        GC is maintenance the owner runs, not a crash-path primitive)."""
        collect = getattr(self.base, "gc", None)
        return collect() if callable(collect) else 0

    # -- injection scheduling (thread-safe) ----------------------------

    def _point(self, label: str) -> bool:
        """Count one injection point; True means crash *here* (the caller
        applies the point's partial effect first, then raises).

        Guarded by a lock: concurrent writers each draw a distinct index
        and exactly one of them observes ``index == crash_at``, so the
        planned fault cannot be skipped under racing appends.
        """
        with self._mutex:
            if self.crashed:
                raise CrashPoint(f"process already dead (at {label})")
            index = self.points
            self.points += 1
            self.trace.append(label)
            if self.crash_at is not None and index == self.crash_at:
                self.crashed = True
                return True
            return False

    def _consume(self, attr: str) -> bool:
        """Atomically decrement a fault countdown; True while it lasts."""
        with self._mutex:
            value = getattr(self, attr)
            if value > 0:
                setattr(self, attr, value - 1)
                return True
            return False

    # -- write-reordering barrier tracking -----------------------------

    def _tracking_reorder(self) -> bool:
        return self.reorder and not self.durable_writes

    def _note_mutation(self, path: Path) -> None:
        """Snapshot a file's last-barrier state before mutating it.

        The read happens *inside* the mutex: with two threads racing to
        first-mutate the same file, a snapshot taken outside could
        capture the other thread's already-applied partial mutation as
        the "barrier state", and :meth:`_apply_reorder_crash` would then
        roll back to a state that never existed at a barrier.
        """
        if not self._tracking_reorder():
            return
        key = str(path)
        with self._mutex:
            if key in self._unsynced:
                return
            self._unsynced[key] = (
                self.base.read_bytes(path)
                if self.base.exists(path) else _ABSENT
            )

    def _reorder_point(self, kind: str, path: Path) -> bool:
        """Whether to crash here with the reordered-write state."""
        if not self._tracking_reorder():
            return False
        key = str(path)
        with self._mutex:
            others = any(k != key for k in self._unsynced)
        if not others:
            return False
        return self._point(f"reorder:{kind}:{Path(path).name}")

    def _apply_reorder_crash(self, exclude: set[str]) -> None:
        """Roll every un-synced file (except ``exclude``) back to its
        last barrier state — the crash persisted the current mutation
        ahead of older writes to other files."""
        for key, state in list(self._unsynced.items()):
            if key in exclude:
                continue
            if state is _ABSENT:
                self.base.unlink(Path(key))
            else:
                self.base.write_bytes(Path(key), state)  # type: ignore[arg-type]

    def _clear_barrier(self, path: Path) -> None:
        with self._mutex:
            self._unsynced.pop(str(path), None)

    # -- reads are never injected --------------------------------------

    def exists(self, path: Path) -> bool:
        return self.base.exists(path)

    def size(self, path: Path) -> int:
        return self.base.size(path)

    def read_bytes(self, path: Path) -> bytes:
        return self.base.read_bytes(path)

    # -- mutating primitives -------------------------------------------

    def append_bytes(self, path: Path, data: bytes) -> None:
        self._note_mutation(path)
        if self._consume("enospc_appends"):
            if len(data) > 1:
                self.base.append_bytes(path, data[: len(data) // 2])
            raise OSError(
                errno.ENOSPC, f"injected disk-full appending to {path}"
            )
        if self._consume("transient_append_failures"):
            if len(data) > 1:
                self.base.append_bytes(path, data[: len(data) // 2])
            raise OSError(5, f"injected transient short write to {path}")
        if self._reorder_point("append", path):
            self.base.append_bytes(path, data)
            self._apply_reorder_crash({str(path)})
            raise CrashPoint(
                f"reordered write: append to {path} persisted ahead of "
                f"older un-synced writes"
            )
        if self._point(f"append-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before append to {path}")
        if len(data) > 1 and self._point(f"append-short:{Path(path).name}"):
            self.base.append_bytes(path, data[: len(data) // 2])
            raise CrashPoint(f"short write appending to {path}")
        if (
            self.backend_torn
            and hasattr(self.base, "simulate_torn_append")
            and self._point(f"append-backend-torn:{Path(path).name}")
        ):
            self.base.simulate_torn_append(path, data)
            raise CrashPoint(
                f"backend-shaped torn append to {path}: partial state "
                f"must be invisible after recovery"
            )
        self.base.append_bytes(path, data)

    def write_bytes(self, path: Path, data: bytes) -> None:
        self._note_mutation(path)
        if self._consume("enospc_writes"):
            if len(data) > 1:
                self.base.write_bytes(path, data[: len(data) // 2])
            raise OSError(
                errno.ENOSPC, f"injected disk-full writing {path}"
            )
        if self._reorder_point("write", path):
            self.base.write_bytes(path, data)
            self._apply_reorder_crash({str(path)})
            raise CrashPoint(
                f"reordered write: {path} persisted ahead of older "
                f"un-synced writes"
            )
        if self._point(f"write-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before write of {path}")
        if len(data) > 1 and self._point(f"write-short:{Path(path).name}"):
            self.base.write_bytes(path, data[: len(data) // 2])
            raise CrashPoint(f"short write of {path}")
        self.base.write_bytes(path, data)

    def replace(self, src: Path, dst: Path) -> None:
        if self._reorder_point("replace", dst):
            self.base.replace(src, dst)
            self._apply_reorder_crash({str(src), str(dst)})
            raise CrashPoint(
                f"reordered write: rename of {dst} persisted ahead of "
                f"older un-synced writes"
            )
        if self._point(f"replace-pre:{Path(dst).name}"):
            raise CrashPoint(f"crash before replacing {dst}")
        if self.torn_replace and self._point(f"replace-torn:{Path(dst).name}"):
            # The torn-rename crash state: data blocks and destination
            # entry durable, source unlink not (see module docstring).
            self.base.write_bytes(dst, self.base.read_bytes(src))
            raise CrashPoint(
                f"torn rename: {dst} updated but {src} left behind"
            )
        src_unsynced = False
        if self._tracking_reorder():
            with self._mutex:
                src_unsynced = str(src) in self._unsynced
            if src_unsynced:
                # Renaming never-synced content: it stays vulnerable at
                # its new name, against the pre-rename destination state.
                self._note_mutation(dst)
        self.base.replace(src, dst)
        if self._tracking_reorder():
            with self._mutex:
                self._unsynced.pop(str(src), None)
                if not src_unsynced:
                    # Synced content arrived atomically: dst is durable.
                    self._unsynced.pop(str(dst), None)

    def truncate(self, path: Path, size: int) -> None:
        self._note_mutation(path)
        if self._reorder_point("truncate", path):
            self.base.truncate(path, size)
            self._apply_reorder_crash({str(path)})
            raise CrashPoint(
                f"reordered write: truncate of {path} persisted ahead "
                f"of older un-synced writes"
            )
        if self._point(f"truncate-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before truncating {path}")
        self.base.truncate(path, size)

    def unlink(self, path: Path) -> None:
        self._note_mutation(path)
        if self._point(f"unlink-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before unlinking {path}")
        self.base.unlink(path)

    def fsync_file(self, path: Path) -> None:
        if self._consume("transient_fsync_failures"):
            raise OSError(5, f"injected transient fsync failure for {path}")
        if self._point(f"fsync-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before fsync of {path}")
        if self.fail_fsync:
            raise OSError(5, f"injected fsync failure for {path}")
        self.base.fsync_file(path)
        self._clear_barrier(path)

    def fsync_dir(self, path: Path) -> None:
        if self._point(f"fsyncdir-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before directory fsync of {path}")
        self.base.fsync_dir(path)

    def mkdirs(self, path: Path) -> None:
        if self._point(f"mkdir-pre:{Path(path).name}"):
            raise CrashPoint(f"crash before creating directory {path}")
        self.base.mkdirs(path)

    # -- backend-shaped fault passthrough ------------------------------

    def simulate_torn_append(self, path: Path, data: bytes) -> None:
        """Forward the backend's torn-append hook (tests drive it
        directly when composing fault layers)."""
        hook = getattr(self.base, "simulate_torn_append", None)
        if hook is None:
            raise NotImplementedError(
                "the wrapped backend has no backend-shaped torn-append "
                "state"
            )
        hook(path, data)
