"""Epoch-numbered, heartbeat-renewed write leases for primary election.

Replication has exactly one writer.  What enforces that — against the
failure that actually happens in production, a primary *paused* (GC,
SIGSTOP, VM migration) long enough for failover and then resumed — is
this lease:

* The lease lives next to the database as ``<db>.lease``: a JSON
  document ``{"epoch": E, "owner": O, "expires": T}`` written atomically
  (temp + ``os.replace``) through the same :class:`StorageFS` seam the
  WAL uses, so the crash matrix can injure it too.
* **Epochs** are the fencing tokens: every acquisition increments the
  epoch, every replication handshake and heartbeat carries it, and
  replicas refuse any primary offering an epoch lower than one they
  have already synced from.  A resumed ex-primary is therefore fenced
  twice — locally at its own WAL append (the :meth:`FileLease.check`
  fence installed via ``ConcurrentObjectbase.set_write_fence``) and
  remotely at every replica's handshake.
* **Heartbeats** (:class:`LeaseKeeper`) renew the expiry; renewal is
  cheap (read, verify still ours, rewrite).  A node that cannot renew
  — or whose clock shows the lease expired while it was paused — goes
  *read-only immediately and latches*: :meth:`check` re-reads the file
  once past local expiry, and any disagreement (different owner, higher
  epoch, or still-expired) raises
  :class:`~repro.core.errors.LeaseLostError` forever after.

The safety argument mirrors classic lease fencing (Gray &
Cheriton-style): an append is allowed only while the locally cached
expiry is in the future; a new primary can only acquire after that
expiry; so by the time epoch E+1 exists, the epoch-E holder has either
observed expiry (and latched) or is paused — and its first append after
resuming re-reads the file and latches.  Clock skew between nodes eats
into the margin, which is why ``ttl`` should dwarf expected skew; the
``clock`` is injectable so the tests can prove the pause story without
sleeping.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable

from ..core.errors import LeaseHeldError, LeaseLostError
from ..obs.metrics import REGISTRY
from ..storage.faults import RealFS, StorageFS

__all__ = ["FileLease", "LeaseKeeper"]

logger = logging.getLogger(__name__)

_ACQUIRES = REGISTRY.counter(
    "repro_lease_acquires_total",
    "Write-lease acquisitions (each bumps the fencing epoch)",
)
_RENEWALS = REGISTRY.counter(
    "repro_lease_renewals_total", "Write-lease heartbeat renewals"
)
_FENCED = REGISTRY.counter(
    "repro_lease_fenced_total",
    "Operations refused by the lease fence after lease loss",
)
_EPOCH = REGISTRY.gauge(
    "repro_lease_epoch", "The lease epoch this node last held (0 = never)"
)


class FileLease:
    """One node's handle on the file-backed write lease (see module doc).

    Not thread-safe for concurrent :meth:`acquire` calls from one
    process (there is no reason to race yourself); :meth:`check` is safe
    to call from writer threads while a :class:`LeaseKeeper` renews.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        owner: str | None = None,
        ttl: float = 5.0,
        clock: Callable[[], float] = time.time,
        fs: StorageFS | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.path = Path(path)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        self.ttl = ttl
        self.clock = clock
        self.fs = fs or RealFS()
        self.epoch: int | None = None
        self._expires = 0.0
        self._lost_reason: str | None = None
        self._mutex = threading.Lock()

    # -- disk format ----------------------------------------------------

    def read(self) -> dict | None:
        """The current on-disk lease document, or ``None`` when absent
        or unreadable (an unreadable lease is treated as up for grabs —
        it cannot fence anyone either)."""
        if not self.fs.exists(self.path):
            return None
        try:
            doc = json.loads(self.fs.read_bytes(self.path).decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or "epoch" not in doc:
            return None
        return doc

    def _write(self, doc: dict) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.fs.write_bytes(
            tmp, json.dumps(doc, sort_keys=True).encode("utf-8")
        )
        self.fs.fsync_file(tmp)
        self.fs.replace(tmp, self.path)

    # -- lifecycle ------------------------------------------------------

    def acquire(self) -> int:
        """Take the lease (epoch + 1); raises :class:`LeaseHeldError`
        while another owner's lease is still live."""
        with self._mutex:
            now = self.clock()
            current = self.read()
            if (
                current is not None
                and current.get("owner") != self.owner
                and float(current.get("expires", 0.0)) > now
            ):
                raise LeaseHeldError(
                    str(current.get("owner")),
                    float(current["expires"]) - now,
                )
            epoch = int(current.get("epoch", 0)) + 1 if current else 1
            self._write({
                "epoch": epoch,
                "owner": self.owner,
                "expires": now + self.ttl,
                "acquired": now,
            })
            # Two nodes racing an expired lease both pass the liveness
            # check; the atomic replace means exactly one document
            # survives.  Verify ours did — the loser backs off here, and
            # a loss this read misses (interleaved replace) is caught by
            # the first heartbeat's owner check within ttl/3.
            final = self.read()
            if (
                final is None
                or final.get("owner") != self.owner
                or int(final.get("epoch", -1)) != epoch
            ):
                raise LeaseHeldError(
                    str(final.get("owner")) if final else "unknown",
                    self.ttl,
                )
            self.epoch = epoch
            self._expires = now + self.ttl
            self._lost_reason = None
            _ACQUIRES.inc()
            _EPOCH.set(epoch)
            logger.info(
                "%s: acquired write lease epoch %d (ttl %.1fs)",
                self.path, epoch, self.ttl,
            )
            return epoch

    def renew(self) -> None:
        """Heartbeat: extend the expiry of a lease that is still ours."""
        with self._mutex:
            if self._lost_reason is not None:
                raise LeaseLostError(self._lost_reason)
            if self.epoch is None:
                raise LeaseLostError("no lease was ever acquired")
            now = self.clock()
            current = self.read()
            if (
                current is None
                or int(current.get("epoch", -1)) != self.epoch
                or current.get("owner") != self.owner
            ):
                seen = current.get("epoch") if current else "none"
                self._lose(
                    f"superseded on disk (epoch {seen}, "
                    f"owner {current.get('owner') if current else 'none'!r})"
                )
            if float(current.get("expires", 0.0)) <= now:
                # Expired and nobody has taken it yet: re-upping the same
                # epoch would race a concurrent acquirer.  Treat as lost;
                # the operator (or caller) re-acquires under a new epoch.
                self._lose(f"expired at {current.get('expires')}")
            self._write({**current, "expires": now + self.ttl})
            self._expires = now + self.ttl
            _RENEWALS.inc()

    def check(self) -> None:
        """The write fence: cheap while the lease is live, latched once
        lost.  Installed as the WAL's pre-append hook."""
        if self._lost_reason is not None:
            _FENCED.inc()
            raise LeaseLostError(self._lost_reason)
        if self.epoch is None:
            _FENCED.inc()
            raise LeaseLostError("no lease was ever acquired")
        if self.clock() < self._expires:
            return
        # Past our cached expiry — either the keeper renewed and we
        # raced the cache, or we were paused and the world moved on.
        # The file decides.
        with self._mutex:
            if self.clock() < self._expires:
                return
            current = self.read()
            now = self.clock()
            if (
                current is not None
                and int(current.get("epoch", -1)) == self.epoch
                and current.get("owner") == self.owner
                and float(current.get("expires", 0.0)) > now
            ):
                self._expires = float(current["expires"])
                return
            seen = current.get("epoch") if current else "none"
            try:
                self._lose(
                    f"lease expired while this node was stalled "
                    f"(disk shows epoch {seen})"
                )
            except LeaseLostError:
                _FENCED.inc()
                raise

    def held(self) -> bool:
        """Whether this node still holds the lease (non-raising fence)."""
        try:
            self.check()
        except LeaseLostError:
            return False
        return True

    def release(self) -> None:
        """Give the lease up cleanly (only if it is still ours)."""
        with self._mutex:
            if self.epoch is None:
                return
            current = self.read()
            if (
                current is not None
                and int(current.get("epoch", -1)) == self.epoch
                and current.get("owner") == self.owner
            ):
                try:
                    self.fs.unlink(self.path)
                except OSError:  # pragma: no cover - release is best effort
                    pass
            self._lost_reason = f"released by {self.owner}"
            logger.info("%s: released write lease epoch %s",
                        self.path, self.epoch)

    def _lose(self, reason: str) -> None:
        if self._lost_reason is None:
            logger.error("%s: write lease lost: %s", self.path, reason)
        self._lost_reason = reason
        raise LeaseLostError(reason)


class LeaseKeeper(threading.Thread):
    """Background heartbeat: renews ``lease`` every ``interval`` seconds
    (default ``ttl / 3``) until stopped or the lease is lost.  Loss is
    terminal for the keeper — it stops renewing and leaves the lease's
    latched fence to reject writes."""

    def __init__(
        self, lease: FileLease, interval: float | None = None
    ) -> None:
        super().__init__(name="repro-lease-keeper", daemon=True)
        self.lease = lease
        self.interval = interval if interval is not None else lease.ttl / 3.0
        self._stopped = threading.Event()
        self.lost: LeaseLostError | None = None

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            try:
                self.lease.renew()
            except LeaseLostError as exc:
                self.lost = exc
                logger.error(
                    "lease keeper stopping: %s", exc
                )
                return

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=5.0)
