"""Replication: WAL shipping, lease-fenced failover, stale-read replicas.

One primary owns writes; replicas mirror its durable WAL over a
checksummed socket protocol and replay it into lock-free read-only
snapshots.  The package is organized by role:

* :mod:`~repro.replication.protocol` — the wire format and durable
  :class:`~repro.replication.protocol.Position`;
* :mod:`~repro.replication.channel` — socket channels and the
  :class:`~repro.replication.channel.FaultyChannel` fault injector;
* :mod:`~repro.replication.lease` — epoch-numbered write leases fencing
  a paused-and-resumed ex-primary;
* :mod:`~repro.replication.primary` — WAL tailing + the shipping server;
* :mod:`~repro.replication.replica` — the durable replica store and its
  reconnecting client.

The invariant everything here defends: **a replica serves either a
committed prefix of the primary's durable history, or reports itself
unready — never a divergent or phantom snapshot** — and a primary that
lost its lease can never append again.  ``docs/replication.md`` walks
through the protocol, the lease safety argument, and the failover
runbook.
"""

from .channel import Channel, ChannelClosed, FaultyChannel
from .lease import FileLease, LeaseKeeper
from .primary import ReplicationServer, ReplicationSource, SourceState
from .protocol import PROTOCOL_VERSION, Position
from .replica import ReplicaStore, ReplicationClient

__all__ = [
    "PROTOCOL_VERSION",
    "Position",
    "Channel",
    "ChannelClosed",
    "FaultyChannel",
    "FileLease",
    "LeaseKeeper",
    "ReplicationServer",
    "ReplicationSource",
    "SourceState",
    "ReplicaStore",
    "ReplicationClient",
]
