"""The primary's side of replication: tail the durable WAL, ship it.

:class:`ReplicationSource` reads the primary's own on-disk WAL and
checkpoint (the same files :class:`~repro.storage.journal.JournalFile`
writes, through the same :class:`StorageFS` seam).  That "ship only
what is on disk" rule is the heart of the committed-prefix invariant:
a record that was acknowledged but not yet durable *cannot* reach a
replica, so no replica can ever be ahead of what the primary would
itself recover to after a crash.

:class:`ReplicationServer` accepts replica connections and runs one
shipper loop per replica:

1. **Handshake** — verify the lease is still held (a fenced ex-primary
   refuses service here), verify the replica's claimed position is a
   real prefix of our history (same checkpoint generation *and* the
   CRC-32 of its WAL prefix matches ours), then either resume tailing
   from that position or ship a full checkpoint.
2. **Tailing** — poll the WAL (cheap: a size/generation cache makes the
   no-change case two ``stat``\\ s) and ship new records verbatim; each
   batch carries its start index so the replica can refuse anything
   out of order.  A new checkpoint generation on the primary re-ships
   the checkpoint (the WAL was truncated under it).
3. **Heartbeats** — when idle, carry the primary's position and lease
   epoch so replicas can measure staleness and detect stale epochs.

The lease is re-checked before every send batch, so a primary that
loses its lease mid-stream stops shipping within one poll interval.
"""

from __future__ import annotations

import logging
import socket
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import monotonic
from typing import Callable

from ..core.errors import ReplicationError
from ..obs.metrics import REGISTRY
from ..obs.tracing import trace
from ..storage.backend import resolve_storage_url
from ..storage.faults import StorageFS
from ..storage.framing import load_checkpoint, scan_log
from .channel import Channel, ChannelClosed
from .lease import FileLease
from .protocol import PROTOCOL_VERSION, Position

__all__ = ["ReplicationSource", "ReplicationServer", "SourceState"]

logger = logging.getLogger(__name__)

_SHIPPED = REGISTRY.counter(
    "repro_replication_shipped_records_total",
    "WAL records shipped to replicas",
)
_CHECKPOINT_SHIPS = REGISTRY.counter(
    "repro_replication_checkpoint_ships_total",
    "Full checkpoint ships (resync or post-checkpoint catch-up)",
)
_HANDSHAKES = REGISTRY.counter(
    "repro_replication_handshakes_total",
    "Replication handshakes served, by outcome",
    labelnames=("outcome",),
)
_CONNECTED = REGISTRY.gauge(
    "repro_replication_connected_replicas",
    "Replica connections currently being served",
)
_HEARTBEATS = REGISTRY.counter(
    "repro_replication_heartbeats_total",
    "Heartbeats sent to idle replicas",
)


@dataclass(frozen=True)
class SourceState:
    """One consistent view of the primary's durable history."""

    generation: int
    frames: tuple[bytes, ...]  #: newline-terminated framed WAL lines

    @property
    def position(self) -> Position:
        return Position(self.generation, len(self.frames))


class ReplicationSource:
    """Read-only access to the primary's durable WAL + checkpoint."""

    def __init__(
        self, path: str | Path, *, fs: StorageFS | None = None
    ) -> None:
        # Accepts the same backend URLs as Objectbase.open, so the
        # shipper reads the WAL through the very backend that wrote it.
        target = resolve_storage_url(path, fs=fs)
        self.path = Path(target.path)
        self.checkpoint_path = self.path.with_suffix(
            self.path.suffix + ".checkpoint"
        )
        self.fs = target.fs
        self._cache_key: tuple[int, int] | None = None
        self._cache: SourceState | None = None
        self._lock = threading.Lock()

    def state(self) -> SourceState:
        """The current durable history (cached until the files change).

        Tolerates a concurrent writer: a torn trailing line is simply
        not part of the valid prefix yet and ships on the next poll.
        """
        with self._lock:
            cp_size = (
                self.fs.size(self.checkpoint_path)
                if self.fs.exists(self.checkpoint_path) else -1
            )
            wal_size = (
                self.fs.size(self.path) if self.fs.exists(self.path) else -1
            )
            key = (cp_size, wal_size)
            if self._cache is not None and key == self._cache_key:
                return self._cache
            _, generation = load_checkpoint(self.checkpoint_path, fs=self.fs)
            data = (
                self.fs.read_bytes(self.path) if wal_size >= 0 else b""
            )
            scan = scan_log(data)
            frames = tuple(
                data[r.offset:r.end].rstrip(b"\n") + b"\n"
                for r in scan.records
                if r.generation is None or r.generation >= generation
            )
            self._cache = SourceState(generation=generation, frames=frames)
            self._cache_key = key
            return self._cache

    def checkpoint_state(self) -> tuple[dict | None, int]:
        """The full checkpoint document for a state ship."""
        return load_checkpoint(self.checkpoint_path, fs=self.fs)

    @staticmethod
    def prefix_crc(state: SourceState, index: int) -> int:
        """CRC-32 of the first ``index`` shipped frames — the prefix
        fingerprint replicas present at handshake."""
        crc = 0
        for frame in state.frames[:index]:
            crc = zlib.crc32(frame, crc)
        return crc & 0xFFFFFFFF


class ReplicationServer:
    """Accepts replicas and ships the WAL to each (one thread per peer)."""

    def __init__(
        self,
        source: ReplicationSource,
        *,
        lease: FileLease | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
        heartbeat_interval: float = 1.0,
        channel_factory: Callable[[socket.socket], Channel] = Channel,
        send_timeout: float = 10.0,
    ) -> None:
        self.source = source
        self.lease = lease
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.channel_factory = channel_factory
        self.send_timeout = send_timeout
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._peers: dict[int, tuple[Channel, threading.Event]] = {}
        self._peers_lock = threading.Lock()
        self._peer_seq = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.lease.epoch or 0 if self.lease is not None else 0

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise ReplicationError("replication server is not started")
        return self._listener.getsockname()[:2]

    @property
    def connected_replicas(self) -> int:
        with self._peers_lock:
            return len(self._peers)

    def start(self) -> "ReplicationServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-replication-accept",
            daemon=True,
        )
        self._accept_thread.start()
        logger.info(
            "replication listener on %s:%d (epoch %d)",
            *self.address, self.epoch,
        )
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._peers_lock:
            peers = list(self._peers.values())
        for channel, wake in peers:
            wake.set()
            channel.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def notify(self) -> None:
        """Wake every shipper: new records were just committed."""
        with self._peers_lock:
            for _, wake in self._peers.values():
                wake.set()

    # -- internals ------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_peer, args=(conn,),
                name="repro-replication-shipper", daemon=True,
            ).start()

    def _register(self, channel: Channel) -> tuple[int, threading.Event]:
        wake = threading.Event()
        with self._peers_lock:
            self._peer_seq += 1
            peer_id = self._peer_seq
            self._peers[peer_id] = (channel, wake)
        _CONNECTED.set(self.connected_replicas)
        return peer_id, wake

    def _deregister(self, peer_id: int) -> None:
        with self._peers_lock:
            self._peers.pop(peer_id, None)
        _CONNECTED.set(self.connected_replicas)

    def _fenced(self, channel: Channel) -> bool:
        """True (and an error message sent) when our lease is gone."""
        if self.lease is None or self.lease.held():
            return False
        try:
            channel.send({
                "type": "error",
                "code": "lease-lost",
                "message": "primary lost its write lease; find the new "
                           "primary",
            })
        except (ReplicationError, OSError):  # pragma: no cover
            pass
        return True

    def _serve_peer(self, conn: socket.socket) -> None:
        channel = self.channel_factory(conn)
        peer_id, wake = self._register(channel)
        try:
            channel.settimeout(self.send_timeout)
            self._ship_to(channel, wake)
        except (ChannelClosed, ReplicationError, OSError) as exc:
            logger.info("replica connection ended: %s", exc)
        finally:
            self._deregister(peer_id)
            channel.close()

    def _ship_to(self, channel: Channel, wake: threading.Event) -> None:
        hello = channel.recv()
        if hello.get("type") != "hello" or \
                hello.get("protocol") != PROTOCOL_VERSION:
            _HANDSHAKES.labels(outcome="bad-hello").inc()
            channel.send({
                "type": "error", "code": "replication-protocol",
                "message": f"expected hello/v{PROTOCOL_VERSION}, got "
                           f"{hello.get('type')!r}/"
                           f"v{hello.get('protocol')!r}",
            })
            return
        if self._fenced(channel):
            # A fenced ex-primary must refuse the handshake: serving a
            # replica here could extend a superseded history.
            _HANDSHAKES.labels(outcome="fenced").inc()
            return
        epoch = self.epoch
        if int(hello.get("seen_epoch", 0)) > epoch:
            # The replica has synced from a *newer* primary than us.
            _HANDSHAKES.labels(outcome="stale-epoch").inc()
            channel.send({
                "type": "error", "code": "stale-epoch",
                "message": f"replica has seen epoch "
                           f"{hello.get('seen_epoch')}, ours is {epoch}",
            })
            return
        state = self.source.state()
        claimed = Position(
            int(hello.get("generation", 0)), int(hello.get("index", 0))
        )
        resume = (
            not hello.get("resync", False)
            and claimed.generation == state.generation
            and claimed.index <= len(state.frames)
            and int(hello.get("crc", -1))
            == self.source.prefix_crc(state, claimed.index)
        )
        _HANDSHAKES.labels(
            outcome="resume" if resume else "resync"
        ).inc()
        channel.send({
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "epoch": epoch,
            "position": str(state.position),
            "resume": resume,
        })
        if resume:
            generation, index = claimed.generation, claimed.index
        else:
            generation, index = self._ship_checkpoint(channel)
        last_beat = monotonic()
        while not self._stopping.is_set():
            if self._fenced(channel):
                return
            state = self.source.state()
            if state.generation != generation:
                # The primary checkpointed: its WAL restarted under a
                # new generation, so re-base the replica on the fresh
                # checkpoint (the records it missed are folded into it).
                generation, index = self._ship_checkpoint(channel)
                last_beat = monotonic()
                continue
            if len(state.frames) > index:
                batch = state.frames[index:]
                with trace.span(
                    "replication.ship", records=len(batch),
                    position=str(state.position),
                ):
                    channel.send({
                        "type": "records",
                        "generation": generation,
                        "from_index": index,
                        "frames": [
                            f.decode("utf-8").rstrip("\n") for f in batch
                        ],
                        "position": str(state.position),
                        "epoch": self.epoch,
                    })
                index = len(state.frames)
                _SHIPPED.inc(len(batch))
                last_beat = monotonic()
                continue
            now = monotonic()
            if now - last_beat >= self.heartbeat_interval:
                channel.send({
                    "type": "heartbeat",
                    "position": str(state.position),
                    "epoch": self.epoch,
                })
                _HEARTBEATS.inc()
                last_beat = now
            wake.wait(self.poll_interval)
            wake.clear()

    def _ship_checkpoint(self, channel: Channel) -> tuple[int, int]:
        cp_state, generation = self.source.checkpoint_state()
        with trace.span(
            "replication.checkpoint-ship", generation=generation
        ):
            channel.send({
                "type": "checkpoint",
                "generation": generation,
                "state": cp_state,
                "epoch": self.epoch,
                "position": str(Position(generation, 0)),
            })
        _CHECKPOINT_SHIPS.inc()
        return generation, 0
