"""The replica: a durable WAL mirror replayed into lock-free snapshots.

:class:`ReplicaStore` owns the replica's local files — the *same* WAL +
checkpoint layout as a primary, holding verbatim copies of the shipped
frames — and the published :class:`~repro.concurrent.SchemaSnapshot`
readers serve from.  Durability before visibility: every shipped record
is appended to the local WAL *before* it is applied and published, so a
replica that crashes mid-replay recovers (by the ordinary storage-layer
recovery) to exactly the prefix it had acknowledged, and resumes from
there.

:class:`ReplicationClient` is the background thread that keeps the
store fed: connect, handshake with the durable position and prefix CRC,
then apply checkpoint/records/heartbeat messages as they arrive.  Its
failure policy is the robustness headline:

* **Channel damage** (checksum mismatch, truncated envelope, out-of-
  order batch) quarantines the stream — drop the connection, count it,
  re-handshake from the last *durable* position.  Nothing damaged is
  ever applied, so the published snapshot is always a committed prefix
  of the primary's history.
* **Divergence** (a shipped record the engine rejects) latches a full
  resync: the next handshake requests a checkpoint ship uncondition-
  ally, replacing local state wholesale rather than guessing.
* **Disconnection** degrades to *stale-read mode* instead of failing
  closed: reads keep serving the last snapshot, staleness is measured
  (and exported) rather than hidden, and ``/readyz`` flips only when
  ``max_staleness`` says so.  Reconnects use the storage layer's
  :class:`~repro.storage.reliability.RetryPolicy` backoff (with jitter,
  so a restarted primary is not met by a thundering herd).
* **Fencing**: the client remembers the highest lease epoch it has
  synced from and refuses any primary offering a lower one
  (:class:`~repro.core.errors.StaleEpochError`) — the replica-side half
  of double-primary protection.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
import zlib
from pathlib import Path
from typing import Callable

from ..concurrent import SchemaSnapshot
from ..core.config import LatticePolicy
from ..core.errors import (
    CorruptRecordError,
    EvolutionError,
    JournalError,
    ReplicaDivergedError,
    ReplicationError,
    StaleEpochError,
)
from ..core.lattice import TypeLattice
from ..core.operations import operation_from_dict
from ..obs.metrics import REGISTRY
from ..obs.tracing import trace
from ..storage.backend import resolve_storage_url
from ..storage.faults import StorageFS
from ..storage.framing import (
    DurabilityPolicy,
    frame_payload,
    load_checkpoint,
    read_log,
    timed_fsync,
    write_checkpoint,
)
from ..storage.reliability import RetryPolicy
from .channel import Channel, ChannelClosed
from .protocol import PROTOCOL_VERSION, Position

__all__ = ["ReplicaStore", "ReplicationClient"]

logger = logging.getLogger(__name__)

_REPLAYED = REGISTRY.counter(
    "repro_replication_replayed_records_total",
    "Shipped WAL records durably applied by this replica",
)
_CHECKPOINTS_INSTALLED = REGISTRY.counter(
    "repro_replication_checkpoints_installed_total",
    "Full checkpoint ships installed by this replica",
)
_RECONNECTS = REGISTRY.counter(
    "repro_replication_reconnects_total",
    "Replication stream reconnect attempts",
)
_QUARANTINED_STREAMS = REGISTRY.counter(
    "repro_replication_quarantined_streams_total",
    "Streams dropped for channel damage or protocol violations",
)
_STALE_MODE = REGISTRY.gauge(
    "repro_replication_stale_mode",
    "1 while this replica serves reads beyond its staleness bound",
)
_LAG = REGISTRY.gauge(
    "repro_replication_lag_records",
    "Records the primary has committed beyond this replica's position",
)
_DIVERGENCES = REGISTRY.counter(
    "repro_replication_divergences_total",
    "Shipped records the replica could not apply (forced full resync)",
)


class ReplicaStore:
    """The replica's durable state + published read snapshot.

    Read surface mirrors :class:`~repro.concurrent.ConcurrentObjectbase`
    (``snapshot``/``card``/``types``/``degraded``) so the HTTP service
    can serve from either interchangeably.  All mutation comes from the
    replication client thread; a mutex serializes it against the
    re-load in :meth:`reload`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        policy: LatticePolicy | None = None,
        durability: DurabilityPolicy | None = None,
        fs: StorageFS | None = None,
    ) -> None:
        # Replicas mirror into any backend too (same URL forms).
        target = resolve_storage_url(path, fs=fs)
        self.path = Path(target.path)
        self.checkpoint_path = self.path.with_suffix(
            self.path.suffix + ".checkpoint"
        )
        self.policy = policy
        self.durability = durability or DurabilityPolicy()
        self.fs = target.fs
        self._mutex = threading.Lock()
        self._lattice: TypeLattice
        self._snapshot: SchemaSnapshot
        self._position = Position(0, 0)
        self._tail_crc = 0
        self.reload()

    # -- lock-free read surface ----------------------------------------

    @property
    def snapshot(self) -> SchemaSnapshot:
        return self._snapshot

    def types(self) -> frozenset[str]:
        return self._snapshot.types()

    def card(self, name: str):
        return self._snapshot.card(name)

    def __contains__(self, name: str) -> bool:
        return name in self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot)

    @property
    def degraded(self) -> bool:
        # A replica never latches write-degraded (it takes no writes);
        # staleness is the client's dimension, reported separately.
        return False

    @property
    def durable(self) -> bool:
        return True

    @property
    def position(self) -> Position:
        """The durable replication position (what we resume from)."""
        return self._position

    @property
    def tail_crc(self) -> int:
        """CRC-32 of the live WAL prefix — our handshake fingerprint."""
        return self._tail_crc

    # -- durable mutation (replication client only) ---------------------

    def reload(self) -> None:
        """(Re)build the lattice and position from local durable state —
        process start and crash recovery share this one path."""
        with self._mutex:
            state, generation = load_checkpoint(
                self.checkpoint_path, fs=self.fs
            )
            lattice = (
                _lattice_from_state(state) if state is not None
                else TypeLattice(self.policy)
            )
            records, report = read_log(
                self.path, fs=self.fs, mode="salvage",
                decode=operation_from_dict, repair=True,
            )
            if not report.clean:
                logger.warning(
                    "replica WAL healed on reload: %s", report.summary()
                )
            crc = 0
            live = 0
            data = (
                self.fs.read_bytes(self.path)
                if self.fs.exists(self.path) else b""
            )
            for record in records:
                if (
                    record.generation is not None
                    and record.generation < generation
                ):
                    continue
                record.decoded.apply(lattice)
                frame = data[record.offset:record.end].rstrip(b"\n") + b"\n"
                crc = _crc32(frame, crc)
                live += 1
            self._lattice = lattice
            self._position = Position(generation, live)
            self._tail_crc = crc
            self._snapshot = SchemaSnapshot.capture(lattice)

    def install_checkpoint(self, state: dict | None, generation: int) -> None:
        """Replace everything with a shipped checkpoint (full resync)."""
        with self._mutex:
            with trace.span(
                "replication.install-checkpoint", generation=generation
            ):
                write_checkpoint(
                    self.checkpoint_path, state, generation,
                    fs=self.fs, sync=self.durability.sync_checkpoints,
                )
                self.fs.write_bytes(self.path, b"")
                if self.durability.sync_checkpoints:
                    timed_fsync(self.fs, self.path)
                lattice = (
                    _lattice_from_state(state) if state is not None
                    else TypeLattice(self.policy)
                )
                self._lattice = lattice
                self._position = Position(generation, 0)
                self._tail_crc = 0
                self._snapshot = SchemaSnapshot.capture(lattice)
        _CHECKPOINTS_INSTALLED.inc()
        logger.info(
            "installed shipped checkpoint generation %d (%d type(s))",
            generation, len(self._snapshot),
        )

    def apply_records(
        self, generation: int, from_index: int, frames: list[str]
    ) -> int:
        """Durably apply one shipped batch; returns records applied.

        Raises :class:`ReplicationError` for a batch that does not line
        up with our position (reordered/duplicated delivery — refuse,
        never reorder), :class:`CorruptRecordError` for a frame whose
        own checksum fails (channel damage the envelope CRC missed --
        still structurally caught), and :class:`ReplicaDivergedError`
        when a structurally valid record will not apply (local state is
        not the prefix it claimed to be; resync).
        """
        with self._mutex:
            expected = self._position
            if generation != expected.generation \
                    or from_index != expected.index:
                raise ReplicationError(
                    f"out-of-order batch: stream offers "
                    f"{generation}:{from_index}, replica is at {expected}"
                )
            applied = 0
            with trace.span(
                "replication.replay", records=len(frames),
                position=str(expected),
            ):
                for text in frames:
                    frame = text.rstrip("\n").encode("utf-8") + b"\n"
                    payload = frame_payload(frame)  # verifies frame CRC
                    try:
                        operation = operation_from_dict(payload)
                    except (ValueError, KeyError, TypeError) as exc:
                        raise ReplicaDivergedError(
                            f"shipped record decodes to no operation: {exc}"
                        ) from exc
                    # Durability before visibility: land the frame, then
                    # apply.  A crash between the two replays it on
                    # reload — same write-ahead contract as the primary.
                    size_before = (
                        self.fs.size(self.path)
                        if self.fs.exists(self.path) else 0
                    )
                    try:
                        self.fs.append_bytes(self.path, frame)
                        if self.durability.sync_appends:
                            timed_fsync(self.fs, self.path)
                    except OSError:
                        # Roll partial bytes back so the next batch does
                        # not land on top of a torn line; if even that
                        # fails, reload() heals it as a torn tail.
                        try:
                            self.fs.truncate(self.path, size_before)
                        except OSError:  # pragma: no cover
                            pass
                        raise
                    try:
                        operation.apply(self._lattice)
                    except EvolutionError as exc:
                        # Roll the unapplied frame back out so durable
                        # state matches the published prefix exactly.
                        self.fs.truncate(self.path, size_before)
                        _DIVERGENCES.inc()
                        raise ReplicaDivergedError(
                            f"shipped record rejected by the engine at "
                            f"{self._position}: {exc}"
                        ) from exc
                    self._tail_crc = _crc32(frame, self._tail_crc)
                    self._position = Position(
                        self._position.generation,
                        self._position.index + 1,
                    )
                    applied += 1
            if applied and self.durability.fsync == "batch":
                timed_fsync(self.fs, self.path)
            self._snapshot = SchemaSnapshot.capture(
                self._lattice, self._snapshot
            )
        _REPLAYED.inc(applied)
        return applied


def _crc32(data: bytes, crc: int = 0) -> int:
    return zlib.crc32(data, crc) & 0xFFFFFFFF


def _lattice_from_state(state: dict) -> TypeLattice:
    from ..storage.snapshot import lattice_from_dict

    return lattice_from_dict(state)


class ReplicationClient(threading.Thread):
    """Background sync thread: keeps a :class:`ReplicaStore` caught up.

    See the module docstring for the failure policy.  ``clock`` is
    injectable (staleness tests advance it instead of sleeping);
    ``channel_factory`` is the fault-injection seam.
    """

    def __init__(
        self,
        store: ReplicaStore,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        max_staleness: float | None = None,
        heartbeat_timeout: float = 5.0,
        connect_timeout: float = 2.0,
        channel_factory: Callable[[socket.socket], Channel] = Channel,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(name="repro-replication-client", daemon=True)
        self.store = store
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy(
            attempts=6, base_delay=0.05, max_delay=2.0, jitter=0.5,
        )
        self.max_staleness = max_staleness
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.channel_factory = channel_factory
        self.clock = clock
        self.seen_epoch = 0
        self.primary_position: Position | None = None
        self.connected = False
        self.synced = False  #: completed at least one handshake
        self.last_contact: float | None = None
        self.last_error: str | None = None
        self._resync = False
        self._stopped = threading.Event()
        self._channel: Channel | None = None

    # -- health surface -------------------------------------------------

    def staleness(self) -> float:
        """Seconds since the primary was last heard from (inf if never)."""
        if self.last_contact is None:
            return float("inf")
        return max(0.0, self.clock() - self.last_contact)

    @property
    def stale(self) -> bool:
        """Whether reads are beyond the configured staleness bound.

        Latched by construction: it stays true from the moment the
        bound is exceeded until a reconnect actually refreshes
        ``last_contact`` — there is no way to clear it but to hear from
        a primary.  With no bound configured a replica is never "too
        stale" (but the metrics still expose the raw staleness).
        """
        if self.max_staleness is None:
            return False
        is_stale = self.staleness() > self.max_staleness
        _STALE_MODE.set(1 if is_stale else 0)
        return is_stale

    @property
    def lag_records(self) -> int | None:
        """Records behind the primary (None while that is unknowable —
        never connected, or mid-resync across a checkpoint bump)."""
        if self.primary_position is None:
            return None
        local = self.store.position
        if self.primary_position.generation != local.generation:
            return None
        lag = max(0, self.primary_position.index - local.index)
        _LAG.set(lag)
        return lag

    def describe(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------

    def stop(self) -> None:
        self._stopped.set()
        channel = self._channel
        if channel is not None:
            channel.close()
        if self.is_alive():
            self.join(timeout=5.0)

    def run(self) -> None:
        failures = 0
        while not self._stopped.is_set():
            made_contact = False
            try:
                self._sync_once()
            except ChannelClosed as exc:
                self.last_error = str(exc)
                logger.info("replication stream closed: %s", exc)
            except StaleEpochError as exc:
                # A fenced ex-primary: refuse it and keep retrying — if
                # the address is ever repointed at the new primary (or
                # it re-acquires a higher epoch), sync resumes.
                self.last_error = str(exc)
                _QUARANTINED_STREAMS.inc()
                logger.error("%s", exc)
            except ReplicaDivergedError as exc:
                self.last_error = str(exc)
                self._resync = True
                _QUARANTINED_STREAMS.inc()
                logger.error("replica diverged, forcing resync: %s", exc)
            except (
                ReplicationError, CorruptRecordError,
                KeyError, TypeError, ValueError,
            ) as exc:
                self.last_error = str(exc)
                _QUARANTINED_STREAMS.inc()
                logger.warning("replication stream quarantined: %s", exc)
            except (OSError, JournalError) as exc:
                self.last_error = str(exc)
                logger.info("replication connection failed: %s", exc)
            finally:
                made_contact = self.connected
                self.connected = False
                channel, self._channel = self._channel, None
                if channel is not None:
                    channel.close()
            if self._stopped.is_set():
                return
            # A connection that at least handshook resets the backoff
            # ramp; repeated failures walk it up to the (jittered) cap.
            failures = 0 if made_contact else failures + 1
            _RECONNECTS.inc()
            self._stopped.wait(self._reconnect_delay(failures))

    def _reconnect_delay(self, failures: int) -> float:
        """The policy's exponential ramp, jittered, capped — but never
        exhausted: a replica retries forever (stale-read mode is the
        degraded state, not giving up)."""
        exponent = max(0, failures - 1)
        delay = min(
            self.retry.base_delay * (self.retry.multiplier ** exponent),
            self.retry.max_delay,
        )
        if self.retry.jitter:
            delay *= 1.0 - self.retry.jitter * self.retry.rng()
        return delay

    def _sync_once(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        channel = self.channel_factory(sock)
        self._channel = channel
        channel.settimeout(self.heartbeat_timeout)
        channel.send({
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "generation": self.store.position.generation,
            "index": self.store.position.index,
            "crc": self.store.tail_crc,
            "seen_epoch": self.seen_epoch,
            "resync": self._resync,
        })
        welcome = channel.recv()
        if welcome.get("type") == "error":
            raise ReplicationError(
                f"primary refused handshake: {welcome.get('code')}: "
                f"{welcome.get('message')}"
            )
        if welcome.get("type") != "welcome" \
                or welcome.get("protocol") != PROTOCOL_VERSION:
            raise ReplicationError(
                f"expected welcome/v{PROTOCOL_VERSION}, got "
                f"{welcome.get('type')!r}"
            )
        self._observe_epoch(int(welcome.get("epoch", 0)))
        self.primary_position = Position.parse(str(welcome["position"]))
        self.connected = True
        self.synced = True
        self.last_contact = self.clock()
        logger.info(
            "replicating from %s (epoch %d, primary at %s, %s)",
            self.describe(), self.seen_epoch, self.primary_position,
            "resuming" if welcome.get("resume") else "resyncing",
        )
        while not self._stopped.is_set():
            message = channel.recv()
            self.last_contact = self.clock()
            kind = message.get("type")
            if "epoch" in message:
                self._observe_epoch(int(message["epoch"]))
            if kind == "checkpoint":
                self.store.install_checkpoint(
                    message.get("state"), int(message["generation"])
                )
                self._resync = False
                self.primary_position = Position.parse(
                    str(message.get("position", message["generation"]))
                )
            elif kind == "records":
                self.store.apply_records(
                    int(message["generation"]),
                    int(message["from_index"]),
                    list(message["frames"]),
                )
                self._resync = False
                self.primary_position = Position.parse(
                    str(message["position"])
                )
            elif kind == "heartbeat":
                self.primary_position = Position.parse(
                    str(message["position"])
                )
            elif kind == "error":
                raise ReplicationError(
                    f"primary closed the stream: {message.get('code')}: "
                    f"{message.get('message')}"
                )
            else:
                raise ReplicationError(
                    f"unknown message type {kind!r} on the stream"
                )
            # Touch the health surface so gauges track without readers.
            self.lag_records
            self.stale

    def _observe_epoch(self, epoch: int) -> None:
        if epoch < self.seen_epoch:
            raise StaleEpochError(self.seen_epoch, epoch)
        self.seen_epoch = max(self.seen_epoch, epoch)
