"""Socket channels for the replication protocol, plus fault injection.

:class:`Channel` is the one seam all replication traffic crosses: it
frames outgoing messages (:func:`~repro.replication.protocol.encode_message`)
and verifies incoming ones.  :class:`FaultyChannel` mirrors
:class:`~repro.storage.faults.FaultyFS` one layer up — every message
boundary is a numbered injection point, and the fault matrix iterates
``fault_at`` from 0 upward until a workload survives the whole schedule,
proving the replica copes at *every* boundary, not a lucky sample:

* ``drop`` — hard-close the connection before the message moves (the
  peer sees EOF; a dropped or reset connection).
* ``truncate`` — send half the envelope, then close: the half-open /
  dying-proxy case; the receiver must classify the stub as damage, not
  block forever or misparse.
* ``bitflip`` — flip one payload bit and deliver the rest faithfully;
  only the envelope checksum stands between this and a corrupt replica.
* ``reorder`` — hold this message and release it *after* the next one:
  a buggy shipper's out-of-order catch-up batch.  TCP never does this;
  the replica must still refuse to apply it.
* ``stall`` — stop moving bytes without closing: the stalled-replica /
  frozen-primary case; the peer's staleness clock, not the transport,
  must notice.

Faults are injected on the *sending* side (the receive path sees exactly
the damaged bytes a real network would deliver).  After the fault fires
once, the channel is dead (like a crashed process); reconnection builds
a fresh, healthy one — matching how the crash matrix reopens a store
after every simulated power cut.
"""

from __future__ import annotations

import socket
import struct
from typing import Callable

from ..core.errors import ReplicationError, register_error
from .protocol import HEADER, MAX_MESSAGE_BYTES, decode_payload, encode_message

__all__ = ["Channel", "FaultyChannel", "ChannelClosed", "FAULT_MODES"]

FAULT_MODES = ("drop", "truncate", "bitflip", "reorder", "stall")


@register_error
class ChannelClosed(ReplicationError):
    """The peer closed the connection cleanly (EOF between messages)."""

    code = "replication-closed"


class Channel:
    """One replication connection: send/recv verified protocol messages."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        # Replication peers are long-lived but must never block forever;
        # callers layer their own timeouts via settimeout().
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def settimeout(self, timeout: float | None) -> None:
        self.sock.settimeout(timeout)

    def send(self, message: dict) -> None:
        self._send_bytes(encode_message(message))

    def recv(self) -> dict:
        """Receive one verified message.

        Raises :class:`ChannelClosed` on a clean EOF at a message
        boundary and :class:`ReplicationError` on anything torn or
        corrupt — the caller's reaction to the latter is quarantine:
        drop the stream and re-handshake.
        """
        header = self._recv_exactly(HEADER.size, eof_ok=True)
        if header is None:
            raise ChannelClosed("peer closed the replication stream")
        length, crc = HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise ReplicationError(
                f"message header claims {length} bytes "
                f"(limit {MAX_MESSAGE_BYTES}); stream is corrupt"
            )
        payload = self._recv_exactly(length, eof_ok=False)
        assert payload is not None
        return decode_payload(payload, crc)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best effort
            pass

    # -- byte transport (the FaultyChannel override seam) ---------------

    def _send_bytes(self, data: bytes) -> None:
        self.sock.sendall(data)

    def _recv_exactly(self, count: int, *, eof_ok: bool) -> bytes | None:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            chunk = self.sock.recv(remaining)
            if not chunk:
                if eof_ok and remaining == count:
                    return None
                raise ReplicationError(
                    f"stream truncated mid-message ({count - remaining} "
                    f"of {count} bytes arrived)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


class FaultyChannel(Channel):
    """A :class:`Channel` that injures message ``fault_at`` (see module
    docstring for the modes).  ``fault_at=None`` never faults, which
    lets a driver count a workload's boundaries first."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        fault_at: int | None = None,
        mode: str = "drop",
        on_fault: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__(sock)
        if mode not in FAULT_MODES:
            raise ValueError(
                f"fault mode must be one of {FAULT_MODES}, not {mode!r}"
            )
        self.fault_at = fault_at
        self.mode = mode
        self.on_fault = on_fault
        self.sends = 0
        self.faulted = False
        self._held: bytes | None = None

    def _send_bytes(self, data: bytes) -> None:
        if self.faulted:
            if self.mode == "stall":
                return  # the stream is frozen, not closed: bytes vanish
            raise ReplicationError(
                f"channel already faulted ({self.mode}); no further sends"
            )
        index = self.sends
        self.sends += 1
        if self._held is not None:
            # The reorder fault released us out of order: deliver the
            # current message first, then the held one.
            held, self._held = self._held, None
            super()._send_bytes(data)
            super()._send_bytes(held)
            return
        if self.fault_at is None or index != self.fault_at:
            super()._send_bytes(data)
            return
        self.faulted = True
        if self.on_fault is not None:
            self.on_fault(f"{self.mode}@{index}")
        if self.mode == "drop":
            self._abort()
            raise ReplicationError(f"injected connection drop at send {index}")
        if self.mode == "truncate":
            super()._send_bytes(data[: max(1, len(data) // 2)])
            self._abort()
            raise ReplicationError(f"injected truncated send {index}")
        if self.mode == "bitflip":
            corrupt = bytearray(data)
            corrupt[-1] ^= 0x40  # damage the payload, not the header
            super()._send_bytes(bytes(corrupt))
            # Deliverable damage: the sender does not know it misfired,
            # so the channel stays "up" until the peer drops it.
            self.faulted = False
            return
        if self.mode == "reorder":
            self.faulted = False
            self._held = data
        # stall: swallow the message and everything after it, keeping
        # the connection open — only timeouts can save the peer.

    def _abort(self) -> None:
        """Close hard (RST where the platform allows) — no FIN handshake."""
        try:
            # linger on, timeout 0: close() resets instead of draining
            self.sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:  # pragma: no cover - platform dependent
            pass
        self.close()
