"""The replication wire protocol: length-prefixed, checksummed messages.

One primary ships its durable WAL to any number of replicas over a
trivially verifiable stream.  Every message is one envelope::

    !II header:  <payload length> <crc32 of payload>
    payload:     one compact JSON object (UTF-8)

The CRC makes channel damage (bit flips, truncation by a dying proxy)
*structurally* detectable before JSON parsing is even attempted — the
same design choice as the framed WAL (:mod:`repro.storage.framing`),
applied one layer up.  A replica that sees a bad envelope raises
:class:`~repro.core.errors.ReplicationError`, quarantines the stream
(drops the connection) and re-handshakes from its last durable position;
it never guesses at a resynchronization point inside a damaged stream.

Message types
-------------
``hello``
    Replica → primary on connect: the replica's durable position
    (checkpoint ``generation`` plus ``index`` records replayed since),
    the CRC-32 of its live WAL prefix (so the primary can verify the
    replica really holds a prefix of *its* history, not a cousin's),
    the highest lease ``epoch`` it has ever synced from, and
    ``resync=True`` when the replica wants a full checkpoint ship
    regardless (set after divergence).
``welcome``
    Primary → replica: the primary's lease ``epoch`` and current
    position, plus ``resume`` — whether the replica's prefix verified
    and tailing continues from its position (otherwise a ``checkpoint``
    message follows and replay restarts from it).
``checkpoint``
    A full state ship: the checkpoint ``state`` dict and ``generation``.
    The replica replaces everything it has (WAL included) with this.
``records``
    A batch of verbatim framed WAL lines (each self-checksummed by the
    WAL framing) starting at ``from_index`` under ``generation``, plus
    the primary's post-batch position for lag accounting.  A replica
    applies a batch only when it lines up exactly with its own
    position — out-of-order delivery is a protocol violation, answered
    with quarantine + re-handshake, never reordered application.
``heartbeat``
    Primary → replica keep-alive carrying the primary's position and
    epoch; feeds the replica's staleness clock.
``error``
    Either side, before closing: a taxonomy ``code`` plus message
    (e.g. ``lease-lost`` from a fenced ex-primary).

Positions
---------
A :class:`Position` is ``(generation, index)``: the checkpoint
generation and the count of live WAL records applied on top of it.  It
is *durable* — derived purely from on-disk state, comparable across
processes — unlike the in-memory ``lattice.generation`` counter.  The
primary only ever ships bytes that are on disk in its own WAL, which is
what makes "the replica serves a committed prefix of the primary's
history" an invariant rather than an aspiration.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from ..core.errors import ReplicationError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "Position",
    "encode_message",
    "decode_payload",
    "HEADER",
]

PROTOCOL_VERSION = 1

#: Hard ceiling on one message's payload; a length field beyond this is
#: channel damage (or an incompatible peer), not a real message.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Envelope header: payload length + CRC-32, network byte order.
HEADER = struct.Struct("!II")


@dataclass(frozen=True, order=True)
class Position:
    """A durable replication position: checkpoint generation + records."""

    generation: int
    index: int

    def __str__(self) -> str:
        return f"{self.generation}:{self.index}"

    @classmethod
    def parse(cls, text: str) -> "Position":
        try:
            gen, _, idx = text.partition(":")
            position = cls(int(gen), int(idx))
        except ValueError as exc:
            raise ReplicationError(
                f"unparseable replication position {text!r}"
            ) from exc
        if position.generation < 0 or position.index < 0:
            raise ReplicationError(
                f"negative replication position {text!r}"
            )
        return position

    @property
    def zero(self) -> bool:
        return self.generation == 0 and self.index == 0


def encode_message(message: dict) -> bytes:
    """One wire envelope: header + JSON payload."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ReplicationError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte protocol ceiling"
        )
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return HEADER.pack(len(payload), crc) + payload


def decode_payload(payload: bytes, crc: int) -> dict:
    """Verify and parse one received payload."""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ReplicationError(
            f"message checksum mismatch (expected {crc:08x}); "
            f"the channel corrupted a frame"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReplicationError(
            f"checksummed message is not JSON: {exc}"
        ) from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ReplicationError(
            f"message is not a typed object: {message!r}"
        )
    return message
