"""The stable library facade: :class:`Objectbase`.

One import, one object, the whole evolution surface::

    from repro.api import Objectbase

    ob = Objectbase.open("schema.wal")        # durable (WAL-backed)
    ob = Objectbase.in_memory()               # or ephemeral

    ob.add_type("T_person", properties=["person.name"])
    ob.add_type("T_student", supertypes=["T_person"])
    ob.card("T_student").p                    # {'T_person'}

    with ob.batch():                          # atomic + one propagation pass
        ob.drop_supertype("T_ta", "T_student")
        ob.add_supertype("T_ta", "T_person")

    ob.migrate_to('''                         # or declare the target schema
        type T_person { ne person.name as name; }
        type T_student : T_person;
    ''')                                      # differ + lint gate + batch

Everything the scattered entry points offered (``core.operations``
command objects, ``storage.journal.DurableLattice``, the CLI's
plumbing) is reachable from here; the old entry points keep working but
new code should not need them.

Design notes
------------
* **One execution path.**  Every mutation — method call, raw
  :class:`~repro.core.operations.SchemaOperation` via :meth:`apply`,
  batch member, or :meth:`normalize` — funnels through the same journal
  (and WAL when durable), so history, undo, and replay see a complete
  record.
* **Batches are transactions.**  :meth:`batch` wraps
  :class:`~repro.core.transactions.SchemaTransaction`: all-or-nothing,
  verified against the nine axioms at commit.  Because operations only
  touch the designer terms ``Pe``/``Ne``, the lattice's incremental
  engine coalesces the whole batch into a single delta-propagation pass
  at the first derived-term access (commit-time verification or the
  caller's next query).
* **Queries are term cards.**  :meth:`card` returns every Table-1 term
  of one type (``Pe``/``Ne`` designer inputs, ``P``/``PL``/``N``/``H``/``I``
  derived) as one immutable snapshot.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .core.axioms import Violation, check_all
from .core.config import LatticePolicy
from .core.errors import LintRejectedError
from .core.history import EvolutionJournal, JournalEntry
from .core.impact import ImpactReport, analyze_impact
from .core.lattice import TypeLattice
from .core.normalize import NormalizationReport, normalization_operations
from .core.operations import (
    AddEssentialProperty,
    AddEssentialSupertype,
    AddType,
    DropEssentialProperty,
    DropEssentialSupertype,
    DropPropertyEverywhere,
    DropType,
    OperationResult,
    SchemaOperation,
)
from .core.properties import Property
from .core.soundness import SoundnessReport, verify
from .core.transactions import SchemaTransaction, TransactionError
from .ddl.differ import diff_schemas, schema_from
from .ddl.printer import print_schema
from .obs.metrics import REGISTRY
from .obs.tracing import trace
from .staticcheck.analyzer import AnalysisReport, analyze
from .staticcheck.plan import EvolutionPlan
from .staticcheck.registry import Severity
from .storage.faults import StorageFS
from .storage.framing import DurabilityPolicy, SalvageReport
from .storage.journal import DurableLattice
from .storage.reliability import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from .ddl.ast import SchemaDecl

__all__ = [
    "Objectbase",
    "TermCard",
    "MigrationResult",
    "DurabilityPolicy",
    "run_lint_gate",
    "MIGRATE_LINT_MODES",
]

logger = logging.getLogger(__name__)

_MIGRATIONS = REGISTRY.counter(
    "repro_ddl_migrations_total",
    "Declarative migrations through Objectbase.migrate_to, by outcome",
    labelnames=("outcome",),
)

#: Lint-gate thresholds accepted by :meth:`Objectbase.migrate_to`.
MIGRATE_LINT_MODES = ("off", "info", "warn", "error")


@dataclass(frozen=True)
class TermCard:
    """Every Table-1 term of one type, as an immutable snapshot."""

    name: str
    #: designer-managed terms
    pe: frozenset[str]
    ne: frozenset[Property]
    #: derived terms (Axioms 5-9)
    p: frozenset[str]
    pl: frozenset[str]
    n: frozenset[Property]
    h: frozenset[Property]
    i: frozenset[Property]

    def as_dict(self) -> dict:
        """JSON-friendly form (property semantics keys, sorted)."""
        return {
            "name": self.name,
            "Pe": sorted(self.pe),
            "Ne": sorted(pr.semantics for pr in self.ne),
            "P": sorted(self.p),
            "PL": sorted(self.pl),
            "N": sorted(pr.semantics for pr in self.n),
            "H": sorted(pr.semantics for pr in self.h),
            "I": sorted(pr.semantics for pr in self.i),
        }


@dataclass(frozen=True)
class MigrationResult:
    """Everything one :meth:`Objectbase.migrate_to` call decided and did.

    ``plan`` is the differ's delta (empty when the schemas already
    agreed), ``report`` the lint-gate analysis it passed, ``applied``
    whether the plan was executed (``False`` for dry runs and empty
    plans), and ``results`` the per-operation outcomes of the applying
    batch.
    """

    plan: EvolutionPlan
    report: AnalysisReport
    applied: bool
    results: tuple[OperationResult, ...] = ()

    @property
    def changed(self) -> bool:
        """Whether the objectbase was actually mutated."""
        return self.applied and len(self.plan) > 0

    def summary(self) -> str:
        verb = "applied" if self.applied else "planned"
        return (
            f"{verb} {len(self.plan)} operation(s); "
            f"lint: {self.report.summary()}"
        )


def _coerce_prop(p: Property | str, name: str = "") -> Property:
    return p if isinstance(p, Property) else Property(p, name)


_LINT_THRESHOLDS = {
    "info": Severity.INFO,
    "warn": Severity.WARNING,
    "error": Severity.ERROR,
}


def run_lint_gate(
    lattice: TypeLattice, plan: EvolutionPlan, lint: str
) -> AnalysisReport:
    """Analyze ``plan`` against ``lattice`` and veto at the threshold.

    The shared admission gate behind :meth:`Objectbase.migrate_to`, the
    ``repro schema migrate`` CLI, and the server's ``POST /v1/migrate``.
    Only *plan-scope* findings (``step is not None``) can veto: a
    pre-existing schema-state advisory must not block every migration.
    Raises :class:`~repro.core.errors.LintRejectedError` (the offending
    plan rides on its ``.plan`` attribute) when findings reach the
    ``lint`` threshold (``"off"``/``"info"``/``"warn"``/``"error"``).
    """
    if lint not in MIGRATE_LINT_MODES:
        raise ValueError(
            f"lint must be one of {MIGRATE_LINT_MODES}, not {lint!r}"
        )
    report = analyze(lattice, plan)
    if lint == "off":
        return report
    threshold = _LINT_THRESHOLDS[lint]
    offending = [
        d for d in report.diagnostics
        if d.step is not None and d.severity >= threshold
    ]
    if offending:
        exc = LintRejectedError(
            f"migration rejected by the lint gate (lint={lint}): "
            f"{len(offending)} finding(s) at or above {threshold}",
            [d.as_dict() for d in offending],
        )
        exc.plan = plan
        raise exc
    return report


class Objectbase:
    """The unified schema-evolution facade.

    Construct through :meth:`open` (durable, WAL-backed) or
    :meth:`in_memory` (ephemeral); wrapping an existing
    :class:`TypeLattice`, :class:`EvolutionJournal`, or
    :class:`DurableLattice` also works via the constructor.
    """

    def __init__(
        self,
        backend: TypeLattice | EvolutionJournal | DurableLattice | None = None,
        policy: LatticePolicy | None = None,
    ) -> None:
        if backend is None:
            backend = EvolutionJournal(policy=policy)
        elif isinstance(backend, TypeLattice):
            backend = EvolutionJournal(lattice=backend)
        # EvolutionJournal and DurableLattice share the execution protocol
        # SchemaTransaction relies on: apply / undo / __len__ / .lattice.
        self._journal = backend
        self._txn: SchemaTransaction | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        policy: LatticePolicy | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        retry: RetryPolicy | None = None,
        fs: StorageFS | None = None,
    ) -> "Objectbase":
        """Open (or create) a durable objectbase backed by a WAL file.

        ``path`` is a filesystem path or a backend URL: a bare path (or
        ``file:PATH``) selects the plain-file backend, ``sqlite:DBFILE``
        stores frames and checkpoints as rows in one SQLite database,
        and ``objstore:ROOT`` uses a content-addressed object store with
        an atomically swapped manifest (see ``docs/storage.md``).  All
        backends satisfy the same crash-consistency contract; the
        conformance suite runs verbatim against each.

        Recovery replays the journal in batch mode: the first query after
        opening pays one derivation pass, regardless of the plan length.

        ``durability`` selects the fsync and auto-checkpoint policy
        (:class:`~repro.storage.framing.DurabilityPolicy`); ``recovery``
        chooses how on-disk damage is met — ``"strict"`` raises a typed
        :class:`~repro.core.errors.CorruptRecordError`, ``"salvage"``
        truncates to the last valid record and quarantines the rest (see
        ``docs/durability.md``).  :attr:`recovery_report` records the
        outcome.  ``retry`` governs how transient storage faults on the
        WAL append path are absorbed
        (:class:`~repro.storage.reliability.RetryPolicy`); when the
        budget is exhausted the store latches read-only (see
        :attr:`degraded`).  ``fs`` swaps the filesystem seam (fault
        injection in tests).
        """
        return cls(
            DurableLattice(
                path, policy, durability=durability, recovery=recovery,
                retry=retry, fs=fs,
            )
        )

    @classmethod
    def in_memory(cls, policy: LatticePolicy | None = None) -> "Objectbase":
        """A fresh, non-durable objectbase (TIGUKAT policy by default)."""
        return cls(policy=policy)

    # -- introspection --------------------------------------------------

    @property
    def lattice(self) -> TypeLattice:
        """The underlying type lattice (read it freely; mutate via ops)."""
        return self._journal.lattice

    @property
    def durable(self) -> bool:
        return isinstance(self._journal, DurableLattice)

    @property
    def degraded(self) -> bool:
        """Whether the store is latched read-only after storage failure.

        Always ``False`` for in-memory objectbases.  While ``True``,
        every mutation raises a typed
        :class:`~repro.core.errors.DegradedModeError`; reads keep
        serving the last consistent state.  ``repro recover`` (or
        reopening) restores service.
        """
        return bool(getattr(self._journal, "degraded", False))

    @property
    def recovery_report(self) -> SalvageReport | None:
        """What opening recovered/salvaged (durable objectbases only)."""
        return getattr(self._journal, "recovery_report", None)

    def types(self) -> frozenset[str]:
        return self.lattice.types()

    def __contains__(self, name: str) -> bool:
        return name in self.lattice

    def __len__(self) -> int:
        return len(self.lattice)

    def card(self, name: str) -> TermCard:
        """All Table-1 terms of ``name`` in one snapshot."""
        lat = self.lattice
        return TermCard(
            name=name,
            pe=lat.pe(name),
            ne=lat.ne(name),
            p=lat.p(name),
            pl=lat.pl(name),
            n=lat.n(name),
            h=lat.h(name),
            i=lat.interface(name),
        )

    def cards(self) -> Iterator[TermCard]:
        """Term cards for every type, in name order."""
        for t in sorted(self.types()):
            yield self.card(t)

    # -- the eight evolution operations ---------------------------------

    def apply(self, operation: SchemaOperation) -> OperationResult:
        """Apply a raw operation object (routes through an active batch).

        Produces one ``apply`` trace span (a child of the ``batch`` span
        when inside :meth:`batch`) carrying the operation code and the
        counter deltas the operation caused.
        """
        with trace.span("apply", op=operation.code) as span:
            if self._txn is not None:
                result = self._txn.apply(operation)
            else:
                result = self._journal.apply(operation)
            span.set_attr("changed", result.changed)
            return result

    def add_type(
        self,
        name: str,
        supertypes: Iterable[str] = (),
        properties: Iterable[Property | str] = (),
    ) -> OperationResult:
        """AT: create a type with essential supertypes/properties."""
        return self.apply(AddType(
            name,
            tuple(supertypes),
            tuple(_coerce_prop(p) for p in properties),
        ))

    def drop_type(self, name: str) -> OperationResult:
        """DT: drop a type; it leaves every ``Pe`` that listed it."""
        return self.apply(DropType(name))

    def add_supertype(self, subtype: str, supertype: str) -> OperationResult:
        """MT-ASR: add an essential supertype."""
        return self.apply(AddEssentialSupertype(subtype, supertype))

    def drop_supertype(self, subtype: str, supertype: str) -> OperationResult:
        """MT-DSR: drop an essential supertype."""
        return self.apply(DropEssentialSupertype(subtype, supertype))

    def add_property(
        self, type_name: str, p: Property | str, display_name: str = ""
    ) -> OperationResult:
        """MT-AB: add an essential property (semantics key or Property)."""
        return self.apply(
            AddEssentialProperty(type_name, _coerce_prop(p, display_name))
        )

    def drop_property(
        self, type_name: str, p: Property | str
    ) -> OperationResult:
        """MT-DB: drop an essential property from one type."""
        return self.apply(DropEssentialProperty(type_name, _coerce_prop(p)))

    def drop_property_everywhere(self, p: Property | str) -> OperationResult:
        """DB: drop a property from every ``Ne`` that lists it."""
        return self.apply(DropPropertyEverywhere(_coerce_prop(p)))

    # -- batched transactions -------------------------------------------

    @contextmanager
    def batch(
        self, verify_on_commit: bool = True
    ) -> Iterator[SchemaTransaction]:
        """Group operations atomically, with one propagation pass.

        All facade mutations inside the ``with`` block join the
        transaction: either every operation commits (verified against the
        nine axioms by default) or the whole group rolls back through the
        recorded inverses.  Invalidation is coalesced — the entire batch
        costs a single incremental derivation pass.
        """
        if self._txn is not None:
            raise TransactionError("a batch is already active")
        txn = SchemaTransaction(self._journal, verify_on_commit=verify_on_commit)
        self._txn = txn
        try:
            with trace.span("batch", verify=verify_on_commit) as span:
                with txn:
                    yield txn
                span.set_attr("operations", len(txn))
        finally:
            self._txn = None

    # -- checks, analysis, maintenance ----------------------------------

    def check(self) -> list[Violation]:
        """Check the nine axioms; an empty list means the schema is sound."""
        return check_all(self.lattice)

    def verify(self) -> SoundnessReport:
        """Run the soundness/completeness oracle (Theorems 2.1/2.2)."""
        return verify(self.lattice)

    def impact(self, operation: SchemaOperation) -> ImpactReport:
        """Dry-run ``operation``; never mutates the objectbase."""
        return analyze_impact(self.lattice, operation)

    def normalize(self) -> NormalizationReport:
        """Rewrite ``Pe``/``Ne`` to the minimal declarations, journaled.

        The rewrite is expressed as ordinary MT-DSR/MT-DB operations and
        executed through the journal (and the WAL when durable), so
        normalization is replayable, undoable, and visible in
        :meth:`history` — and its invalidations coalesce like any batch.
        Normalization preserves the derived lattice by construction, so
        the batch skips commit-time re-verification.
        """
        with trace.span("normalize") as span:
            ops = normalization_operations(self.lattice)
            dropped_supers = sum(
                1 for op in ops if isinstance(op, DropEssentialSupertype)
            )
            dropped_props = len(ops) - dropped_supers
            if ops:
                if self._txn is not None:
                    for op in ops:
                        self._txn.apply(op)
                else:
                    with self.batch(verify_on_commit=False) as txn:
                        txn.apply_all(ops)
            span.set_attr("operations", len(ops))
            logger.debug(
                "normalize dropped %d supertype and %d property "
                "declaration(s)", dropped_supers, dropped_props,
            )
            return NormalizationReport(dropped_supers, dropped_props)

    # -- declarative schema (DDL) ---------------------------------------

    def schema_ddl(self, name: str = "") -> str:
        """The live schema as canonical DDL text (see ``docs/ddl.md``).

        Round-trip stable: migrating to this text is always a no-op, and
        the output is byte-identical for equal schemas regardless of the
        operation history that produced them.
        """
        return print_schema(schema_from(self, name=name))

    def schema_decl(self, name: str = "") -> "SchemaDecl":
        """The live schema as a :class:`~repro.ddl.ast.SchemaDecl`."""
        return schema_from(self, name=name)

    def diff_to(
        self, target: "SchemaDecl | str", *, name: str = ""
    ) -> EvolutionPlan:
        """The minimal plan evolving this objectbase to ``target``.

        ``target`` is DDL text or a parsed
        :class:`~repro.ddl.ast.SchemaDecl`.  Nothing is applied — feed
        the plan to :meth:`migrate_to`, ``repro lint``, or
        :meth:`~repro.staticcheck.plan.EvolutionPlan.save`.  An empty
        plan means the schemas already agree.
        """
        return diff_schemas(self, target, name=name)

    def migrate_to(
        self,
        target: "SchemaDecl | str",
        *,
        dry_run: bool = False,
        verify_on_commit: bool = True,
        lint: str = "error",
        gate: "Callable[[TypeLattice, EvolutionPlan], None] | None" = None,
    ) -> MigrationResult:
        """Evolve the schema to match a declared target (diff + apply).

        The declarative top of the API: diff the live schema against
        ``target`` (DDL text or a parsed schema), run the resulting plan
        through the staticcheck lint gate, and apply it as one verified
        batch.  Idempotent — migrating twice to the same target is a
        no-op the second time.

        ``lint`` sets the gate threshold (``"off"``, ``"info"``,
        ``"warn"``, ``"error"``): plan findings at or above it raise
        :class:`~repro.core.errors.LintRejectedError` without touching
        the objectbase.  ``dry_run=True`` stops after diff + lint and
        returns the unapplied plan.  ``verify_on_commit`` is passed to
        the applying :meth:`batch`.  ``gate``, if given, receives the
        live lattice and the computed plan after the lint gate passed
        and before anything is mutated; raising from it aborts the
        migration (the server's interference check rides on this).
        """
        with trace.span("migrate", dry_run=dry_run, lint=lint) as span:
            plan = self.diff_to(target)
            span.set_attr("operations", len(plan))
            try:
                report = run_lint_gate(self.lattice, plan, lint)
            except LintRejectedError:
                _MIGRATIONS.labels(outcome="lint-rejected").inc()
                raise
            if gate is not None and not dry_run:
                gate(self.lattice, plan)
            if dry_run or not plan.operations:
                outcome = "dry-run" if dry_run else "noop"
                _MIGRATIONS.labels(outcome=outcome).inc()
                return MigrationResult(plan, report, applied=False)
            with self.batch(verify_on_commit=verify_on_commit) as txn:
                results = txn.apply_all(plan.operations)
            _MIGRATIONS.labels(outcome="applied").inc()
            return MigrationResult(
                plan, report, applied=True, results=tuple(results)
            )

    # -- history and durability -----------------------------------------

    def history(self) -> tuple[JournalEntry, ...]:
        """The journaled operations (since the last checkpoint, when
        durable)."""
        return self._journal.journal.entries if self.durable \
            else self._journal.entries

    def undo(self) -> JournalEntry:
        """Revert the most recent operation via its recorded inverse."""
        if self._txn is not None:
            raise TransactionError("cannot undo inside a batch")
        with trace.span("undo") as span:
            entry = self._journal.undo()
            span.set_attr("op", entry.operation.code)
            return entry

    def checkpoint(self) -> None:
        """Fold the WAL into a snapshot (durable objectbases only)."""
        if not self.durable:
            raise TransactionError(
                "checkpoint requires a durable objectbase (use Objectbase.open)"
            )
        self._journal.checkpoint()

    def sync(self) -> None:
        """Force WAL records to stable storage (durable objectbases only).

        The explicit commit point under ``DurabilityPolicy(fsync="batch")``
        — a no-op risk window closer; with ``fsync="always"`` every apply
        already synced.
        """
        if not self.durable:
            raise TransactionError(
                "sync requires a durable objectbase (use Objectbase.open)"
            )
        self._journal.sync()

    def storage_gc(self) -> int:
        """Sweep storage-backend garbage (orphan object-store segments,
        stale temp residue); returns the number of objects removed.

        Only for a process that owns the store exclusively — the fenced
        primary after acquiring its lease, or ``repro recover``.  A
        read-only opener (a replica, a failover candidate) must never
        call this: garbage is judged against the manifest this process
        can see, and another writer's in-flight publish looks exactly
        like garbage.  In-memory objectbases (and backends with no
        substrate garbage) report zero.
        """
        collect = getattr(self._journal, "gc", None)
        return collect() if callable(collect) else 0

    def __repr__(self) -> str:
        kind = "durable" if self.durable else "in-memory"
        return f"Objectbase({kind}, |T|={len(self.lattice)})"
