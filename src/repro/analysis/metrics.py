"""Structural metrics of a lattice (reported alongside every benchmark)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lattice import TypeLattice
from ..core.minimality import essential_edge_count, minimal_edge_count

__all__ = ["LatticeMetrics", "lattice_metrics"]


@dataclass(frozen=True)
class LatticeMetrics:
    """Summary statistics of one lattice."""

    n_types: int
    essential_edges: int
    minimal_edges: int
    max_depth: int
    mean_fan_in: float
    n_properties: int
    mean_interface: float

    @property
    def edge_reduction(self) -> float:
        """Fraction of essential edges the minimal view prunes — the
        Section 5 display-economy number."""
        if self.essential_edges == 0:
            return 0.0
        return 1.0 - self.minimal_edges / self.essential_edges

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("|T|", str(self.n_types)),
            ("Σ|Pe(t)| (essential edges)", str(self.essential_edges)),
            ("Σ|P(t)| (minimal edges)", str(self.minimal_edges)),
            ("edge reduction", f"{self.edge_reduction:.0%}"),
            ("max depth", str(self.max_depth)),
            ("mean fan-in", f"{self.mean_fan_in:.2f}"),
            ("|properties|", str(self.n_properties)),
            ("mean |I(t)|", f"{self.mean_interface:.2f}"),
        ]


def lattice_metrics(lattice: TypeLattice) -> LatticeMetrics:
    types = lattice.types()
    n = len(types)
    depths = {t: len(lattice.pl(t)) - 1 for t in types}
    fan_ins = [len(lattice.p(t)) for t in types]
    interfaces = [len(lattice.interface(t)) for t in types]
    return LatticeMetrics(
        n_types=n,
        essential_edges=essential_edge_count(lattice),
        minimal_edges=minimal_edge_count(lattice),
        max_depth=max(depths.values(), default=0),
        mean_fan_in=sum(fan_ins) / n if n else 0.0,
        n_properties=len(lattice.universe),
        mean_interface=sum(interfaces) / n if n else 0.0,
    )
