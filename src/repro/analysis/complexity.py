"""The deferred complexity study (paper Section 6).

"Also of interest is a formal complexity analysis of our implementation
techniques, which will provide the theoretical evidence of performance."

Measured here empirically: full vs. incremental axiom recomputation as
the lattice grows, the cost of each axiom check, and the minimal-vs-full
conflict scan of Section 5.  All timings use ``perf_counter`` over
repeated runs; the shapes (full recompute grows with |T|, incremental
with the affected downset; minimal scan touches |P(t)|+1 interfaces vs.
|PL(t)|) are what the benchmark harness reports.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..core.axioms import ALL_AXIOMS
from ..core.derivation import derive
from ..core.lattice import TypeLattice
from ..core.properties import prop
from ..orion.conflict import (
    find_name_conflicts_full,
    find_name_conflicts_minimal,
)
from .workload import LatticeSpec, random_lattice

__all__ = [
    "ScalingRow",
    "measure_derivation_scaling",
    "measure_axiom_costs",
    "ConflictScanRow",
    "measure_conflict_scan",
    "CrossoverRow",
    "measure_propagation_crossover",
]


def _time(fn, repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    samples = []
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


@dataclass(frozen=True)
class ScalingRow:
    n_types: int
    full_seconds: float
    incremental_seconds: float

    @property
    def speedup(self) -> float:
        if self.incremental_seconds == 0:
            return float("inf")
        return self.full_seconds / self.incremental_seconds


def measure_derivation_scaling(
    sizes: tuple[int, ...] = (10, 50, 100, 250, 500),
    seed: int = 3,
    repeats: int = 3,
) -> list[ScalingRow]:
    """Full re-derivation vs. incremental recompute of one leaf change."""
    rows: list[ScalingRow] = []
    for n in sizes:
        lattice = random_lattice(LatticeSpec(n_types=n, seed=seed))
        pe, ne = lattice._pe_view(), lattice._ne_view()
        full = _time(lambda: derive(pe, ne), repeats)

        # Incremental: flip one essential property on a leaf-ish type.
        leaf = max(
            (t for t in lattice.types()
             if t not in (lattice.root, lattice.base)),
            key=lambda t: len(lattice.pl(t)),
        )
        flip = prop(f"{leaf}.flip")

        def one_change() -> None:
            lattice.add_essential_property(leaf, flip)
            lattice.derivation  # trigger the incremental recompute
            lattice.drop_essential_property(leaf, flip)
            lattice.derivation

        lattice.derivation  # warm cache
        incremental = _time(one_change, repeats) / 2  # two recomputes
        rows.append(ScalingRow(n, full, incremental))
    return rows


def measure_axiom_costs(
    n_types: int = 200, seed: int = 5, repeats: int = 3
) -> list[tuple[str, float]]:
    """Median check time of each of the nine axioms on one lattice."""
    lattice = random_lattice(LatticeSpec(n_types=n_types, seed=seed))
    lattice.derivation  # the checks should not pay derivation cost
    out: list[tuple[str, float]] = []
    for axiom in ALL_AXIOMS:
        out.append((axiom.name, _time(lambda a=axiom: a.check(lattice), repeats)))
    return out


@dataclass(frozen=True)
class ConflictScanRow:
    type_name: str
    p_size: int
    pl_size: int
    minimal_seconds: float
    full_seconds: float
    agree: bool


def measure_conflict_scan(
    lattice: TypeLattice | None = None,
    n_types: int = 150,
    seed: int = 11,
    repeats: int = 3,
    sample: int = 10,
) -> list[ConflictScanRow]:
    """Section 5's minimality payoff: conflict detection through ``P(t)``
    vs. the naive full-``PL(t)`` scan, on the deepest types."""
    if lattice is None:
        lattice = random_lattice(
            LatticeSpec(n_types=n_types, seed=seed, properties_per_type=3,
                        n_property_names=6)
        )
    deepest = sorted(
        (t for t in lattice.types() if t != lattice.base),
        key=lambda t: len(lattice.pl(t)),
        reverse=True,
    )[:sample]
    rows: list[ConflictScanRow] = []
    for t in deepest:
        minimal = find_name_conflicts_minimal(lattice, t)
        full = find_name_conflicts_full(lattice, t)
        rows.append(
            ConflictScanRow(
                type_name=t,
                p_size=len(lattice.p(t)),
                pl_size=len(lattice.pl(t)),
                minimal_seconds=_time(
                    lambda t=t: find_name_conflicts_minimal(lattice, t),
                    repeats,
                ),
                full_seconds=_time(
                    lambda t=t: find_name_conflicts_full(lattice, t), repeats
                ),
                agree=minimal == full,
            )
        )
    return rows


@dataclass(frozen=True)
class CrossoverRow:
    """Total propagation cost at one access ratio, both strategies."""

    access_ratio: float
    conversion_seconds: float
    screening_seconds: float

    @property
    def winner(self) -> str:
        if self.conversion_seconds < self.screening_seconds:
            return "conversion"
        return "screening"


def measure_propagation_crossover(
    n_instances: int = 2000,
    access_ratios: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
    repeats: int = 3,
) -> list[CrossoverRow]:
    """Where eager conversion overtakes lazy screening.

    Total cost = change-time work + the reads that actually happen.
    Screening wins when few instances are ever touched again; conversion
    wins as the touched fraction approaches everything (it coerces each
    instance once, with no per-read version check).  The crossover point
    is the series' shape target.
    """
    from ..tigukat.evolution import SchemaManager
    from ..tigukat.store import Objectbase

    def one_run(strategy_cls, ratio: float) -> float:
        store = Objectbase()
        mgr = SchemaManager(store)
        store.define_stored_behavior("c.keep", "keep")
        store.define_stored_behavior("c.drop", "drop")
        mgr.at("T_item", behaviors=("c.keep", "c.drop"), with_class=True)
        objs = [
            store.create_object("T_item", keep=i, drop=i)
            for i in range(n_instances)
        ]
        strategy = strategy_cls(store)
        touched = objs[: int(n_instances * ratio)]

        start = time.perf_counter()
        mgr.mt_db("T_item", "c.drop")
        strategy.on_schema_change(frozenset({"T_item"}))
        for obj in touched:
            strategy.read_slot(obj, "c.keep")
        return time.perf_counter() - start

    from ..propagation.conversion import ConversionStrategy as Conv
    from ..propagation.screening import ScreeningStrategy as Scr

    rows: list[CrossoverRow] = []
    for ratio in access_ratios:
        conv = statistics.median(
            one_run(Conv, ratio) for __ in range(repeats)
        )
        scr = statistics.median(
            one_run(Scr, ratio) for __ in range(repeats)
        )
        rows.append(CrossoverRow(ratio, conv, scr))
    return rows
