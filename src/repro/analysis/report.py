"""One-command reproduction report.

``python -m repro.analysis.report [output-dir]`` regenerates every paper
artifact (Tables 1-3, Figures 1-2, the Section 4 reduction evidence, the
Section 5 experiments, and the deferred complexity study) without going
through pytest, and writes an index ``REPORT.md`` linking artifact →
paper claim → observed result.

The benchmark harness (`pytest benchmarks/ --benchmark-only`) produces
the same artifacts plus timings; this runner is the minimal path for a
reader who just wants the tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..core import build_figure1_lattice, check_all, verify
from ..orion import (
    check_equivalent,
    reverse_reduction_counterexample,
)
from ..tigukat import Objectbase
from ..viz import (
    format_table,
    render_lattice,
    render_table1,
    render_table2,
    render_table3,
    render_type_card,
)
from .compare import run_order_experiment
from .complexity import (
    measure_derivation_scaling,
    measure_propagation_crossover,
)
from .workload import LatticeSpec, random_orion_pair

__all__ = ["generate_report", "main"]


def generate_report(output_dir: str | Path) -> Path:
    """Write every artifact plus the REPORT.md index; returns the index
    path."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    index: list[tuple[str, str, str]] = []  # (artifact, claim, observed)

    def emit(name: str, text: str, claim: str, observed: str) -> None:
        (out / name).write_text(text + "\n")
        index.append((name, claim, observed))

    # Tables 1-2 on Figure 1.
    fig1 = build_figure1_lattice()
    emit("table1_notation.txt", render_table1(fig1, "T_employee"),
         "Table 1 notation", "all terms instantiated on Figure 1")
    violations = check_all(fig1)
    emit("table2_axioms.txt", render_table2(fig1),
         "Table 2: nine axioms hold on Figure 1",
         "0 violations" if not violations else f"{len(violations)} violations")
    emit("table3_classification.txt", render_table3(),
         "Table 3 classification (bold = schema evolution)",
         "13 bold / 8 emphasized codes")

    # Figures.
    emit("figure1_lattice.txt",
         render_lattice(fig1) + "\n\n" + render_type_card(
             fig1, "T_teachingAssistant"),
         "Figure 1 + worked example terms",
         f"P(TA) = {sorted(fig1.p('T_teachingAssistant'))}")
    store = Objectbase()
    emit("figure2_primitive.txt", render_lattice(store.lattice),
         "Figure 2 primitive type system",
         f"{len(store.lattice)} types; axioms "
         f"{'hold' if not check_all(store.lattice) else 'FAIL'}")

    # Section 2: soundness/completeness.
    report = verify(fig1)
    emit("soundness.txt", str(report),
         "Theorems 2.1/2.2 (oracle comparison)",
         "sound and complete" if report.ok else "FAILED")

    # Section 4: reduction evidence.
    native, reduced = random_orion_pair(LatticeSpec(n_types=40, seed=9))
    equivalence = check_equivalent(native.db, reduced)
    cx = reverse_reduction_counterexample()
    emit(
        "orion_reduction.txt",
        f"equivalence after 40-class random build: {equivalence.equivalent}\n"
        f"reverse counterexample diverged: {cx['diverged']} "
        f"(P(A)={sorted(cx['p_A_after'])}, P(B)={sorted(cx['p_B_after'])})",
        "Section 4: Orion ⇒ axioms holds; axioms ⇒ Orion fails",
        f"equivalent={equivalence.equivalent}, "
        f"counterexample diverged={cx['diverged']}",
    )

    # Section 5: order experiment.
    order = run_order_experiment(n_trials=30, n_drops=5, n_orders=10)
    emit(
        "order_independence.txt",
        format_table(["summary", "value"], order.summary_rows()),
        "Section 5: TIGUKAT drop-order independent, Orion not",
        f"TIGUKAT {order.tigukat_divergence_rate:.0%} vs "
        f"Orion {order.orion_divergence_rate:.0%} divergent trials",
    )

    # Section 6: deferred complexity study.
    scaling = measure_derivation_scaling(sizes=(10, 100, 500), repeats=3)
    emit(
        "complexity_scaling.txt",
        format_table(
            ["|T|", "full (ms)", "incremental (ms)", "speedup"],
            [
                (str(r.n_types), f"{r.full_seconds * 1e3:.3f}",
                 f"{r.incremental_seconds * 1e3:.3f}",
                 f"{r.speedup:.1f}x")
                for r in scaling
            ],
        ),
        "Section 6 deferred study: incremental beats full recompute",
        f"speedup at |T|=502: {scaling[-1].speedup:.1f}x",
    )
    crossover = measure_propagation_crossover(
        n_instances=800, access_ratios=(0.0, 0.5, 1.0), repeats=2
    )
    emit(
        "propagation_crossover.txt",
        format_table(
            ["access ratio", "conversion (ms)", "screening (ms)"],
            [
                (f"{r.access_ratio:.2f}",
                 f"{r.conversion_seconds * 1e3:.2f}",
                 f"{r.screening_seconds * 1e3:.2f}")
                for r in crossover
            ],
        ),
        "propagation trade-off: lazy wins at low access ratios",
        f"gap shrinks from "
        f"{crossover[0].conversion_seconds / max(crossover[0].screening_seconds, 1e-9):.0f}x "
        f"to "
        f"{crossover[-1].conversion_seconds / max(crossover[-1].screening_seconds, 1e-9):.1f}x",
    )

    lines = [
        "# Reproduction report",
        "",
        "| artifact | paper claim | observed |",
        "|---|---|---|",
    ]
    for name, claim, observed in index:
        lines.append(f"| [`{name}`]({name}) | {claim} | {observed} |")
    index_path = out / "REPORT.md"
    index_path.write_text("\n".join(lines) + "\n")
    return index_path


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    target = args[0] if args else "report_output"
    index = generate_report(target)
    print(f"report written to {index}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
