"""The Section 5 order-(in)dependence experiment.

"Dropping a series of edges in Orion can produce a different lattice
depending on the order in which the edges are dropped.  In TIGUKAT, the
ordering is irrelevant and the same lattice is produced no matter the
order in which they are dropped."

:func:`run_order_experiment` makes the claim quantitative: over many
random schemas and random drop sets, apply the *same* set of edge drops
in several different orders to (a) a native Orion database via OP4 and
(b) a TIGUKAT-policy axiomatic lattice via MT-DSR, and count how many
trials end in more than one distinct final lattice.  The expected shape:
TIGUKAT diverges in **zero** trials; Orion diverges in a substantial
fraction (any trial whose drop set touches a "last superclass" rewire).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..core.errors import SchemaError
from ..core.lattice import TypeLattice
from ..orion.model import OrionDatabase
from ..orion.operations import OrionOps
from .workload import LatticeSpec, droppable_edges, random_lattice, random_orion_pair

__all__ = ["TrialResult", "OrderExperimentResult", "run_order_experiment"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one random schema + drop set."""

    trial: int
    n_drops: int
    orders_tried: int
    orion_distinct: int     # distinct final Orion lattices
    tigukat_distinct: int   # distinct final TIGUKAT lattices (expect 1)

    @property
    def orion_diverged(self) -> bool:
        return self.orion_distinct > 1

    @property
    def tigukat_diverged(self) -> bool:
        return self.tigukat_distinct > 1


@dataclass
class OrderExperimentResult:
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def orion_divergence_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.orion_diverged for t in self.trials) / len(self.trials)

    @property
    def tigukat_divergence_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.tigukat_diverged for t in self.trials) / len(self.trials)

    def summary_rows(self) -> list[tuple[str, str]]:
        return [
            ("trials", str(len(self.trials))),
            ("Orion trials with order-dependent result",
             f"{sum(t.orion_diverged for t in self.trials)} "
             f"({self.orion_divergence_rate:.0%})"),
            ("TIGUKAT trials with order-dependent result",
             f"{sum(t.tigukat_diverged for t in self.trials)} "
             f"({self.tigukat_divergence_rate:.0%})"),
        ]


def _orion_final_state(db: OrionDatabase, drops: list[tuple[str, str]]) -> tuple:
    """Apply OP4 drops in the given order on a copy; rejected or
    already-gone edges are skipped (they are part of the order effects)."""
    ops = OrionOps(db.copy())
    for c, s in drops:
        if c not in ops.db:
            continue
        if s not in ops.db.get(c).superclasses:
            continue
        try:
            ops.op4(c, s)
        except SchemaError:
            continue
    return ops.db.fingerprint()


def _tigukat_final_state(
    lattice: TypeLattice, drops: list[tuple[str, str]]
) -> tuple:
    """Apply MT-DSR drops in the given order on a copy; same skipping."""
    lat = lattice.copy()
    for t, s in drops:
        if t not in lat or s not in lat:
            continue
        try:
            lat.drop_essential_supertype(t, s)
        except SchemaError:
            continue
    return lat.derived_fingerprint()


def _sample_orders(
    drops: list[tuple[str, str]], n_orders: int, rng: random.Random
) -> list[list[tuple[str, str]]]:
    """Up to ``n_orders`` distinct permutations (exhaustive when small)."""
    if len(drops) <= 4:
        perms = list(itertools.permutations(drops))
        rng.shuffle(perms)
        return [list(p) for p in perms[:n_orders]]
    seen: set[tuple] = set()
    orders: list[list[tuple[str, str]]] = []
    while len(orders) < n_orders:
        perm = drops[:]
        rng.shuffle(perm)
        key = tuple(perm)
        if key not in seen:
            seen.add(key)
            orders.append(perm)
    return orders


def run_order_experiment(
    n_trials: int = 20,
    n_drops: int = 4,
    n_orders: int = 8,
    spec: LatticeSpec | None = None,
    seed: int = 7,
) -> OrderExperimentResult:
    """The full experiment; see the module docstring for the design."""
    base_spec = spec if spec is not None else LatticeSpec(n_types=16)
    rng = random.Random(seed)
    result = OrderExperimentResult()
    for trial in range(n_trials):
        trial_spec = LatticeSpec(
            n_types=base_spec.n_types,
            max_supertypes=base_spec.max_supertypes,
            n_property_names=base_spec.n_property_names,
            properties_per_type=base_spec.properties_per_type,
            extra_essential_prob=base_spec.extra_essential_prob,
            seed=seed * 1000 + trial,
        )
        native, __ = random_orion_pair(trial_spec)
        drops = droppable_edges(native, n_drops, seed=trial_spec.seed + 1)
        if not drops:
            continue
        orders = _sample_orders(drops, n_orders, rng)

        orion_outcomes = {
            _orion_final_state(native.db, order) for order in orders
        }

        lattice = random_lattice(trial_spec)
        lattice_edges = _matching_lattice_drops(lattice, len(drops), trial_spec.seed)
        tig_outcomes = {
            _tigukat_final_state(lattice, order)
            for order in _sample_orders(lattice_edges, n_orders, rng)
        } if lattice_edges else {()}

        result.trials.append(
            TrialResult(
                trial=trial,
                n_drops=len(drops),
                orders_tried=len(orders),
                orion_distinct=len(orion_outcomes),
                tigukat_distinct=len(tig_outcomes),
            )
        )
    return result


def _matching_lattice_drops(
    lattice: TypeLattice, limit: int, seed: int
) -> list[tuple[str, str]]:
    """A random sample of droppable essential-supertype pairs (never the
    root link, which MT-DSR rejects; never the base's)."""
    rng = random.Random(seed)
    edges = [
        (t, s)
        for t in sorted(lattice.types())
        if t not in (lattice.root, lattice.base)
        for s in sorted(lattice.pe(t))
        if s != lattice.root
    ]
    rng.shuffle(edges)
    return edges[:limit]
