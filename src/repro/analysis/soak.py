"""Soak harness: long randomized full-stack evolution sessions.

Dynamic schema evolution is "the management of schema changes while the
system is in operation" — so the harness interleaves schema operations
(the Table 3 bold set), instance operations (the emphasized set), and
change propagation over one live objectbase, for thousands of steps,
while checking after every step that

* the nine axioms hold on the lattice,
* the Definition 3.1 subset invariants hold on the schema sets,
* class membership is consistent, and
* behavior application never crashes on conformant receivers.

Deterministic in its seed; used by the stress tests and the longevity
benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.axioms import check_all
from ..core.errors import SchemaError
from ..propagation.base import stranded_slots
from ..propagation.invariants import check_membership
from ..propagation.screening import ScreeningStrategy
from ..tigukat.evolution import SchemaManager
from ..tigukat.schema import schema_sets
from ..tigukat.store import Objectbase

__all__ = ["SoakReport", "SoakSession"]


@dataclass
class SoakReport:
    """Outcome statistics of one soak session."""

    steps: int = 0
    accepted: dict[str, int] = field(default_factory=dict)
    rejected: dict[str, int] = field(default_factory=dict)
    invariant_failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.invariant_failures

    def total_accepted(self) -> int:
        return sum(self.accepted.values())

    def summary_rows(self) -> list[tuple[str, str]]:
        return [
            ("steps", str(self.steps)),
            ("accepted operations", str(self.total_accepted())),
            ("rejected operations", str(sum(self.rejected.values()))),
            ("invariant failures", str(len(self.invariant_failures))),
        ]


class SoakSession:
    """One deterministic randomized session over a fresh objectbase."""

    OPS = (
        "at", "dt", "asr", "dsr", "ab", "db_type",
        "ac", "dc", "ao", "mo", "do",
    )
    WEIGHTS = (8, 3, 10, 8, 10, 5, 4, 2, 20, 22, 8)

    def __init__(self, seed: int = 0, check_every: int = 1) -> None:
        self.rng = random.Random(seed)
        self.store = Objectbase()
        self.manager = SchemaManager(self.store)
        self.screening = ScreeningStrategy(self.store)
        self.check_every = max(1, check_every)
        self._type_counter = 0
        self._behavior_counter = 0
        self.report = SoakReport()

    # -- vocabulary helpers ---------------------------------------------------

    def _app_types(self) -> list[str]:
        return sorted(
            t for t in self.store.lattice.types()
            if not self.store.lattice.is_frozen(t)
        )

    def _behaviors(self) -> list[str]:
        return sorted(
            b.semantics for b in self.store.behaviors()
            if not b.semantics.startswith("type.")
        )

    def _instances(self) -> list:
        out = []
        for cls in self.store.classes():
            out.extend(cls.members())
        return sorted(out)

    # -- one step ----------------------------------------------------------------

    def step(self) -> None:
        op = self.rng.choices(self.OPS, weights=self.WEIGHTS)[0]
        try:
            self._execute(op)
            self.report.accepted[op] = self.report.accepted.get(op, 0) + 1
        except SchemaError:
            self.report.rejected[op] = self.report.rejected.get(op, 0) + 1
        self.report.steps += 1
        if self.report.steps % self.check_every == 0:
            self._check_invariants()

    def _execute(self, op: str) -> None:
        rng = self.rng
        types = self._app_types()
        behaviors = self._behaviors()
        instances = self._instances()

        if op == "at":
            self._type_counter += 1
            name = f"T_soak{self._type_counter:05d}"
            supers = rng.sample(types, min(rng.randint(0, 2), len(types)))
            chosen = rng.sample(
                behaviors, min(rng.randint(0, 2), len(behaviors))
            )
            self.manager.at(name, tuple(supers), tuple(chosen),
                            with_class=rng.random() < 0.6)
        elif op == "dt" and types:
            victim = rng.choice(types)
            survivors = [t for t in types if t != victim]
            migrate = (
                rng.choice(survivors)
                if survivors and rng.random() < 0.3
                and self.store.class_of(victim) is not None
                else None
            )
            if migrate is not None and self.store.class_of(migrate) is None:
                migrate = None
            self.manager.dt(victim, migrate_to=migrate)
            self.screening.on_schema_change(frozenset(survivors))
        elif op == "asr" and len(types) >= 2:
            self.manager.mt_asr(rng.choice(types), rng.choice(types))
        elif op == "dsr" and types:
            t = rng.choice(types)
            supers = sorted(
                self.store.lattice.pe(t) - {self.store.lattice.root}
            )
            if not supers:
                return
            self.manager.mt_dsr(t, rng.choice(supers))
            self.screening.on_schema_change(
                frozenset({t}) | self.store.lattice.all_subtypes(t)
            )
        elif op == "ab" and types:
            self._behavior_counter += 1
            semantics = f"soak.b{self._behavior_counter:05d}"
            self.store.define_stored_behavior(
                semantics, f"b{self._behavior_counter}"
            )
            self.manager.mt_ab(rng.choice(types), semantics)
        elif op == "db_type" and types and behaviors:
            t = rng.choice(types)
            essentials = sorted(
                p.semantics for p in self.store.lattice.ne(t)
            )
            if not essentials:
                return
            self.manager.mt_db(t, rng.choice(essentials))
            self.screening.on_schema_change(
                frozenset({t}) | self.store.lattice.all_subtypes(t)
            )
        elif op == "ac" and types:
            candidates = [
                t for t in types if self.store.class_of(t) is None
            ]
            if candidates:
                self.manager.ac(rng.choice(candidates))
        elif op == "dc" and types:
            candidates = [
                t for t in types if self.store.class_of(t) is not None
            ]
            if candidates:
                self.manager.dc(rng.choice(candidates))
        elif op == "ao" and types:
            candidates = [
                t for t in types if self.store.class_of(t) is not None
            ]
            if candidates:
                self.store.create_object(rng.choice(candidates))
        elif op == "mo" and instances:
            oid = rng.choice(instances)
            obj = self.store.get(oid)
            self.screening.screen(obj)
            props = sorted(
                p.semantics
                for p in self.store.lattice.interface(obj.type_name)
                if not p.semantics.startswith("type.")
            )
            if props:
                self.store.apply(obj, rng.choice(props), rng.randint(0, 99))
        elif op == "do" and instances:
            self.store.delete_object(rng.choice(instances))

    # -- invariants -----------------------------------------------------------------

    def _check_invariants(self) -> None:
        violations = check_all(self.store.lattice)
        if violations:
            self.report.invariant_failures.append(
                f"step {self.report.steps}: axioms: {violations[0]}"
            )
        sets = schema_sets(self.store)
        if not sets.invariants_ok(self.store):
            self.report.invariant_failures.append(
                f"step {self.report.steps}: Definition 3.1 subset inclusion"
            )
        membership = check_membership(self.store)
        if membership:
            self.report.invariant_failures.append(
                f"step {self.report.steps}: membership: {membership[0]}"
            )
        # Every screened-clean instance must conform.
        for oid in self._instances():
            obj = self.store.get(oid)
            self.screening.screen(obj)
            if stranded_slots(self.store, obj):
                self.report.invariant_failures.append(
                    f"step {self.report.steps}: {oid} not conformant "
                    f"after screening"
                )
                break

    def run(self, steps: int) -> SoakReport:
        for __ in range(steps):
            self.step()
        return self.report
