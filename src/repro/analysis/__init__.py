"""Workload generation, the order-independence experiment, the deferred
complexity study, and lattice metrics (paper Sections 5-6)."""

from .compare import (
    OrderExperimentResult,
    TrialResult,
    run_order_experiment,
)
from .complexity import (
    ConflictScanRow,
    CrossoverRow,
    measure_propagation_crossover,
    ScalingRow,
    measure_axiom_costs,
    measure_conflict_scan,
    measure_derivation_scaling,
)
from .metrics import LatticeMetrics, lattice_metrics
from .soak import SoakReport, SoakSession
from .zoo import ZOO, build_topology
from .workload import (
    LatticeSpec,
    droppable_edges,
    random_evolution_program,
    random_lattice,
    random_orion_pair,
    random_plan,
)

__all__ = [
    "LatticeSpec",
    "random_lattice",
    "random_orion_pair",
    "droppable_edges",
    "random_evolution_program",
    "random_plan",
    "run_order_experiment",
    "OrderExperimentResult",
    "TrialResult",
    "measure_derivation_scaling",
    "measure_axiom_costs",
    "measure_conflict_scan",
    "ScalingRow",
    "ConflictScanRow",
    "CrossoverRow",
    "measure_propagation_crossover",
    "LatticeMetrics",
    "lattice_metrics",
    "SoakSession",
    "SoakReport",
    "ZOO",
    "build_topology",
]
