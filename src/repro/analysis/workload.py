"""Workload generators: random lattices and operation streams.

The paper's evaluation is formal; the deferred empirical study ("the
completion of this task will provide the necessary empirical evidence of
its performance characteristics", Section 6) needs workloads.  Everything
here is seeded and deterministic so the benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.config import LatticePolicy
from ..core.lattice import TypeLattice
from ..core.properties import Property
from ..orion.model import OrionProperty, ROOT_CLASS
from ..orion.operations import OrionOps
from ..orion.reduction import ReducedOrion

__all__ = [
    "LatticeSpec",
    "random_lattice",
    "random_orion_pair",
    "droppable_edges",
    "random_evolution_program",
    "random_plan",
    "random_plan_pair",
]


@dataclass(frozen=True)
class LatticeSpec:
    """Parameters of a random lattice.

    ``extra_essential_prob`` is the probability that a non-immediate
    ancestor is *also* declared essential — the knob that separates the
    axiomatic model from Orion (which cannot represent such declarations)
    and drives the minimality ablations.
    """

    n_types: int = 50
    max_supertypes: int = 3
    n_property_names: int = 12
    properties_per_type: int = 2
    extra_essential_prob: float = 0.2
    seed: int = 0


def random_lattice(
    spec: LatticeSpec, policy: LatticePolicy | None = None
) -> TypeLattice:
    """A random DAG lattice with the given spec (deterministic in seed)."""
    rng = random.Random(spec.seed)
    lattice = TypeLattice(
        policy if policy is not None else LatticePolicy.tigukat()
    )
    names = [f"T_{i:04d}" for i in range(spec.n_types)]
    created: list[str] = []
    for name in names:
        k = rng.randint(0, min(spec.max_supertypes, len(created)))
        supers = rng.sample(created, k) if k else []
        props = [
            Property(f"{name}.p{j}", f"p{rng.randrange(spec.n_property_names)}")
            for j in range(rng.randint(0, spec.properties_per_type))
        ]
        lattice.add_type(name, supertypes=supers, properties=props)
        created.append(name)
    # Sprinkle extra essential (dominated) supertypes: ancestors declared
    # essential although reachable — what P/Pe minimality is about.
    for name in created:
        ancestors = sorted(lattice.pl(name) - {name})
        for ancestor in ancestors:
            if ancestor in (lattice.root, lattice.base):
                continue
            if ancestor in lattice.pe(name):
                continue
            if rng.random() < spec.extra_essential_prob:
                lattice.add_essential_supertype(name, ancestor)
    return lattice


def random_orion_pair(spec: LatticeSpec) -> tuple[OrionOps, ReducedOrion]:
    """A native Orion database and its reduction, built in lockstep
    through the same random OP6/OP3/OP1 stream."""
    rng = random.Random(spec.seed)
    native = OrionOps()
    reduced = ReducedOrion()
    names = [f"C{i:04d}" for i in range(spec.n_types)]
    created: list[str] = [ROOT_CLASS]
    for name in names:
        first = rng.choice(created)
        native.op6(name, None if first == ROOT_CLASS else first)
        reduced.op6(name, None if first == ROOT_CLASS else first)
        extra = rng.randint(0, spec.max_supertypes - 1)
        candidates = [c for c in created if c not in (name, first, ROOT_CLASS)]
        for s in rng.sample(candidates, min(extra, len(candidates))):
            try:
                native.op3(name, s)
                reduced.op3(name, s)
            except Exception:
                continue  # cycle attempts rejected identically in both
        for j in range(rng.randint(0, spec.properties_per_type)):
            prop = OrionProperty(
                f"p{rng.randrange(spec.n_property_names)}", "OBJECT"
            )
            try:
                native.op1(name, prop)
                reduced.op1(name, prop)
            except Exception:
                continue
        created.append(name)
    return native, reduced


def droppable_edges(ops: OrionOps, limit: int, seed: int) -> list[tuple[str, str]]:
    """A random sample of (class, superclass) edges safe to attempt to
    drop (never the root's own edges; OBJECT edges allowed — OP4 decides
    at drop time whether to reject)."""
    rng = random.Random(seed)
    edges = [
        (c, s)
        for c in sorted(ops.db.classes())
        if c != ROOT_CLASS
        for s in ops.db.get(c).superclasses
    ]
    rng.shuffle(edges)
    return edges[:limit]


def random_evolution_program(
    lattice: TypeLattice, n_ops: int, seed: int
) -> list[tuple]:
    """A mixed stream of mutations applicable to an existing lattice.

    Returns ``(kind, *args)`` tuples; rejected operations are part of the
    workload (a live system sees them too), so the executor in the
    benchmarks catches SchemaError and moves on.
    """
    rng = random.Random(seed)
    program: list[tuple] = []
    types = sorted(
        t for t in lattice.types() if t not in (lattice.root, lattice.base)
    )
    props = sorted(lattice.universe, key=lambda p: p.semantics)
    fresh = 0
    for _ in range(n_ops):
        kind = rng.choices(
            ["add_edge", "drop_edge", "add_prop", "drop_prop",
             "add_type", "drop_type"],
            weights=[25, 25, 20, 15, 10, 5],
        )[0]
        if kind == "add_type":
            fresh += 1
            supers = rng.sample(types, min(2, len(types)))
            program.append(("add_type", f"T_new{fresh:04d}", tuple(supers)))
        elif kind == "drop_type" and types:
            program.append(("drop_type", rng.choice(types)))
        elif kind == "add_edge" and len(types) >= 2:
            program.append(
                ("add_edge", rng.choice(types), rng.choice(types))
            )
        elif kind == "drop_edge" and types:
            t = rng.choice(types)
            candidates = sorted(lattice.pe(t) - {lattice.root or ""})
            if candidates:
                program.append(("drop_edge", t, rng.choice(candidates)))
        elif kind == "add_prop" and types and props:
            program.append(
                ("add_prop", rng.choice(types), rng.choice(props))
            )
        elif kind == "drop_prop" and types and props:
            program.append(
                ("drop_prop", rng.choice(types), rng.choice(props))
            )
    return program


def random_plan(lattice: TypeLattice, n_ops: int, seed: int):
    """A seeded evolution plan over an existing lattice, as operation
    command objects (:mod:`repro.core.operations`).

    The workhorse of the static-analyzer benchmarks and tests: the same
    mixed mutation stream as :func:`random_evolution_program`, but
    packaged for :func:`repro.staticcheck.analyze` — including the
    operations a live system would reject, since flagging those ahead
    of execution is the analyzer's job.
    """
    from ..core.operations import (
        AddEssentialProperty,
        AddEssentialSupertype,
        AddType,
        DropEssentialProperty,
        DropEssentialSupertype,
        DropType,
        SchemaOperation,
    )

    ops: list[SchemaOperation] = []
    for step in random_evolution_program(lattice, n_ops, seed):
        kind, args = step[0], step[1:]
        if kind == "add_type":
            ops.append(AddType(args[0], tuple(args[1])))
        elif kind == "drop_type":
            ops.append(DropType(args[0]))
        elif kind == "add_edge":
            ops.append(AddEssentialSupertype(args[0], args[1]))
        elif kind == "drop_edge":
            ops.append(DropEssentialSupertype(args[0], args[1]))
        elif kind == "add_prop":
            ops.append(AddEssentialProperty(args[0], args[1]))
        elif kind == "drop_prop":
            ops.append(DropEssentialProperty(args[0], args[1]))
    return ops


def random_plan_pair(lattice: TypeLattice, n_ops: int, seed: int):
    """Two independently-drawn plans over the *same* lattice.

    The concurrent-pair workload for the cross-plan interference
    analysis (:func:`repro.staticcheck.analyze_pair`): both plans are
    generated against the shared base schema, as two clients planning
    against the same snapshot would.  Sub-seeds are derived from
    ``seed`` so the pair is reproducible and the two streams are
    decorrelated.
    """
    rng = random.Random(seed)
    seed_a = rng.randrange(2**31)
    seed_b = rng.randrange(2**31)
    return (
        random_plan(lattice, n_ops, seed_a),
        random_plan(lattice, n_ops, seed_b),
    )
