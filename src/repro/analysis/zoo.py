"""The lattice zoo: canonical topologies for complexity experiments.

Random DAGs (the default workload) average away structure; the zoo
provides the extreme shapes that bound the engine's behaviour:

* **chain** — depth = n: worst case for path-length-dependent work
  (stratified induction, PL sizes grow linearly);
* **star** — one root, n leaves: maximal fan-out, depth 1;
* **binary tree** — balanced branching (the GemStone-ish shape);
* **diamond stack** — repeated diamonds: maximal multiple-inheritance
  joins per level, stressing Axiom 5's domination elimination;
* **dense** — every earlier type is an essential supertype: |Pe| grows
  quadratically while |P| stays 1 — the maximal minimality payoff.

Every builder is deterministic, sized by one parameter, and produces a
valid TIGUKAT-policy lattice (axioms asserted in the tests).
"""

from __future__ import annotations

from typing import Callable

from ..core.config import LatticePolicy
from ..core.lattice import TypeLattice
from ..core.properties import Property

__all__ = ["ZOO", "build_topology", "chain", "star", "binary_tree",
           "diamond_stack", "dense"]


def _fresh(policy: LatticePolicy | None) -> TypeLattice:
    return TypeLattice(policy if policy is not None else LatticePolicy.tigukat())


def _with_prop(i: int) -> list[Property]:
    return [Property(f"zoo{i}.p", f"p{i % 5}")]


def chain(n: int, policy: LatticePolicy | None = None) -> TypeLattice:
    """``t0 <- t1 <- ... <- t(n-1)``: maximal depth."""
    lat = _fresh(policy)
    previous: str | None = None
    for i in range(n):
        name = f"t{i:04d}"
        lat.add_type(
            name,
            supertypes=[previous] if previous else [],
            properties=_with_prop(i),
        )
        previous = name
    return lat


def star(n: int, policy: LatticePolicy | None = None) -> TypeLattice:
    """One hub with ``n - 1`` leaves: maximal fan-out, depth 1."""
    lat = _fresh(policy)
    lat.add_type("hub", properties=_with_prop(0))
    for i in range(1, n):
        lat.add_type(f"leaf{i:04d}", supertypes=["hub"],
                     properties=_with_prop(i))
    return lat


def binary_tree(n: int, policy: LatticePolicy | None = None) -> TypeLattice:
    """A balanced binary tree with ``n`` nodes (heap indexing)."""
    lat = _fresh(policy)
    for i in range(n):
        name = f"t{i:04d}"
        parent = [] if i == 0 else [f"t{(i - 1) // 2:04d}"]
        lat.add_type(name, supertypes=parent, properties=_with_prop(i))
    return lat


def diamond_stack(n: int, policy: LatticePolicy | None = None) -> TypeLattice:
    """Stacked diamonds: top, then (left, right, join) repeated.

    ``n`` counts *types*; every join has two immediate supertypes, so
    Axiom 5 does real domination work at every level.
    """
    lat = _fresh(policy)
    lat.add_type("j0000", properties=_with_prop(0))
    apex = "j0000"
    level = 0
    created = 1
    while created + 3 <= n:
        level += 1
        left = f"l{level:04d}"
        right = f"r{level:04d}"
        join = f"j{level:04d}"
        lat.add_type(left, supertypes=[apex], properties=_with_prop(created))
        lat.add_type(right, supertypes=[apex],
                     properties=_with_prop(created + 1))
        lat.add_type(join, supertypes=[left, right],
                     properties=_with_prop(created + 2))
        apex = join
        created += 3
    return lat


def dense(n: int, policy: LatticePolicy | None = None) -> TypeLattice:
    """Every earlier type is declared an essential supertype.

    ``Σ|Pe|`` is Θ(n²) while ``Σ|P|`` is Θ(n): the strongest separation
    between what the designer declared and what the minimal view keeps.
    """
    lat = _fresh(policy)
    created: list[str] = []
    for i in range(n):
        name = f"t{i:04d}"
        lat.add_type(name, supertypes=list(created),
                     properties=_with_prop(i))
        created.append(name)
    return lat


ZOO: dict[str, Callable[[int], TypeLattice]] = {
    "chain": chain,
    "star": star,
    "binary-tree": binary_tree,
    "diamond-stack": diamond_stack,
    "dense": dense,
}


def build_topology(name: str, n: int) -> TypeLattice:
    """Build a named zoo topology with ``n`` types."""
    builder = ZOO.get(name)
    if builder is None:
        raise KeyError(
            f"unknown topology {name!r}; choose from {sorted(ZOO)}"
        )
    return builder(n)
