"""Structured tracing: hierarchical spans with per-span metric deltas.

A *span* brackets one engine activity (``apply``, ``batch``,
``normalize``, ``undo``, ``verify``) with wall-clock timing and the
counter deltas the activity produced::

    from repro.obs import trace

    with trace.span("apply", op="MT-ASR"):
        journal.apply(operation)

Spans nest: a facade ``apply`` inside a ``batch`` block becomes a child
of the batch span.  Each finished span is emitted to the installed
*sink* as one JSON-friendly dict (see :data:`SPAN_SCHEMA_KEYS`); a
parent's metric deltas include its children's, so summing the deltas of
**root** spans (``parent_id is None``) reproduces the registry totals
for the traced window — the invariant ``repro trace`` / ``repro stats``
are tested against.

When no sink is installed (the default), :meth:`Tracer.span` yields a
shared no-op span and does **no other work** — no id allocation, no
counter snapshot, no timestamps — so always-on instrumentation in the
facade costs nothing on untraced runs.

Sinks are pluggable: anything with ``emit(record: dict)`` works.
:class:`JsonlSink` appends JSON lines to a path or file object;
:class:`ListSink` collects records in memory (tests, aggregation).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from .metrics import REGISTRY, MetricsRegistry

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "JsonlSink",
    "ListSink",
    "trace",
    "SPAN_SCHEMA_KEYS",
]

#: Keys every emitted span record carries (the JSONL span schema,
#: validated by the obs-smoke CI job and ``docs/observability.md``).
SPAN_SCHEMA_KEYS = frozenset(
    {
        "type", "trace_id", "span_id", "parent_id", "name",
        "start_unix", "duration_ms", "status", "attrs", "metrics",
    }
)


class Span:
    """One live span; becomes an emitted record when it finishes."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "status", "_start_unix", "_start_perf", "_counters_before",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        attrs: dict,
        counters_before: dict[str, int | float],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self._start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._counters_before = counters_before

    def set_attr(self, key: str, value) -> None:
        """Attach one JSON-serializable attribute to the span."""
        self.attrs[key] = value

    def _finish(self, registry: MetricsRegistry) -> dict:
        duration = time.perf_counter() - self._start_perf
        after = registry.counter_samples()
        before = self._counters_before
        deltas = {
            key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)
        }
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self._start_unix,
            "duration_ms": duration * 1e3,
            "status": self.status,
            "attrs": self.attrs,
            "metrics": deltas,
        }


class NullSpan:
    """The shared do-nothing span yielded when no sink is installed."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Span factory bound to a metrics registry and an optional sink."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._sink = None
        self._stack: list[Span] = []
        self._next_id = 1
        self._next_trace = 1

    @property
    def sink(self):
        return self._sink

    def set_sink(self, sink):
        """Install ``sink`` (or ``None`` to disable); returns the old one."""
        old, self._sink = self._sink, sink
        return old

    @property
    def active(self) -> Span | None:
        """The innermost live span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span | NullSpan]:
        """Bracket an activity; emits one record when the block exits.

        The record is emitted even when the block raises (with
        ``status="error"`` and the exception's evolution-error code in
        ``attrs["error"]``), and the exception propagates.
        """
        if self._sink is None:
            yield _NULL_SPAN
            return
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
        else:
            trace_id = parent.trace_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            counters_before=self._registry.counter_samples(),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault(
                "error", getattr(exc, "code", type(exc).__name__)
            )
            raise
        finally:
            self._stack.pop()
            sink = self._sink
            if sink is not None:
                sink.emit(span._finish(self._registry))


class JsonlSink:
    """Append span records as JSON lines to a path or file object."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._fh: IO[str] = Path(target).open("w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.emitted = 0

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListSink:
    """Collect span records in memory (tests, in-process aggregation)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def roots(self) -> list[dict]:
        return [r for r in self.records if r.get("parent_id") is None]


#: The process-wide tracer the facade and the CLI share.
trace = Tracer()
