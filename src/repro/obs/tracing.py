"""Structured tracing: hierarchical spans with per-span metric deltas.

A *span* brackets one engine activity (``apply``, ``batch``,
``normalize``, ``undo``, ``verify``) with wall-clock timing and the
counter deltas the activity produced::

    from repro.obs import trace

    with trace.span("apply", op="MT-ASR"):
        journal.apply(operation)

Spans nest: a facade ``apply`` inside a ``batch`` block becomes a child
of the batch span.  Each finished span is emitted to the installed
*sink* as one JSON-friendly dict (see :data:`SPAN_SCHEMA_KEYS`); a
parent's metric deltas include its children's, so summing the deltas of
**root** spans (``parent_id is None``) reproduces the registry totals
for the traced window — the invariant ``repro trace`` / ``repro stats``
are tested against.

When no sink is installed (the default), :meth:`Tracer.span` yields a
shared no-op span and does **no other work** — no id allocation, no
counter snapshot, no timestamps — so always-on instrumentation in the
facade costs nothing on untraced runs.

Sinks are pluggable: anything with ``emit(record: dict)`` works.
:class:`JsonlSink` appends JSON lines to a path or file object — with
optional size-based rotation (``max_bytes``/``keep``) and deterministic
head sampling (``sample_rate``) so always-on tracing in a long-running
server stays bounded; :class:`ListSink` collects records in memory
(tests, aggregation).

Thread safety: the span stack is **thread-local** — each thread nests
its own spans, so one server request produces one root span regardless
of what other request threads are doing.  Span ids are allocated from a
shared atomic counter and :class:`JsonlSink` serializes its writes, so
concurrent roots interleave whole records, never bytes.  Counter deltas
on a span are computed from the shared registry and therefore include
activity from concurrently-running threads; under the single-writer
lock of :mod:`repro.concurrent` mutation deltas stay exact, read-path
spans are best-effort.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from .metrics import REGISTRY, MetricsRegistry

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "JsonlSink",
    "ListSink",
    "trace",
    "SPAN_SCHEMA_KEYS",
]

#: Keys every emitted span record carries (the JSONL span schema,
#: validated by the obs-smoke CI job and ``docs/observability.md``).
SPAN_SCHEMA_KEYS = frozenset(
    {
        "type", "trace_id", "span_id", "parent_id", "name",
        "start_unix", "duration_ms", "status", "attrs", "metrics",
    }
)


class Span:
    """One live span; becomes an emitted record when it finishes."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "status", "_start_unix", "_start_perf", "_counters_before",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        attrs: dict,
        counters_before: dict[str, int | float],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self._start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._counters_before = counters_before

    def set_attr(self, key: str, value) -> None:
        """Attach one JSON-serializable attribute to the span."""
        self.attrs[key] = value

    def _finish(self, registry: MetricsRegistry) -> dict:
        duration = time.perf_counter() - self._start_perf
        after = registry.counter_samples()
        before = self._counters_before
        deltas = {
            key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)
        }
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self._start_unix,
            "duration_ms": duration * 1e3,
            "status": self.status,
            "attrs": self.attrs,
            "metrics": deltas,
        }


class NullSpan:
    """The shared do-nothing span yielded when no sink is installed."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Span factory bound to a metrics registry and an optional sink.

    The stack of live spans is per-thread (:class:`threading.local`), so
    spans nest within a thread and concurrent threads each produce their
    own root spans; ids come from shared atomic counters.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._sink = None
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def sink(self):
        return self._sink

    def set_sink(self, sink):
        """Install ``sink`` (or ``None`` to disable); returns the old one."""
        old, self._sink = self._sink, sink
        return old

    @property
    def active(self) -> Span | None:
        """The innermost live span of the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span | NullSpan]:
        """Bracket an activity; emits one record when the block exits.

        The record is emitted even when the block raises (with
        ``status="error"`` and the exception's evolution-error code in
        ``attrs["error"]``), and the exception propagates.
        """
        if self._sink is None:
            yield _NULL_SPAN
            return
        stack = self._stack
        parent = stack[-1] if stack else None
        if parent is None:
            trace_id = next(self._trace_ids)
        else:
            trace_id = parent.trace_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            counters_before=self._registry.counter_samples(),
        )
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault(
                "error", getattr(exc, "code", type(exc).__name__)
            )
            raise
        finally:
            stack.pop()
            sink = self._sink
            if sink is not None:
                sink.emit(span._finish(self._registry))


class JsonlSink:
    """Append span records as JSON lines to a path or file object.

    Hardened for always-on use in a long-running server:

    * **Rotation** — with ``max_bytes`` set (and a path target), the
      file is rotated once a write would push it past the limit:
      ``trace.jsonl`` becomes ``trace.jsonl.1``, older generations shift
      up, and at most ``keep`` rotated files are retained.
    * **Head sampling** — ``sample_rate`` keeps that fraction of traces.
      The decision is made once per ``trace_id`` (deterministically, by
      hashing the id), so a kept trace keeps *all* of its spans and a
      dropped trace drops all of them — never a parentless child.
      Records without a ``trace_id`` (e.g. the trailing ``summary``) are
      always written.
    * **Thread safety** — writes are serialized, so concurrent request
      threads interleave whole records.
    """

    def __init__(
        self,
        target: str | Path | IO[str],
        *,
        max_bytes: int | None = None,
        keep: int = 3,
        sample_rate: float = 1.0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._fh: IO[str] = self._path.open("w")
            self._owns = True
        else:
            self._path = None
            self._fh = target
            self._owns = False
        self.max_bytes = max_bytes if self._path is not None else None
        self.keep = keep
        self.sample_rate = sample_rate
        self.emitted = 0
        self.sampled_out = 0
        self.rotations = 0
        self._written = 0
        self._lock = threading.Lock()

    def _keep_trace(self, trace_id) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        # Deterministic per-trace coin flip: stable across threads,
        # processes, and replays of the same trace ids.
        h = zlib.crc32(str(trace_id).encode("utf-8")) & 0xFFFFFFFF
        return h / 2**32 < self.sample_rate

    def _maybe_rotate(self, pending: int) -> None:
        if (
            self.max_bytes is None
            or self._path is None
            or self._written == 0
            or self._written + pending <= self.max_bytes
        ):
            return
        self._fh.close()
        for n in range(self.keep, 0, -1):
            older = self._path.with_name(f"{self._path.name}.{n}")
            if n == self.keep:
                older.unlink(missing_ok=True)
                continue
            if older.exists():
                older.rename(
                    self._path.with_name(f"{self._path.name}.{n + 1}")
                )
        self._path.rename(self._path.with_name(f"{self._path.name}.1"))
        self._fh = self._path.open("w")
        self._written = 0
        self.rotations += 1

    def emit(self, record: dict) -> None:
        trace_id = record.get("trace_id")
        if trace_id is not None and not self._keep_trace(trace_id):
            with self._lock:
                self.sampled_out += 1
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._maybe_rotate(len(line))
            self._fh.write(line)
            self._written += len(line)
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ListSink:
    """Collect span records in memory (tests, in-process aggregation)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def roots(self) -> list[dict]:
        return [r for r in self.records if r.get("parent_id") is None]


#: The process-wide tracer the facade and the CLI share.
trace = Tracer()
