"""Observability for the derivation engine: metrics, tracing, logging.

Three zero-dependency layers (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms, exportable as JSON and
  Prometheus text.  The core engine, storage, and static analyzer are
  instrumented against :data:`~repro.obs.metrics.REGISTRY`.
* :mod:`repro.obs.tracing` — hierarchical spans
  (``with trace.span("apply", op=...)``) carrying wall-time and the
  counter deltas observed inside each span, emitted as JSONL through a
  pluggable sink.  No sink installed (the default) means near-zero
  cost.
* :func:`configure_logging` — the one place handlers/levels are set.
  Library modules only ever call ``logging.getLogger(__name__)``; the
  CLI's ``--verbose``/``--quiet`` flags route here.
"""

from __future__ import annotations

import logging

from .metrics import (
    FSYNC_BUCKETS,
    LATENCY_BUCKETS,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    sample_name,
)
from .tracing import (
    SPAN_SCHEMA_KEYS,
    JsonlSink,
    ListSink,
    NullSpan,
    Span,
    Tracer,
    trace,
)

__all__ = [
    "REGISTRY",
    "get_registry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "FSYNC_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "sample_name",
    "trace",
    "Tracer",
    "Span",
    "NullSpan",
    "JsonlSink",
    "ListSink",
    "SPAN_SCHEMA_KEYS",
    "configure_logging",
]

#: Marker attribute identifying handlers installed by configure_logging,
#: so repeat calls replace rather than stack them.
_HANDLER_MARK = "_repro_obs_handler"


def configure_logging(
    verbose: int = 0, quiet: bool = False, stream=None
) -> int:
    """Configure the ``repro`` logger tree for an application run.

    ``verbose`` counts ``-v`` flags (0 → WARNING, 1 → INFO, ≥2 →
    DEBUG); ``quiet`` wins and raises the bar to ERROR.  Idempotent:
    calling again replaces the previously installed handler instead of
    stacking duplicates.  Returns the effective level.

    This is the *only* place in the package that touches handlers —
    library modules follow the stdlib convention of
    ``logging.getLogger(__name__)`` plus silence by default.
    """
    if quiet:
        level = logging.ERROR
    else:
        level = (logging.WARNING, logging.INFO, logging.DEBUG)[
            min(verbose, 2)
        ]
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return level
