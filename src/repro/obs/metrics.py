"""Metrics registry: counters, gauges, and histograms for the engine.

Zero-dependency, in-process telemetry.  Every instrumented module holds
metric handles created at import time against the module-global
:data:`REGISTRY`; incrementing a counter is one attribute add, so the
hot paths (the incremental derivation pass, operation apply) stay within
the <5% no-sink overhead budget that ``bench_incremental.py`` enforces.

Model
-----
* A **metric family** has a name, a help string, a kind, and an ordered
  tuple of label names.  :meth:`MetricFamily.labels` returns (and caches)
  the child sample for one label-value combination; a family with no
  label names proxies the sample API directly (``family.inc()``).
* **Counters** only go up (until :meth:`MetricsRegistry.reset`), gauges
  move freely, **histograms** bucket observations into fixed, cumulative
  bucket boundaries (Prometheus semantics: ``le`` upper bounds plus
  ``+Inf``) and track ``sum``/``count``.
* The whole registry exports as a JSON-friendly dict
  (:meth:`MetricsRegistry.collect`), JSON text, or Prometheus text
  exposition format (:meth:`MetricsRegistry.render_prometheus`).
* :meth:`MetricsRegistry.set_enabled` turns every sample into a no-op in
  place — the switch the overhead benchmark uses to price the
  instrumentation, and an escape hatch for embedders that want zero
  telemetry.  Handles bound before the switch keep honoring it.

Naming follows the Prometheus conventions: ``repro_<noun>_total`` for
counters, ``_seconds`` for latency histograms.  The full catalogue lives
in ``docs/observability.md``.

Thread safety
-------------
The registry is safe for concurrent use: sample updates
(``inc``/``dec``/``set``/``observe``) and ``reset`` take a per-sample
lock, child creation and registration are guarded, and every export
walks a point-in-time snapshot of the family/sample maps.  The lock is
acquired only when the sample is enabled, so the disabled path (the
overhead benchmark's baseline) stays a single attribute check.  The
derivation engine's *inlined* sample updates (see
``core/lattice.py``) intentionally bypass the locks — they run on the
single-writer path that :mod:`repro.concurrent` serializes.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "FSYNC_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
]

#: The content type a Prometheus scraper expects from a pull endpoint
#: serving :meth:`MetricsRegistry.render_prometheus` output.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default bucket upper bounds for latency histograms, in seconds
#: (100 µs .. 2.5 s — schema operations and derivation passes).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default bucket upper bounds for size histograms (cone sizes, batch
#: lengths): roughly logarithmic up to many-thousand-type schemas.
SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)

#: Bucket upper bounds for fsync latency, in seconds.  Finer than
#: :data:`LATENCY_BUCKETS` at the low end (a flush to a local SSD is
#: tens of microseconds) and topping out at the quarter second a busy
#: spinning disk can take — the knob ``DurabilityPolicy.fsync`` trades
#: against, so the histogram must resolve both regimes.
FSYNC_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def sample_name(name: str, labels: Mapping[str, str]) -> str:
    """The canonical ``name{k="v",...}`` identifier of one sample.

    Label pairs are sorted by key so the identifier is stable no matter
    how the label mapping was built (declaration order, JSON round-trips
    with sorted keys, ...) — span deltas and export snapshots must key
    identically.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing sample."""

    kind = "counter"
    __slots__ = ("name", "labels", "enabled", "_value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], enabled: bool) -> None:
        self.name = name
        self.labels = labels
        self.enabled = enabled
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if self.enabled:
            if amount < 0:
                raise ValueError("counters only go up")
            with self._lock:
                self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _export(self) -> dict:
        return {"labels": dict(self.labels), "value": self._value}


class Gauge:
    """A sample that can go up and down (e.g. live schema size)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "enabled", "_value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], enabled: bool) -> None:
        self.name = name
        self.labels = labels
        self.enabled = enabled
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        if self.enabled:
            with self._lock:
                self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if self.enabled:
            with self._lock:
                self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        if self.enabled:
            with self._lock:
                self._value -= amount

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _export(self) -> dict:
        return {"labels": dict(self.labels), "value": self._value}


class Histogram:
    """Observations bucketed into fixed, cumulative upper bounds."""

    kind = "histogram"
    __slots__ = (
        "name", "labels", "enabled", "bounds", "_counts", "_sum", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        enabled: bool,
        bounds: tuple[float, ...],
    ) -> None:
        self.name = name
        self.labels = labels
        self.enabled = enabled
        self.bounds = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        if self.enabled:
            with self._lock:
                self._counts[bisect_left(self.bounds, value)] += 1
                self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0

    def _export(self) -> dict:
        return {
            "labels": dict(self.labels),
            "buckets": [
                {"le": le if le != float("inf") else "+Inf", "count": n}
                for le, n in self.cumulative_buckets()
            ],
            "sum": self._sum,
            "count": self.count,
        }


class MetricFamily:
    """All samples of one metric name, across label combinations."""

    def __init__(
        self,
        name: str,
        help: str,
        kind: type,
        labelnames: tuple[str, ...],
        enabled: bool,
        **kwargs,
    ) -> None:
        self.name = name
        self.help = help
        self._kind = kind
        self.labelnames = labelnames
        self._enabled = enabled
        self._kwargs = kwargs
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self._default = self._make_child(())
        else:
            self._default = None

    @property
    def kind(self) -> str:
        return self._kind.kind

    def _make_child(self, values: tuple[str, ...]):
        labels = dict(zip(self.labelnames, values))
        child = self._kind(
            self.name, labels, self._enabled, **self._kwargs
        )
        self._children[values] = child
        return child

    def labels(self, **labelvalues: str):
        """The child sample for one label-value combination (cached)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            # Double-checked under the family lock: two threads racing on
            # a new label combination must share one sample.
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(key)
        return child

    # -- unlabeled families proxy the sample API ------------------------

    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; use .labels()"
            )
        return self._default

    def inc(self, amount: int | float = 1) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        self._require_default().dec(amount)

    def set(self, value: int | float) -> None:
        self._require_default().set(value)

    def observe(self, value: int | float) -> None:
        self._require_default().observe(value)

    @property
    def value(self):
        return self._require_default().value

    @property
    def enabled(self) -> bool:
        return self._enabled

    def samples(self) -> Iterator[Counter | Gauge | Histogram]:
        """Children in insertion order (deterministic export).

        Iterates a point-in-time snapshot, so exports are safe against a
        concurrent thread creating a new label combination.
        """
        return iter(list(self._children.values()))

    def _set_enabled(self, enabled: bool) -> None:
        self._enabled = enabled
        for child in self._children.values():
            child.enabled = enabled

    def _reset(self) -> None:
        for child in self._children.values():
            child._reset()


class MetricsRegistry:
    """A process-wide collection of metric families.

    Registration is idempotent: asking for an existing name with the
    same kind and label names returns the existing family (so module
    reloads and test fixtures compose); a conflicting re-registration
    raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._enabled = True
        self._lock = threading.RLock()

    # -- registration ---------------------------------------------------

    def _register(
        self, name: str, help: str, kind: type,
        labelnames: tuple[str, ...], **kwargs,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing._kind is not kind
                    or existing.labelnames != labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(
                name, help, kind, labelnames, self._enabled, **kwargs
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, help, Counter, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, help, Gauge, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            name, help, Histogram, tuple(labelnames),
            bounds=tuple(sorted(buckets)),
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Flip every sample (and future samples) to/from no-op mode."""
        with self._lock:
            self._enabled = enabled
            for family in list(self._families.values()):
                family._set_enabled(enabled)

    def reset(self) -> None:
        """Zero every sample in place; registrations and handles survive."""
        with self._lock:
            for family in list(self._families.values()):
                family._reset()

    # -- introspection and export --------------------------------------

    def __iter__(self) -> Iterator[MetricFamily]:
        with self._lock:
            return iter(list(self._families.values()))

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def counter_samples(self) -> dict[str, int | float]:
        """Flat ``{sample_name: value}`` of every *counter* sample.

        This is the snapshot the tracing layer diffs to attribute metric
        deltas to spans: counters only (deterministic under re-runs),
        cheap to copy, keyed exactly like the Prometheus export.
        """
        out: dict[str, int | float] = {}
        for family in iter(self):
            if family.kind != "counter":
                continue
            for child in family.samples():
                out[sample_name(family.name, child.labels)] = child._value
        return out

    def collect(self) -> dict:
        """JSON-friendly export of the whole registry."""
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "values": [child._export() for child in family.samples()],
            }
            for family in iter(self)
        }

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.collect(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Serve with content type ``text/plain; version=0.0.4`` (the
        server's ``/metrics`` endpoint does).  Label values are escaped
        per the exposition spec (backslash, quote, newline — see
        :func:`sample_name`), and so are HELP strings (backslash,
        newline).
        """
        lines: list[str] = []
        for family in iter(self):
            if family.help:
                help_text = family.help.replace("\\", "\\\\") \
                    .replace("\n", "\\n")
                lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.samples():
                if family.kind == "histogram":
                    for le, n in child.cumulative_buckets():
                        le_str = "+Inf" if le == float("inf") else repr(le)
                        labels = dict(child.labels)
                        labels["le"] = le_str
                        lines.append(
                            f"{sample_name(family.name + '_bucket', labels)}"
                            f" {n}"
                        )
                    lines.append(
                        f"{sample_name(family.name + '_sum', child.labels)}"
                        f" {child.sum}"
                    )
                    lines.append(
                        f"{sample_name(family.name + '_count', child.labels)}"
                        f" {child.count}"
                    )
                else:
                    lines.append(
                        f"{sample_name(family.name, child.labels)}"
                        f" {child.value}"
                    )
        return "\n".join(lines) + "\n"

    def render_text(self) -> str:
        """Compact human-readable dump (the CLI's default stats format)."""
        lines: list[str] = []
        for family in iter(self):
            for child in family.samples():
                name = sample_name(family.name, child.labels)
                if family.kind == "histogram":
                    lines.append(
                        f"{name}  count={child.count} sum={child.sum:.6f}"
                    )
                else:
                    lines.append(f"{name}  {child.value}")
        return "\n".join(lines)


#: The process-wide default registry every instrumented module binds to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The default registry (one per process)."""
    return REGISTRY
