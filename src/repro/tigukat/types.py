"""Type objects: instances of ``T_type`` wrapping axiomatic lattice types.

"The uniformity of TIGUKAT dictates that types are modeled as objects.
The primitive type T_type defines the behaviors of types.  The behaviors
related to schema evolution include B_supertypes, B_super-lattice,
B_interface, B_native, and B_inherited" (Section 3.1).

:class:`TypeObject` holds no lattice state of its own — every schema
query delegates to the axiomatic :class:`~repro.core.lattice.TypeLattice`
so there is exactly one source of truth, which is the reduction claim of
the paper made structural: the TIGUKAT behaviors *are* the axiomatic
terms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.identity import Oid
from ..core.properties import Property
from .objects import TigukatObject

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["TypeObject"]


class TypeObject(TigukatObject):
    """A first-class type object.

    Parameters
    ----------
    oid:
        Identity of the type object itself.
    name:
        The reference of the lattice type this object reifies.
    lattice:
        The axiomatic lattice all behaviors delegate to.
    """

    __slots__ = ("_name", "_lattice")

    def __init__(self, oid: Oid, name: str, lattice: "TypeLattice") -> None:
        super().__init__(oid, "T_type")
        self._name = name
        self._lattice = lattice

    @property
    def name(self) -> str:
        return self._name

    @property
    def exists(self) -> bool:
        """Whether the underlying lattice type still exists (a dropped
        type leaves dangling type objects invalid, never wrong)."""
        return self._name in self._lattice

    # -- the five schema-evolution behaviors of Section 3.1 -------------

    def b_supertypes(self) -> frozenset[str]:
        """``B_supertypes``: "returns the immediate supertypes of [the]
        receiver type" — the axiomatic ``P(t)``."""
        return self._lattice.p(self._name)

    def b_super_lattice(self) -> tuple[str, ...]:
        """``B_super-lattice``: "a partially ordered collection of types
        representing the supertype lattice pointed at the receiver type
        and rooted at T_object" — ``PL(t)``, topologically ordered from
        the root down."""
        members = self._lattice.pl(self._name)
        order = self._lattice.derivation.order
        return tuple(t for t in order if t in members)

    def b_interface(self) -> frozenset[Property]:
        """``B_interface``: the axiomatic ``I(t)``."""
        return self._lattice.interface(self._name)

    def b_native(self) -> frozenset[Property]:
        """``B_native``: the axiomatic ``N(t)``."""
        return self._lattice.n(self._name)

    def b_inherited(self) -> frozenset[Property]:
        """``B_inherited``: the axiomatic ``H(t)``."""
        return self._lattice.h(self._name)

    def b_subtypes(self) -> frozenset[str]:
        """``B_subtypes``: "the inverse operation of the supertypes
        property" — used by DT to find the types whose ``Pe`` must be
        cleaned."""
        return self._lattice.subtypes(self._name)

    def conforms_to(self, other: str) -> bool:
        """Inclusion polymorphism: does this type conform to ``other``?"""
        return self._lattice.is_subtype(self._name, other)

    def __str__(self) -> str:
        return self._name
