"""Collections and classes: the grouping constructs of TIGUKAT.

"Collections are defined as heterogeneous grouping constructs as opposed
to classes, which are homogeneous up to inclusion polymorphism.  Object
creation occurs only through classes; thus they are extents of types and
are managed automatically by the system.  Collections are managed
explicitly by the user" (Section 3.1).

``T_class`` is a subtype of ``T_collection`` in the primitive type system
(Figure 2), mirrored here by :class:`ClassObject` subclassing
:class:`CollectionObject`.
"""

from __future__ import annotations

from typing import Iterator

from ..core.identity import Oid
from .objects import TigukatObject

__all__ = ["CollectionObject", "ClassObject"]


class CollectionObject(TigukatObject):
    """A heterogeneous, user-managed grouping of objects.

    Members are held by identity.  An optional ``member_type`` documents
    the intended membership type, but — collections being user-managed —
    it is advisory: "Modifying a collection involves changing the
    membership of its extent and changing its membership type."
    """

    __slots__ = ("_name", "_members", "_member_type")

    def __init__(
        self,
        oid: Oid,
        name: str,
        member_type: str = "T_object",
        type_name: str = "T_collection",
    ) -> None:
        super().__init__(oid, type_name)
        self._name = name
        self._members: set[Oid] = set()
        self._member_type = member_type

    @property
    def name(self) -> str:
        return self._name

    @property
    def member_type(self) -> str:
        return self._member_type

    def set_member_type(self, type_name: str) -> None:
        """ML (modify collection): change the membership type.

        A content operation, not schema evolution (Table 3 classifies it
        as *emphasized*, i.e. outside the schema-evolution problem).
        """
        self._member_type = type_name

    def insert(self, oid: Oid) -> bool:
        """Add a member; returns ``False`` if already present."""
        if oid in self._members:
            return False
        self._members.add(oid)
        return True

    def remove(self, oid: Oid) -> bool:
        """Remove a member; returns ``False`` if absent."""
        if oid not in self._members:
            return False
        self._members.discard(oid)
        return True

    def members(self) -> frozenset[Oid]:
        return frozenset(self._members)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Oid]:
        return iter(sorted(self._members))

    def __str__(self) -> str:
        return f"L_{self._name}({len(self._members)})"


class ClassObject(CollectionObject):
    """The extent manager of a type: homogeneous, system-managed.

    "A class ties together the notions of type and object instances ...
    responsible for managing all instances of a particular type (i.e.,
    the type extent).  In this way, the model clearly separates types
    from their extents" (Section 3.1).

    Only the objectbase inserts into a class (at object creation) —
    classes are *not* user-managed, unlike their collection supertype.
    """

    __slots__ = ("_of_type",)

    def __init__(self, oid: Oid, name: str, of_type: str) -> None:
        super().__init__(oid, name, member_type=of_type, type_name="T_class")
        self._of_type = of_type

    @property
    def of_type(self) -> str:
        """The type whose extent this class manages."""
        return self._of_type

    def set_member_type(self, type_name: str) -> None:
        raise TypeError(
            "a class is uniquely associated with its type; "
            "its membership type cannot be changed"
        )

    def __str__(self) -> str:
        return f"C_{self._of_type.removeprefix('T_')}({len(self)})"
