"""The TIGUKAT objectbase: a uniform behavioral object store.

:class:`Objectbase` is the facade tying the substrate together: the
axiomatic :class:`~repro.core.lattice.TypeLattice` for all schema
reasoning, plus registries of the first-class objects of the model
(types, behaviors, functions, classes, collections, and application
instances), plus behavioral dispatch with late binding.

Design rule: *the lattice is the single source of truth for schema*.
The objectbase never stores a second copy of supertype or interface
information; the uniform ``B_*`` behaviors of type objects delegate into
the lattice, which is precisely the paper's reduction of TIGUKAT to the
axiomatic model.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..core.config import LatticePolicy
from ..core.errors import (
    OperationRejected,
    SchemaError,
    UnknownPropertyError,
    UnknownTypeError,
)
from ..core.identity import Oid, OidGenerator
from ..core.lattice import TypeLattice
from .behaviors import Behavior, Signature
from .collections_ import ClassObject, CollectionObject
from .functions import Function, FunctionKind
from .objects import TigukatObject
from .types import TypeObject

__all__ = ["Objectbase", "DispatchError", "AmbiguousBehaviorError"]

#: Mapping of Python value types onto the atomic types of Figure 2 used
#: when signature checking behavior applications with raw values.
_ATOMIC_CONFORMANCE: dict[str, Callable[[Any], bool]] = {
    "T_string": lambda v: isinstance(v, str),
    "T_boolean": lambda v: isinstance(v, bool),
    "T_natural": lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
    "T_integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "T_real": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "T_atomic": lambda v: isinstance(v, (str, int, float, bool)),
}


class DispatchError(SchemaError):
    """A behavior application could not be resolved or type-checked."""


class AmbiguousBehaviorError(DispatchError):
    """A behavior name denotes several distinct semantics in an interface.

    "Conflict resolution of properties is at a semantic level in which the
    semantics of a property is unique" — so the model surfaces name
    collisions to the caller instead of silently picking one (that is
    Orion's ordered-superclass policy, implemented in
    :mod:`repro.orion.conflict`).
    """


class Objectbase:
    """A TIGUKAT objectbase instance.

    Parameters
    ----------
    policy:
        Lattice policy; defaults to TIGUKAT's (rooted and pointed).
    bootstrap:
        When true (default), installs the primitive type system of
        Figure 2 via :func:`repro.tigukat.primitive.bootstrap`.
    """

    def __init__(
        self, policy: LatticePolicy | None = None, bootstrap: bool = True
    ) -> None:
        self.lattice = TypeLattice(
            policy if policy is not None else LatticePolicy.tigukat()
        )
        self._oids = OidGenerator("tgk")
        self._objects: dict[Oid, TigukatObject] = {}
        self._type_objects: dict[str, TypeObject] = {}
        self._behaviors: dict[str, Behavior] = {}       # by semantics
        self._functions: dict[Oid, Function] = {}
        self._classes: dict[str, ClassObject] = {}      # by type name
        self._collections: dict[str, CollectionObject] = {}
        #: dispatch cache: type -> (lattice generation, linearization)
        self._linearizations: dict[str, tuple[int, list[str]]] = {}

        # Reify the policy-created root and base as type objects.
        for name in sorted(self.lattice.types()):
            self._reify_type(name)

        if bootstrap:
            from .primitive import bootstrap as install_primitives

            install_primitives(self)

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------

    def get(self, oid: Oid) -> TigukatObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise KeyError(f"no object with identity {oid}")
        return obj

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._objects

    def object_count(self) -> int:
        return len(self._objects)

    def type_object(self, name: str) -> TypeObject:
        obj = self._type_objects.get(name)
        if obj is None:
            raise UnknownTypeError(name)
        return obj

    def behavior(self, semantics: str) -> Behavior:
        b = self._behaviors.get(semantics)
        if b is None:
            raise UnknownPropertyError(semantics)
        return b

    def behaviors(self) -> frozenset[Behavior]:
        """The extent of ``C_behavior``: every defined behavior object."""
        return frozenset(self._behaviors.values())

    def function(self, oid: Oid) -> Function:
        f = self._functions.get(oid)
        if f is None:
            raise KeyError(f"no function with identity {oid}")
        return f

    def functions(self) -> frozenset[Function]:
        """The extent of ``C_function``."""
        return frozenset(self._functions.values())

    def class_of(self, type_name: str) -> ClassObject | None:
        """The class associated with a type, if one exists."""
        if type_name not in self.lattice:
            raise UnknownTypeError(type_name)
        return self._classes.get(type_name)

    def classes(self) -> frozenset[ClassObject]:
        """The extent of ``C_class``."""
        return frozenset(self._classes.values())

    def collection(self, name: str) -> CollectionObject:
        c = self._collections.get(name)
        if c is None:
            raise KeyError(f"no collection named {name!r}")
        return c

    def collections(self) -> frozenset[CollectionObject]:
        """The extent of ``C_collection`` (classes included: CSO ⊆ LSO)."""
        return frozenset(self._collections.values()) | frozenset(
            self._classes.values()
        )

    # ------------------------------------------------------------------
    # Behavior and function definition (AB / AF: *not* schema changes)
    # ------------------------------------------------------------------

    def define_behavior(
        self,
        semantics: str,
        signature: Signature | str,
    ) -> Behavior:
        """AB: define a new behavior object.

        "Defining a new behavior does not affect the schema because
        behaviors don't become part of the schema until after they are
        added as essential behaviors of some type."
        """
        if isinstance(signature, str):
            signature = Signature(signature)
        if semantics in self._behaviors:
            return self._behaviors[semantics]
        behavior = Behavior(self._oids.allocate(), semantics, signature)
        self._behaviors[semantics] = behavior
        self._objects[behavior.oid] = behavior
        return behavior

    def define_function(
        self,
        name: str,
        kind: FunctionKind = FunctionKind.COMPUTED,
        slot: str | None = None,
        body: Callable[..., Any] | None = None,
    ) -> Function:
        """AF: define a new function object (not a schema change)."""
        function = Function(self._oids.allocate(), name, kind, slot, body)
        self._functions[function.oid] = function
        self._objects[function.oid] = function
        return function

    def define_stored_behavior(
        self, semantics: str, name: str, result_type: str = "T_object"
    ) -> Behavior:
        """Convenience: a behavior whose default implementation is a
        stored slot named after its semantics (TIGUKAT's uniform treatment
        of what Orion would call an attribute)."""
        behavior = self.define_behavior(
            semantics, Signature(name, (), result_type)
        )
        return behavior

    def implement(
        self, semantics: str, type_name: str, function: Function
    ) -> Oid | None:
        """Associate ``function`` as the implementation of a behavior for
        a type (the association side of MB-CA).  Returns the OID of the
        previously associated function, if any."""
        if type_name not in self.lattice:
            raise UnknownTypeError(type_name)
        behavior = self.behavior(semantics)
        return behavior.associate(type_name, function.oid)

    def remove_function(self, oid: Oid) -> bool:
        """Low-level removal of a function object that implements nothing.

        Returns ``False`` (and does nothing) if any behavior still uses
        the function; the schema-aware DF operation with its rejection
        rule lives in :mod:`repro.tigukat.evolution`.
        """
        if any(
            oid in behavior.implementation_oids()
            for behavior in self._behaviors.values()
        ):
            return False
        function = self._functions.pop(oid, None)
        if function is None:
            return False
        self._objects.pop(oid, None)
        return True

    def implement_stored(self, semantics: str, type_name: str) -> Function:
        """Create and associate a stored-slot implementation in one step."""
        behavior = self.behavior(semantics)
        function = self.define_function(
            f"{behavior.name}@{type_name}", FunctionKind.STORED, slot=semantics
        )
        self.implement(semantics, type_name, function)
        return function

    # ------------------------------------------------------------------
    # Types and classes (primitive machinery used by the evolution ops)
    # ------------------------------------------------------------------

    def add_type(
        self,
        name: str,
        supertypes: Iterable[str] = (),
        behaviors: Iterable[str] = (),
        with_class: bool = False,
        frozen: bool = False,
    ) -> TypeObject:
        """B_new: create a type from supertypes and essential behaviors.

        ``behaviors`` are semantics keys of already-defined behavior
        objects; stored implementations are auto-created for any of them
        lacking an implementation on this type.
        """
        behavior_objs = [self.behavior(s) for s in behaviors]
        self.lattice.add_type(
            name,
            supertypes=supertypes,
            properties=[b.as_property() for b in behavior_objs],
            frozen=frozen,
        )
        type_object = self._reify_type(name)
        for b in behavior_objs:
            if b.implementation_for(name) is None:
                self.implement_stored(b.semantics, name)
        if with_class:
            self.add_class(name)
        return type_object

    def drop_type(self, name: str, migrate_to: str | None = None) -> None:
        """DT: drop a type, its class, and its extent.

        "When a type is dropped, the type's associated class and extent
        are dropped as well.  With the use of object migration techniques,
        the instances can be ported to some other type prior to being
        dropped."  Pass ``migrate_to`` to port instances.
        """
        if name not in self.lattice:
            raise UnknownTypeError(name)
        if self._classes.get(name) is not None:
            self.drop_class(name, migrate_to=migrate_to)
        self.lattice.drop_type(name)
        type_object = self._type_objects.pop(name)
        self._objects.pop(type_object.oid, None)
        # Implementations registered directly on the dropped type vanish.
        for behavior in self._behaviors.values():
            behavior.dissociate(name)

    def add_class(self, type_name: str) -> ClassObject:
        """AC: create the class uniquely associated with a type.

        "The creation of a class allows instances of its associated type
        to be created."
        """
        if type_name not in self.lattice:
            raise UnknownTypeError(type_name)
        if type_name in self._classes:
            raise OperationRejected(
                "AC", f"type {type_name!r} already has an associated class"
            )
        cls = ClassObject(
            self._oids.allocate(),
            f"C_{type_name.removeprefix('T_')}",
            of_type=type_name,
        )
        self._classes[type_name] = cls
        self._objects[cls.oid] = cls
        return cls

    def drop_class(
        self, type_name: str, migrate_to: str | None = None
    ) -> frozenset[Oid]:
        """DC: drop the class of a type along with its extent.

        "The extent managed by a dropped class is also dropped" — unless
        ``migrate_to`` names another type with a class, in which case the
        instances are ported first (object migration).  Returns the OIDs
        that were dropped (or migrated away).
        """
        cls = self._classes.get(type_name)
        if cls is None:
            raise OperationRejected(
                "DC", f"type {type_name!r} has no associated class"
            )
        members = cls.members()
        if migrate_to is not None:
            from ..propagation.migration import Migrator

            Migrator(self).migrate_extent(type_name, migrate_to)
            members = cls.members()  # anything migration left behind
        for oid in members:
            self._objects.pop(oid, None)
        del self._classes[type_name]
        self._objects.pop(cls.oid, None)
        return members

    def _reify_type(self, name: str) -> TypeObject:
        type_object = TypeObject(self._oids.allocate(), name, self.lattice)
        self._type_objects[name] = type_object
        self._objects[type_object.oid] = type_object
        return type_object

    # ------------------------------------------------------------------
    # Collections (AL / DL)
    # ------------------------------------------------------------------

    def add_collection(
        self, name: str, member_type: str = "T_object"
    ) -> CollectionObject:
        """AL: create a new, empty, user-managed collection."""
        if name in self._collections:
            raise OperationRejected("AL", f"collection {name!r} already exists")
        if member_type not in self.lattice:
            raise UnknownTypeError(member_type)
        collection = CollectionObject(
            self._oids.allocate(), name, member_type=member_type
        )
        self._collections[name] = collection
        self._objects[collection.oid] = collection
        return collection

    def drop_collection(self, name: str) -> CollectionObject:
        """DL: drop a collection.  "Unlike classes, dropping a collection
        does not drop its members." """
        collection = self._collections.pop(name, None)
        if collection is None:
            raise OperationRejected("DL", f"no collection named {name!r}")
        self._objects.pop(collection.oid, None)
        return collection

    # ------------------------------------------------------------------
    # Instances and behavioral dispatch
    # ------------------------------------------------------------------

    def create_object(self, type_name: str, **slots: Any) -> TigukatObject:
        """AO: create an instance through the class of ``type_name``.

        "Object creation occurs only through classes."  Keyword arguments
        pre-populate stored behaviors by *behavior name* (checked against
        the type's interface).
        """
        cls = self.class_of(type_name)
        if cls is None:
            raise OperationRejected(
                "AO",
                f"type {type_name!r} has no associated class; "
                f"instances cannot be created",
            )
        obj = TigukatObject(self._oids.allocate(), type_name)
        self._objects[obj.oid] = obj
        cls.insert(obj.oid)
        for name, value in slots.items():
            self.apply(obj, name, value)
        return obj

    def delete_object(self, oid: Oid) -> None:
        """DO: delete an application instance."""
        obj = self.get(oid)
        if not type(obj) is TigukatObject:
            raise OperationRejected(
                "DO", "modeling constructs are dropped via their own operations"
            )
        cls = self._classes.get(obj.type_name)
        if cls is not None:
            cls.remove(oid)
        del self._objects[oid]

    def extent(self, type_name: str, deep: bool = True) -> frozenset[Oid]:
        """The extent of a type: its class members, plus (when ``deep``)
        the members of every subtype's class (inclusion polymorphism)."""
        if type_name not in self.lattice:
            raise UnknownTypeError(type_name)
        names = {type_name}
        if deep:
            names |= self.lattice.all_subtypes(type_name)
        out: set[Oid] = set()
        for n in names:
            cls = self._classes.get(n)
            if cls is not None:
                out.update(cls.members())
        return frozenset(out)

    def resolve_behavior(
        self, type_name: str, name_or_semantics: str
    ) -> Behavior:
        """Resolve a behavior reference within a type's interface.

        Accepts either the exact semantics key or the behavior's
        application name.  A name shared by several distinct behaviors in
        the interface raises :class:`AmbiguousBehaviorError`.
        """
        interface = self.lattice.interface(type_name)
        by_semantics = {p.semantics: p for p in interface}
        if name_or_semantics in by_semantics:
            return self.behavior(name_or_semantics)
        candidates = [
            p for p in interface if p.name == name_or_semantics
        ]
        if not candidates:
            raise DispatchError(
                f"type {type_name!r} has no behavior {name_or_semantics!r} "
                f"in its interface"
            )
        if len(candidates) > 1:
            raise AmbiguousBehaviorError(
                f"name {name_or_semantics!r} denotes "
                f"{sorted(p.semantics for p in candidates)} in the "
                f"interface of {type_name!r}; use the semantics key"
            )
        return self.behavior(candidates[0].semantics)

    def _linearize(self, type_name: str) -> list[str]:
        """Most-specific-first ordering of ``PL(t)`` for implementation
        lookup: the receiver type, then supertypes by decreasing depth
        (later in the lattice's topological order = more specific).

        Cached per (type, lattice generation): dispatch is the hot path
        of a behavioral objectbase, and the linearization only changes
        when the schema does.
        """
        generation = self.lattice.generation
        cached = self._linearizations.get(type_name)
        if cached is not None and cached[0] == generation:
            return cached[1]
        members = self.lattice.pl(type_name)
        order = self.lattice.derivation.order
        rank = {t: i for i, t in enumerate(order)}
        ranked = sorted(members, key=lambda t: rank[t], reverse=True)
        ranked.remove(type_name)
        result = [type_name, *ranked]
        self._linearizations[type_name] = (generation, result)
        return result

    def lookup_implementation(
        self, type_name: str, behavior: Behavior
    ) -> tuple[str, Function] | None:
        """Late binding: the most specific implementation of ``behavior``
        applicable to ``type_name`` (the overriding type and the
        function), or ``None``."""
        for candidate in self._linearize(type_name):
            f_oid = behavior.implementation_for(candidate)
            if f_oid is not None:
                return candidate, self._functions[f_oid]
        return None

    def apply(
        self,
        receiver: TigukatObject | Oid,
        behavior_name: str,
        *args: Any,
    ) -> Any:
        """Apply a behavior to a receiver: the paper's ``o.b`` dot notation.

        Resolution: the behavior must be in the interface of the
        receiver's type (the axiomatic ``I(t)``); the implementation is
        late-bound through the supertype linearization; argument values
        are conformance-checked against the signature.
        """
        if isinstance(receiver, Oid):
            receiver = self.get(receiver)
        behavior = self.resolve_behavior(receiver.type_name, behavior_name)
        sig = behavior.signature
        if args and sig.argument_types:
            if len(args) != sig.arity:
                raise DispatchError(
                    f"{behavior} expects {sig.arity} arguments, got {len(args)}"
                )
            for value, expected in zip(args, sig.argument_types):
                if not self.conforms_value(value, expected):
                    raise DispatchError(
                        f"argument {value!r} does not conform to {expected}"
                    )
        found = self.lookup_implementation(receiver.type_name, behavior)
        if found is None:
            raise DispatchError(
                f"behavior {behavior} has no implementation reachable from "
                f"type {receiver.type_name!r}"
            )
        __, function = found
        return function.invoke(self, receiver, *args)

    def conforms_value(self, value: Any, type_name: str) -> bool:
        """Whether a runtime value conforms to a type reference.

        TIGUKAT objects use lattice subtyping; raw Python values are
        checked against the atomic types of Figure 2; ``T_object``
        accepts anything.
        """
        if type_name == "T_object":
            return True
        if isinstance(value, TigukatObject):
            return self.lattice.is_subtype(value.type_name, type_name)
        if type_name == "T_collection":
            # Raw Python sequences stand in for transient collections
            # (the primitive B_new signature takes two of them).
            return isinstance(value, (tuple, list, set, frozenset))
        checker = _ATOMIC_CONFORMANCE.get(type_name)
        if checker is not None:
            return checker(value)
        return False

    def __repr__(self) -> str:
        return (
            f"Objectbase(types={len(self._type_objects)}, "
            f"behaviors={len(self._behaviors)}, "
            f"functions={len(self._functions)}, "
            f"classes={len(self._classes)}, "
            f"objects={len(self._objects)})"
        )
