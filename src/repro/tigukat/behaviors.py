"""Behaviors: the TIGUKAT realization of the paper's generic *properties*.

"Behaviors in TIGUKAT correspond to the generic concept of properties
discussed in Section 2."  A behavior has a *semantics* — "a unique
description of the behavior" — of which the :class:`Signature` (name,
argument types, result type) is the machine-checkable part: "We use
signatures as a partial semantics of behaviors."

A behavior is decoupled from its implementations: "We clearly separate the
definition of a behavior from its possible implementations
(functions/methods).  This supports overloading and late binding."  The
per-type association ``B_implementation(t)`` lives here; the functions
themselves are :class:`repro.tigukat.functions.Function` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.identity import Oid
from ..core.properties import Property
from .objects import TigukatObject

__all__ = ["Signature", "Behavior"]


@dataclass(frozen=True)
class Signature:
    """The partial semantics of a behavior.

    ``name`` is the reference used to apply the behavior (``o.b`` in the
    paper's dot notation); ``argument_types`` and ``result_type`` are type
    references checked against the lattice on application.
    """

    name: str
    argument_types: tuple[str, ...] = ()
    result_type: str = "T_object"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a behavior signature needs a name")

    @property
    def arity(self) -> int:
        return len(self.argument_types)

    def __str__(self) -> str:
        args = ", ".join(self.argument_types)
        return f"{self.name}({args}) -> {self.result_type}"


class Behavior(TigukatObject):
    """A first-class behavior object (instances of ``T_behavior``).

    The behavior's identity in the axiomatic model is its semantics key;
    :meth:`as_property` produces the corresponding
    :class:`~repro.core.properties.Property` so that the TIGUKAT layer can
    delegate all schema reasoning to the axiomatic core.
    """

    __slots__ = ("_semantics", "_signature", "_implementations")

    def __init__(self, oid: Oid, semantics: str, signature: Signature) -> None:
        super().__init__(oid, "T_behavior")
        if not semantics:
            raise ValueError("a behavior needs a non-empty semantics key")
        self._semantics = semantics
        self._signature = signature
        # B_implementation: type name -> function OID (late bound).
        self._implementations: dict[str, Oid] = {}

    @property
    def semantics(self) -> str:
        return self._semantics

    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def name(self) -> str:
        """The application name (from the signature)."""
        return self._signature.name

    def as_property(self) -> Property:
        """The axiomatic-model view of this behavior."""
        return Property(self._semantics, self._signature.name)

    # -- implementation association (B_implementation) ------------------

    def implementation_for(self, type_name: str) -> Oid | None:
        """The function associated with this behavior *directly on* the
        given type, or ``None`` (inheritance of implementations is
        resolved by the objectbase dispatcher, not here)."""
        return self._implementations.get(type_name)

    def associate(self, type_name: str, function_oid: Oid) -> Oid | None:
        """Associate (or re-associate) an implementation for a type.

        Returns the previously associated function OID, if any — the
        MB-CA operation needs it to decide whether the old function left
        ``FSO``.
        """
        previous = self._implementations.get(type_name)
        self._implementations[type_name] = function_oid
        return previous

    def dissociate(self, type_name: str) -> Oid | None:
        """Remove the implementation association for a type."""
        return self._implementations.pop(type_name, None)

    def implementing_types(self) -> frozenset[str]:
        """All types with a directly associated implementation."""
        return frozenset(self._implementations)

    def implementation_oids(self) -> frozenset[Oid]:
        """Every function OID associated through this behavior."""
        return frozenset(self._implementations.values())

    def __str__(self) -> str:
        return f"B_{self._signature.name}<{self._semantics}>"
