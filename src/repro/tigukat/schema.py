"""Schema-object sets and the schema definition (Definitions 3.1 / 3.2).

"All objects managed by TIGUKAT fit in the category of type, class,
behavior, function, collection or other.  These categories are used to
distinguish the 'schema' of the model and the changes that affect it."

The five sets:

* ``TSO`` — type schema objects: the extent of ``C_type`` (≡ ``T`` in the
  axiomatic model);
* ``BSO`` — behavior schema objects: the extended union of the interfaces
  of all types ("Only those behaviors defined in the interface of some
  type are considered to be behavior schema objects", so ``BSO ⊆
  C_behavior``; ``BSO`` represents all properties, ≡ ``I(⊥)``);
* ``FSO`` — function schema objects: the extended union of the behavior
  implementations over all types (``FSO ⊆ C_function``);
* ``LSO`` — collection schema objects: the extent of ``C_collection``;
* ``CSO`` — class schema objects: the extent of ``C_class``
  (``CSO ⊆ LSO``).

``schema = TSO ∪ BSO ∪ FSO ∪ LSO ∪ CSO`` (Definition 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.identity import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .store import Objectbase

__all__ = ["SchemaSets", "schema_sets", "schema_oids"]


@dataclass(frozen=True)
class SchemaSets:
    """A snapshot of the five schema-object sets, by identity."""

    tso: frozenset[str]   # type names (references to type objects)
    bso: frozenset[str]   # behavior semantics keys
    fso: frozenset[Oid]   # function identities
    lso: frozenset[Oid]   # collection identities (classes included)
    cso: frozenset[Oid]   # class identities

    @property
    def schema_size(self) -> int:
        """|schema| per Definition 3.2 (the sets are pairwise disjoint in
        identity space except CSO ⊆ LSO, counted once)."""
        return len(self.tso) + len(self.bso) + len(self.fso) + len(self.lso)

    def invariants_ok(self, store: "Objectbase") -> bool:
        """The subset inclusions stated by Definition 3.1."""
        behavior_keys = {b.semantics for b in store.behaviors()}
        function_oids = {f.oid for f in store.functions()}
        class_oids = {c.oid for c in store.classes()}
        return (
            self.bso <= behavior_keys          # BSO ⊆ C_behavior
            and self.fso <= function_oids      # FSO ⊆ C_function
            and self.cso <= class_oids
            and self.cso <= self.lso           # CSO ⊆ LSO
        )


def schema_sets(store: "Objectbase") -> SchemaSets:
    """Compute the five schema-object sets of Definition 3.1.

    ``BSO`` is ``⋃ t.B_interface`` over all types; ``FSO`` is
    ``⋃ b.B_implementation(t)`` over all behaviors in ``BSO`` and all
    types in ``TSO``.
    """
    lattice = store.lattice
    tso = lattice.types()

    bso: set[str] = set()
    for t in tso:
        bso.update(p.semantics for p in lattice.interface(t))

    fso: set[Oid] = set()
    for semantics in bso:
        behavior = store.behavior(semantics)
        for t in behavior.implementing_types():
            if t in tso:
                oid = behavior.implementation_for(t)
                if oid is not None:
                    fso.add(oid)

    cso = frozenset(c.oid for c in store.classes())
    lso = frozenset(c.oid for c in store.collections())  # CSO ⊆ LSO already

    return SchemaSets(
        tso=frozenset(tso),
        bso=frozenset(bso),
        fso=frozenset(fso),
        lso=lso,
        cso=cso,
    )


def schema_oids(store: "Objectbase") -> frozenset[Oid]:
    """Definition 3.2 as a single identity set: the union of the schema
    object sets, with type/behavior references resolved to OIDs."""
    sets = schema_sets(store)
    oids: set[Oid] = set()
    for name in sets.tso:
        oids.add(store.type_object(name).oid)
    for semantics in sets.bso:
        oids.add(store.behavior(semantics).oid)
    oids.update(sets.fso)
    oids.update(sets.lso)
    oids.update(sets.cso)
    return frozenset(oids)
