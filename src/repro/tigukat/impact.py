"""Objectbase-level impact analysis: derived changes + instance exposure.

Extends :mod:`repro.core.impact` from the schema to the data: for each
type whose interface would change, how many live instances are exposed
(would need coercion under conversion, or screening on next access), and
how many would be destroyed or need migration for DT/DC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.impact import ImpactReport, analyze_impact
from ..core.operations import DropType, SchemaOperation

if TYPE_CHECKING:  # pragma: no cover
    from .store import Objectbase

__all__ = ["ObjectbaseImpact", "analyze_objectbase_impact"]


@dataclass
class ObjectbaseImpact:
    """Schema impact plus instance-level exposure."""

    schema: ImpactReport
    #: type -> live instances whose interface changes (deep extent)
    exposed_instances: dict[str, int] = field(default_factory=dict)
    #: instances that DT/DC would destroy unless migrated
    instances_at_risk: int = 0

    @property
    def total_exposed(self) -> int:
        return sum(self.exposed_instances.values())

    def summary(self) -> str:
        lines = [self.schema.summary()]
        if self.exposed_instances:
            lines.append(
                "exposed instances: "
                + ", ".join(
                    f"{t}: {n}"
                    for t, n in sorted(self.exposed_instances.items())
                )
            )
        if self.instances_at_risk:
            lines.append(
                f"instances at risk (destroyed unless migrated): "
                f"{self.instances_at_risk}"
            )
        return "\n".join(lines)


def analyze_objectbase_impact(
    store: "Objectbase", operation: SchemaOperation
) -> ObjectbaseImpact:
    """Dry-run an operation against the store's lattice and count the
    live instances each interface change would expose."""
    schema = analyze_impact(store.lattice, operation)
    impact = ObjectbaseImpact(schema=schema)
    if not schema.accepted:
        return impact

    for t in sorted(schema.interface_changes):
        if t not in store.lattice:
            continue
        count = len(store.extent(t, deep=False))
        if count:
            impact.exposed_instances[t] = count

    if isinstance(operation, DropType) and operation.name in store.lattice:
        cls = store.class_of(operation.name)
        if cls is not None:
            impact.instances_at_risk = len(cls)
    return impact
