"""Uniform first-class objects of the TIGUKAT model.

"The model is uniform in that every component of information, including
its semantics, is modeled as a first-class object with well-defined
behavior" (Section 3.1).  Accordingly, :class:`TigukatObject` is the one
runtime representation shared by application objects *and* the modeling
constructs themselves (types, classes, behaviors, functions, collections
are all subclasses carrying extra structure).

"Objects consist of a unique identity and an encapsulated state.  Access
and manipulation of objects occurs exclusively through the application of
behaviors."  State is therefore held in a private slot table keyed by
behavior semantics; the public road to it is
:meth:`repro.tigukat.store.Objectbase.apply`.
"""

from __future__ import annotations

from typing import Any

from ..core.identity import Oid

__all__ = ["TigukatObject"]


class TigukatObject:
    """An object with unique immutable identity and encapsulated state.

    Parameters
    ----------
    oid:
        The immutable identity (allocated by the objectbase).
    type_name:
        Reference to the type whose class created this object.
    """

    __slots__ = ("_oid", "_type_name", "_state")

    def __init__(self, oid: Oid, type_name: str) -> None:
        self._oid = oid
        self._type_name = type_name
        self._state: dict[str, Any] = {}

    @property
    def oid(self) -> Oid:
        return self._oid

    @property
    def type_name(self) -> str:
        """The type this object is an instance of (``B_typeOf``)."""
        return self._type_name

    def _migrate(self, new_type: str) -> None:
        """Reassign this object's type (object migration support).

        Internal: migration is driven by
        :class:`repro.propagation.migration.Migrator`, which also fixes
        class extents; identity is preserved.
        """
        self._type_name = new_type

    # -- encapsulated state (reachable only through behaviors) ---------

    def _get_slot(self, semantics: str) -> Any:
        return self._state.get(semantics)

    def _set_slot(self, semantics: str, value: Any) -> None:
        self._state[semantics] = value

    def _drop_slot(self, semantics: str) -> None:
        self._state.pop(semantics, None)

    def _slots(self) -> frozenset[str]:
        return frozenset(self._state)

    def __eq__(self, other: object) -> bool:
        # Identity equality: two objects are the same object iff their
        # OIDs coincide ("objects are created with a unique, immutable
        # object identity").
        if isinstance(other, TigukatObject):
            return self._oid == other._oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._oid)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._oid} : {self._type_name}>"
