"""TIGUKAT dynamic schema evolution: Section 3.3 and Table 3.

Implements every operation of the paper's Section 3.3 over an
:class:`~repro.tigukat.store.Objectbase` (which in turn delegates all
schema reasoning to the axiomatic core):

====== ===============================================================
Code   Semantics of change
====== ===============================================================
MT-AB  add a behavior as essential component of a type
MT-DB  drop a behavior as essential component of a type
MT-ASR add an essential supertype (subtype relationship)
MT-DSR drop an essential supertype (subtype relationship)
AT     add (create) a type
DT     drop a type (with its class and extent)
AC     add the class of a type
DC     drop the class of a type (with its extent)
DB     drop a behavior in its entirety
MB-CA  change the function associated with a behavior on a type
DF     drop a function in its entirety (with the paper's rejection rule)
AL     add a collection
DL     drop a collection (members survive)
====== ===============================================================

It also encodes Table 3 — the classification of all object-category ×
operation-kind combinations into schema-evolution changes (the table's
bold entries) and non-schema changes (the emphasized ones) — as a
machine-readable registry, :data:`OPERATION_TABLE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..core.errors import OperationRejected
from ..core.identity import Oid
from ..core.properties import Property
from .behaviors import Behavior
from .functions import Function

if TYPE_CHECKING:  # pragma: no cover
    from .store import Objectbase

__all__ = [
    "TableEntry",
    "OPERATION_TABLE",
    "schema_evolution_codes",
    "SchemaManager",
]


# ----------------------------------------------------------------------
# Table 3: classification of schema changes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableEntry:
    """One cell of Table 3."""

    category: str        # Type / Class / Behavior / Function / Collection / Other
    kind: str            # Add / Drop / Modify
    description: str     # the paper's cell text
    code: str | None     # operation code when the paper names one
    is_schema_change: bool  # bold in the paper's table

    def __str__(self) -> str:
        marker = "**" if self.is_schema_change else ""
        return f"{marker}{self.description}{marker}"


OPERATION_TABLE: tuple[TableEntry, ...] = (
    # Type (T)
    TableEntry("Type", "Add", "subtyping", "AT", True),
    TableEntry("Type", "Drop", "type deletion", "DT", True),
    TableEntry("Type", "Modify", "add behavior", "MT-AB", True),
    TableEntry("Type", "Modify", "drop behavior", "MT-DB", True),
    TableEntry("Type", "Modify", "add subtype relationship", "MT-ASR", True),
    TableEntry("Type", "Modify", "drop subtype relationship", "MT-DSR", True),
    # Class (C)
    TableEntry("Class", "Add", "class creation", "AC", True),
    TableEntry("Class", "Drop", "class deletion", "DC", True),
    TableEntry("Class", "Modify", "extent change", "MC", False),
    # Behavior (B)
    TableEntry("Behavior", "Add", "behavior definition", "AB", False),
    TableEntry("Behavior", "Drop", "behavior deletion", "DB", True),
    TableEntry("Behavior", "Modify", "change association", "MB-CA", True),
    # Function (F)
    TableEntry("Function", "Add", "function definition", "AF", False),
    TableEntry("Function", "Drop", "function deletion", "DF", True),
    TableEntry("Function", "Modify", "implementation change", "MF", False),
    # Collection (L)
    TableEntry("Collection", "Add", "collection creation", "AL", True),
    TableEntry("Collection", "Drop", "collection deletion", "DL", True),
    TableEntry("Collection", "Modify", "extent change", "ML", False),
    # Other (O)
    TableEntry("Other", "Add", "instance creation", "AO", False),
    TableEntry("Other", "Drop", "instance deletion", "DO", False),
    TableEntry("Other", "Modify", "instance update", "MO", False),
)


def schema_evolution_codes() -> frozenset[str]:
    """The codes of the bold (schema-evolution) entries of Table 3."""
    return frozenset(
        e.code for e in OPERATION_TABLE if e.is_schema_change and e.code
    )


# ----------------------------------------------------------------------
# The schema manager: Section 3.3 operations with logging
# ----------------------------------------------------------------------


@dataclass
class EvolutionRecord:
    """Audit record of one executed schema-evolution operation."""

    seq: int
    code: str
    detail: str
    arguments: dict[str, Any] = field(default_factory=dict)


class SchemaManager:
    """Executes the Section 3.3 operations against an objectbase.

    Every mutating call is validated, executed, logged, and leaves the
    axiomatic lattice in a state satisfying all nine axioms (the lattice
    enforces the relevant rejections itself; this layer adds the
    TIGUKAT-specific rules for classes, functions and collections).
    """

    def __init__(self, store: "Objectbase") -> None:
        self.store = store
        self.log: list[EvolutionRecord] = []
        self._listeners: list[Any] = []

    def subscribe(self, listener) -> None:
        """Register a callable invoked with every
        :class:`EvolutionRecord` after the operation applied — the hook
        automatic change propagation attaches to (see
        :class:`repro.propagation.auto.AutoPropagator`)."""
        self._listeners.append(listener)

    def _record(self, code: str, detail: str, **arguments: Any) -> None:
        record = EvolutionRecord(len(self.log), code, detail, arguments)
        self.log.append(record)
        for listener in self._listeners:
            listener(record)

    # -- behaviors on types ---------------------------------------------

    def mt_ab(self, type_name: str, behavior: Behavior | str) -> Property:
        """MT-AB: "adds a behavior as an essential component of a type and
        the behavior then becomes part of BSO.  To add behavior b to type
        t, b is added to Ne(t) and N(t), H(t), I(t) are recomputed."

        A stored implementation is auto-created when the behavior has no
        implementation reachable from ``type_name`` (so freshly added
        behaviors are immediately applicable).
        """
        behavior = self._resolve_behavior(behavior)
        p = behavior.as_property()
        self.store.lattice.add_essential_property(type_name, p)
        if self.store.lookup_implementation(type_name, behavior) is None:
            self.store.implement_stored(behavior.semantics, type_name)
        self._record(
            "MT-AB", f"added {behavior} to Ne({type_name})",
            type=type_name, behavior=behavior.semantics,
        )
        return p

    def mt_db(self, type_name: str, behavior: Behavior | str) -> bool:
        """MT-DB: drop a behavior as an essential component of a type.

        "Note that this may not actually remove b from the interface of t
        because b may be inherited from one or more supertypes of t."
        Returns whether the behavior left the interface of the type.
        """
        behavior = self._resolve_behavior(behavior)
        p = behavior.as_property()
        self.store.lattice.drop_essential_property(type_name, p)
        gone = p not in self.store.lattice.interface(type_name)
        if gone:
            self._drop_orphaned_implementation(behavior, type_name)
        self._record(
            "MT-DB",
            f"dropped {behavior} from Ne({type_name})"
            + ("" if gone else " (still inherited)"),
            type=type_name, behavior=behavior.semantics,
        )
        return gone

    # -- subtype relationships -------------------------------------------

    def mt_asr(self, type_name: str, supertype: str) -> bool:
        """MT-ASR: add an essential supertype.  "Due to the axiom of
        acyclicity, the addition ... is rejected if it introduces a cycle"
        — enforced by the lattice (raises
        :class:`~repro.core.errors.CycleError`)."""
        changed = self.store.lattice.add_essential_supertype(
            type_name, supertype
        )
        self._record(
            "MT-ASR", f"added {supertype} to Pe({type_name})",
            type=type_name, supertype=supertype,
        )
        return changed

    def mt_dsr(self, type_name: str, supertype: str) -> bool:
        """MT-DSR: drop an essential supertype.  "Due to the axiom of
        rootedness ... a subtype relationship to T_object cannot be
        dropped" — enforced by the lattice."""
        changed = self.store.lattice.drop_essential_supertype(
            type_name, supertype
        )
        if changed:
            self._adopt_implementations()
        self._record(
            "MT-DSR", f"dropped {supertype} from Pe({type_name})",
            type=type_name, supertype=supertype,
        )
        return changed

    # -- types -------------------------------------------------------------

    def at(
        self,
        name: str,
        supertypes: tuple[str, ...] = (),
        behaviors: tuple[str, ...] = (),
        with_class: bool = False,
    ) -> str:
        """AT: create a type via B_new ("accepts a collection of
        supertypes and a collection of behaviors as arguments")."""
        self.store.add_type(
            name, supertypes=supertypes, behaviors=behaviors,
            with_class=with_class,
        )
        self._record(
            "AT", f"created type {name}",
            name=name, supertypes=list(supertypes),
            behaviors=list(behaviors),
        )
        return name

    def dt(self, name: str, migrate_to: str | None = None) -> None:
        """DT: drop a type (with class and extent; optionally migrating
        instances first)."""
        self.store.drop_type(name, migrate_to=migrate_to)
        self._adopt_implementations()
        self._record("DT", f"dropped type {name}", name=name,
                     migrate_to=migrate_to)

    # -- classes -----------------------------------------------------------

    def ac(self, type_name: str) -> Oid:
        """AC: create the class uniquely associated with a type."""
        cls = self.store.add_class(type_name)
        self._record("AC", f"created class of {type_name}", type=type_name)
        return cls.oid

    def dc(self, type_name: str, migrate_to: str | None = None) -> None:
        """DC: drop the class of a type and its extent."""
        self.store.drop_class(type_name, migrate_to=migrate_to)
        self._record("DC", f"dropped class of {type_name}", type=type_name,
                     migrate_to=migrate_to)

    # -- behaviors and functions globally -----------------------------------

    def db(self, behavior: Behavior | str) -> frozenset[str]:
        """DB: drop a behavior in its entirety.

        "A dropped behavior is dropped from all types that define the
        behavior as essential."  Returns the set of types touched.
        """
        behavior = self._resolve_behavior(behavior)
        p = behavior.as_property()
        touched = self.store.lattice.drop_property_everywhere(p)
        for t in behavior.implementing_types():
            behavior.dissociate(t)
        self.store._behaviors.pop(behavior.semantics, None)
        self.store._objects.pop(behavior.oid, None)
        self._record(
            "DB", f"dropped behavior {behavior} from {sorted(touched)}",
            behavior=behavior.semantics,
        )
        return touched

    def mb_ca(
        self, behavior: Behavior | str, type_name: str, function: Function
    ) -> Oid | None:
        """MB-CA: change the implementation association of a behavior.

        Returns the OID of the replaced function (which "could also affect
        the function's membership in FSO").
        """
        behavior = self._resolve_behavior(behavior)
        previous = self.store.implement(
            behavior.semantics, type_name, function
        )
        self._record(
            "MB-CA",
            f"associated {function} with {behavior} on {type_name}",
            behavior=behavior.semantics, type=type_name,
            function=str(function.oid),
        )
        return previous

    def df(self, function: Function | Oid) -> None:
        """DF: drop a function in its entirety.

        "The operation is rejected if the function is associated as the
        implementation of a behavior in a type that has an associated
        class."
        """
        oid = function.oid if isinstance(function, Function) else function
        blockers = [
            (behavior, t)
            for behavior in self.store.behaviors()
            for t in behavior.implementing_types()
            if behavior.implementation_for(t) == oid
            and self.store.class_of(t) is not None
        ]
        if blockers:
            behavior, t = blockers[0]
            raise OperationRejected(
                "DF",
                f"function implements {behavior} on {t!r}, "
                f"which has an associated class",
            )
        # Safe to dissociate from class-less types and remove.
        for behavior in self.store.behaviors():
            for t in list(behavior.implementing_types()):
                if behavior.implementation_for(t) == oid:
                    behavior.dissociate(t)
        if not self.store.remove_function(oid):
            raise OperationRejected("DF", f"no function with identity {oid}")
        self._record("DF", f"dropped function {oid}", function=str(oid))

    # -- collections ---------------------------------------------------------

    def al(self, name: str, member_type: str = "T_object") -> Oid:
        """AL: add a new empty collection."""
        collection = self.store.add_collection(name, member_type)
        self._record("AL", f"created collection {name}", name=name)
        return collection.oid

    def dl(self, name: str) -> frozenset[Oid]:
        """DL: drop a collection; "dropping a collection does not drop its
        members."  Returns the surviving member identities."""
        collection = self.store.drop_collection(name)
        self._record("DL", f"dropped collection {name}", name=name)
        return collection.members()

    # -- internals -----------------------------------------------------------

    def _resolve_behavior(self, behavior: Behavior | str) -> Behavior:
        if isinstance(behavior, Behavior):
            return behavior
        return self.store.behavior(behavior)

    def _adopt_implementations(self) -> None:
        """Implementation adoption after a lattice cut (MT-DSR / DT).

        The adoption of an essential inherited property as native
        (Section 2's taxBracket scenario) must carry an implementation
        with it: the old one lived on the now-unreachable supertype.  Any
        native behavior left without a reachable implementation gets a
        fresh stored one, keeping every interface applicable.
        """
        lattice = self.store.lattice
        for t in lattice.types():
            if lattice.is_frozen(t):
                continue
            for p in lattice.n(t):
                behavior = self.store._behaviors.get(p.semantics)
                if behavior is None:
                    continue
                if self.store.lookup_implementation(t, behavior) is None:
                    self.store.implement_stored(behavior.semantics, t)

    def _drop_orphaned_implementation(
        self, behavior: Behavior, type_name: str
    ) -> None:
        """After a behavior leaves a type's interface, its direct
        implementation association on that type is dangling; retract it
        (and garbage-collect the function when nothing else uses it)."""
        oid = behavior.dissociate(type_name)
        if oid is not None:
            self.store.remove_function(oid)
