"""The TIGUKAT uniform behavioral objectbase (paper Section 3).

Public surface: the :class:`Objectbase` facade, the first-class object
kinds (:class:`TypeObject`, :class:`Behavior`, :class:`Function`,
:class:`ClassObject`, :class:`CollectionObject`), the primitive type
system bootstrap (Figure 2), the schema-object sets of Definition 3.1,
and the :class:`SchemaManager` executing the Section 3.3 operations.
"""

from .behaviors import Behavior, Signature
from .collections_ import ClassObject, CollectionObject
from .evolution import (
    OPERATION_TABLE,
    SchemaManager,
    TableEntry,
    schema_evolution_codes,
)
from .functions import Function, FunctionKind
from .impact import ObjectbaseImpact, analyze_objectbase_impact
from .signatures import RefinementIssue, check_refinement, safe_implement
from .objects import TigukatObject
from .primitive import PRIMITIVE_TYPE_BEHAVIORS, PRIMITIVE_TYPES, bootstrap
from .schema import SchemaSets, schema_oids, schema_sets
from .store import AmbiguousBehaviorError, DispatchError, Objectbase
from .types import TypeObject

__all__ = [
    "Objectbase",
    "SchemaManager",
    "TigukatObject",
    "TypeObject",
    "Behavior",
    "Signature",
    "Function",
    "FunctionKind",
    "ClassObject",
    "CollectionObject",
    "DispatchError",
    "ObjectbaseImpact",
    "analyze_objectbase_impact",
    "RefinementIssue",
    "check_refinement",
    "safe_implement",
    "AmbiguousBehaviorError",
    "PRIMITIVE_TYPES",
    "PRIMITIVE_TYPE_BEHAVIORS",
    "bootstrap",
    "SchemaSets",
    "schema_sets",
    "schema_oids",
    "OPERATION_TABLE",
    "TableEntry",
    "schema_evolution_codes",
]
