"""Functions: implementations of behaviors (instances of ``T_function``).

"[Behaviors'] possible implementations (functions/methods)" come in the
two flavors the paper contrasts with Orion: "stored properties and
computed methods are separate concepts in Orion ... while in TIGUKAT they
are treated uniformly as behaviors and, therefore, a single mechanism
suffices for both."  The single mechanism is this class: a *stored*
function reads/writes a state slot of the receiver; a *computed* function
runs arbitrary code.  Which flavor backs a behavior is invisible to
callers of :meth:`Objectbase.apply` — that is the uniformity claim made
executable.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from ..core.identity import Oid
from .objects import TigukatObject

__all__ = ["FunctionKind", "Function"]


class FunctionKind(enum.Enum):
    """How an implementation produces its result."""

    STORED = "stored"      # slot access on the receiver's state
    COMPUTED = "computed"  # arbitrary code over (store, receiver, *args)


class Function(TigukatObject):
    """A first-class implementation object.

    Parameters
    ----------
    oid:
        Identity.
    name:
        Human reference (``F_`` prefix by convention).
    kind:
        Stored or computed.
    slot:
        For stored functions, the state-slot key (defaults to the
        semantics of the behavior it implements at association time).
    body:
        For computed functions, a callable ``(store, receiver, *args)``.
    """

    __slots__ = ("_name", "_kind", "_slot", "_body")

    def __init__(
        self,
        oid: Oid,
        name: str,
        kind: FunctionKind,
        slot: str | None = None,
        body: Callable[..., Any] | None = None,
    ) -> None:
        super().__init__(oid, "T_function")
        if kind is FunctionKind.STORED and slot is None:
            raise ValueError("a stored function needs a slot key")
        if kind is FunctionKind.COMPUTED and body is None:
            raise ValueError("a computed function needs a body")
        self._name = name
        self._kind = kind
        self._slot = slot
        self._body = body

    @property
    def name(self) -> str:
        return self._name

    @property
    def kind(self) -> FunctionKind:
        return self._kind

    @property
    def slot(self) -> str | None:
        return self._slot

    def invoke(self, store: Any, receiver: TigukatObject, *args: Any) -> Any:
        """Execute the implementation against a receiver.

        Stored functions act as getter (no args) or setter (one arg);
        computed functions delegate to their body.  The argument
        convention mirrors the paper's dot notation ``o.b(...)``.
        """
        if self._kind is FunctionKind.STORED:
            assert self._slot is not None
            if not args:
                return receiver._get_slot(self._slot)
            if len(args) == 1:
                receiver._set_slot(self._slot, args[0])
                return args[0]
            raise TypeError(
                f"stored function {self._name!r} takes 0 or 1 arguments, "
                f"got {len(args)}"
            )
        assert self._body is not None
        return self._body(store, receiver, *args)

    def replace_body(self, body: Callable[..., Any]) -> None:
        """MF (modify function): swap the code of a computed function.

        Per Table 3 this "does not affect the semantics of the behaviors
        it may be associated with and, therefore ... does not affect the
        schema" — so no schema invalidation happens here.
        """
        if self._kind is not FunctionKind.COMPUTED:
            raise TypeError("only computed functions have a body to replace")
        self._body = body

    def __str__(self) -> str:
        return f"F_{self._name}[{self._kind.value}]"
