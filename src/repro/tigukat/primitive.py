"""The primitive type system of TIGUKAT (Figure 2 of the paper).

Bootstraps the objectbase with the primitive types, the meta types, and
the primitive schema-evolution behaviors of ``T_type`` (B_supertypes,
B_super-lattice, B_interface, B_native, B_inherited, B_subtypes, B_new).

Reconstruction note: the figure in the available paper text is partially
garbled; the layout below follows the figure's legible content plus the
TIGUKAT model papers it cites ([5], [7], [8]):

* ``T_object`` is the root; ``T_null`` the base.
* First-class construct types directly under ``T_object``: ``T_atomic``,
  ``T_type``, ``T_behavior``, ``T_function``, ``T_collection``.
* ``T_class`` is a subtype of ``T_collection`` (classes are special
  collections).
* The extended meta type system: ``T_type-class``, ``T_class-class`` and
  ``T_collection-class`` under ``T_class`` ("their placement within the
  type lattice directly supports the uniformity of the model").
* Atomic chain: ``T_string``, ``T_boolean`` and ``T_real`` under
  ``T_atomic``; ``T_integer`` under ``T_real``; ``T_natural`` under
  ``T_integer``.

All primitive types are frozen: "the primitive types of the model ...
cannot be dropped."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .behaviors import Signature
from .functions import FunctionKind

if TYPE_CHECKING:  # pragma: no cover
    from .store import Objectbase

__all__ = ["PRIMITIVE_TYPES", "PRIMITIVE_TYPE_BEHAVIORS", "bootstrap"]

#: ``(name, supertypes)`` in creation order.  The root and base come from
#: the lattice policy and are not listed.
PRIMITIVE_TYPES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("T_atomic", ()),
    ("T_type", ()),
    ("T_behavior", ()),
    ("T_function", ()),
    ("T_collection", ()),
    ("T_class", ("T_collection",)),
    ("T_type-class", ("T_class",)),
    ("T_class-class", ("T_class",)),
    ("T_collection-class", ("T_class",)),
    ("T_string", ("T_atomic",)),
    ("T_boolean", ("T_atomic",)),
    ("T_real", ("T_atomic",)),
    ("T_integer", ("T_real",)),
    ("T_natural", ("T_integer",)),
)

#: The primitive behaviors of ``T_type`` related to schema evolution
#: (Section 3.1), as ``semantics -> signature``.
PRIMITIVE_TYPE_BEHAVIORS: dict[str, Signature] = {
    "type.supertypes": Signature("supertypes", (), "T_collection"),
    "type.super-lattice": Signature("super-lattice", (), "T_collection"),
    "type.interface": Signature("interface", (), "T_collection"),
    "type.native": Signature("native", (), "T_collection"),
    "type.inherited": Signature("inherited", (), "T_collection"),
    "type.subtypes": Signature("subtypes", (), "T_collection"),
    "type.new": Signature("new", ("T_collection", "T_collection"), "T_type"),
}


def bootstrap(store: "Objectbase") -> None:
    """Install the primitive type system into a fresh objectbase."""
    for semantics, signature in PRIMITIVE_TYPE_BEHAVIORS.items():
        store.define_behavior(semantics, signature)

    for name, supertypes in PRIMITIVE_TYPES:
        if name in store.lattice:
            continue
        behaviors = (
            tuple(PRIMITIVE_TYPE_BEHAVIORS) if name == "T_type" else ()
        )
        store.add_type(
            name, supertypes=supertypes, behaviors=behaviors, frozen=True
        )

    # Computed implementations delegating to the axiomatic lattice: the
    # uniform behaviors *are* the derived terms of the model.  These
    # replace the placeholder stored slots created by ``add_type``.
    delegates = {
        "type.supertypes": lambda s, r: s.type_object(r.name).b_supertypes(),
        "type.super-lattice": lambda s, r: s.type_object(r.name).b_super_lattice(),
        "type.interface": lambda s, r: s.type_object(r.name).b_interface(),
        "type.native": lambda s, r: s.type_object(r.name).b_native(),
        "type.inherited": lambda s, r: s.type_object(r.name).b_inherited(),
        "type.subtypes": lambda s, r: s.type_object(r.name).b_subtypes(),
        "type.new": lambda s, r, supers, behaviors: s.add_type(
            f"T_anon{s.object_count()}",
            supertypes=supers,
            behaviors=behaviors,
        ),
    }
    for semantics, body in delegates.items():
        function = store.define_function(
            semantics.replace("type.", "type_"),
            FunctionKind.COMPUTED,
            body=body,
        )
        replaced = store.implement(semantics, "T_type", function)
        if replaced is not None:
            store.remove_function(replaced)
