"""Signature conformance: safe refinement of behavior implementations.

"We use signatures as a partial semantics of behaviors" (Section 3.1).
When a subtype associates its own implementation with an inherited
behavior (overriding, via MB-CA), the standard substitutability rules
decide whether the refinement is safe:

* the **result type** may only *specialize* (covariance) — callers typed
  against the supertype must still receive something they can handle;
* each **argument type** may only *generalize* (contravariance) — every
  argument a supertype-typed caller passes must still conform;
* the **arity** must match.

The checker is policy: :meth:`Objectbase.implement` stays permissive by
default (TIGUKAT separates behavior semantics from implementations), and
callers that want the discipline run :func:`check_refinement` first or
use :func:`safe_implement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .behaviors import Signature

if TYPE_CHECKING:  # pragma: no cover
    from .functions import Function
    from .store import Objectbase

__all__ = ["RefinementIssue", "check_refinement", "safe_implement"]


@dataclass(frozen=True)
class RefinementIssue:
    kind: str       # "arity" | "result" | "argument"
    position: int   # argument index, or -1
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _conforms(store: "Objectbase", sub: str, sup: str) -> bool:
    """Type-reference conformance over the lattice, tolerant of atomic
    names that are real lattice types in Figure 2."""
    if sub == sup or sup == "T_object":
        return True
    lattice = store.lattice
    if sub in lattice and sup in lattice:
        return lattice.is_subtype(sub, sup)
    return False


def check_refinement(
    store: "Objectbase", base: Signature, refined: Signature
) -> list[RefinementIssue]:
    """All substitutability violations of ``refined`` against ``base``."""
    issues: list[RefinementIssue] = []
    if base.arity != refined.arity:
        issues.append(
            RefinementIssue(
                "arity", -1,
                f"expected {base.arity} arguments, got {refined.arity}",
            )
        )
        return issues
    if not _conforms(store, refined.result_type, base.result_type):
        issues.append(
            RefinementIssue(
                "result", -1,
                f"result {refined.result_type!r} must specialize "
                f"{base.result_type!r} (covariance)",
            )
        )
    for i, (base_arg, refined_arg) in enumerate(
        zip(base.argument_types, refined.argument_types)
    ):
        if not _conforms(store, base_arg, refined_arg):
            issues.append(
                RefinementIssue(
                    "argument", i,
                    f"argument {i} {refined_arg!r} must generalize "
                    f"{base_arg!r} (contravariance)",
                )
            )
    return issues


def safe_implement(
    store: "Objectbase",
    semantics: str,
    type_name: str,
    function: "Function",
    refined_signature: Signature | None = None,
) -> None:
    """Associate an implementation only if the refinement is safe.

    ``refined_signature`` describes the override's effective signature
    (defaults to the behavior's own, which is trivially safe).  Raises
    :class:`TypeError` listing every violation otherwise.
    """
    behavior = store.behavior(semantics)
    if refined_signature is not None:
        issues = check_refinement(
            store, behavior.signature, refined_signature
        )
        if issues:
            raise TypeError(
                f"unsafe override of {behavior} on {type_name!r}: "
                + "; ".join(str(i) for i in issues)
            )
    store.implement(semantics, type_name, function)
