"""Change propagation: coercing instances to evolved schema definitions.

The paper (Section 1): "the typical solution is to explicitly coerce
objects to coincide with the new schema definition.  Screening,
conversion, and filtering are techniques for defining when and how
coercion takes place."  The paper defers propagation to [7]; this package
implements the three classic techniques as pluggable strategies over the
TIGUKAT objectbase, as the "future work" extension of the reproduction.

Vocabulary
----------
An instance *conforms* to its type when every stored slot it carries
corresponds to a behavior in the type's current interface.  Schema
changes can strand slots (dropped behaviors) or introduce behaviors the
instance has no slot for (which stored implementations simply default —
only stranded slots need coercion).

* **Conversion** coerces *eagerly*: every affected instance is rewritten
  the moment the schema changes.
* **Screening** coerces *lazily*: instances are stamped with the schema
  version they conform to and rewritten on first access after a change.
* **Filtering** never rewrites: stale slots are masked at access time,
  leaving stored state untouched (useful when changes may be undone).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..tigukat.objects import TigukatObject

if TYPE_CHECKING:  # pragma: no cover
    from ..tigukat.store import Objectbase

__all__ = ["visible_slots", "stranded_slots", "CoercionStrategy"]


def visible_slots(store: "Objectbase", obj: TigukatObject) -> frozenset[str]:
    """The slot keys the current interface of ``obj``'s type sanctions."""
    if obj.type_name not in store.lattice:
        return frozenset()
    return frozenset(
        p.semantics for p in store.lattice.interface(obj.type_name)
    )


def stranded_slots(store: "Objectbase", obj: TigukatObject) -> frozenset[str]:
    """Slots the instance carries that its type no longer defines."""
    return obj._slots() - visible_slots(store, obj)


class CoercionStrategy(abc.ABC):
    """A change-propagation policy over one objectbase."""

    def __init__(self, store: "Objectbase") -> None:
        self.store = store
        #: number of instances physically rewritten so far
        self.coerced_count = 0

    @abc.abstractmethod
    def on_schema_change(self, affected_types: frozenset[str]) -> None:
        """Called after a schema-evolution operation with the set of types
        whose interfaces may have changed."""

    @abc.abstractmethod
    def read_slot(self, obj: TigukatObject, semantics: str):
        """Access an instance slot under this policy (the policy decides
        whether/when to coerce)."""

    def conforms(self, obj: TigukatObject) -> bool:
        """Whether the instance currently conforms to its type."""
        return not stranded_slots(self.store, obj)

    def _coerce(self, obj: TigukatObject) -> bool:
        """Physically drop stranded slots; returns True when work was done."""
        stale = stranded_slots(self.store, obj)
        if not stale:
            return False
        for semantics in stale:
            obj._drop_slot(semantics)
        self.coerced_count += 1
        return True

    def _instances_of(self, type_names: frozenset[str]):
        """All application instances whose type is in (or below) the set."""
        seen: set = set()
        for t in type_names:
            if t not in self.store.lattice:
                continue
            for oid in self.store.extent(t, deep=True):
                if oid in seen:
                    continue
                seen.add(oid)
                yield self.store.get(oid)
