"""Temporal schema versioning.

The paper points at "a discussion of change propagation in TIGUKAT that
uses the temporality of the model" ([7], [2]) and Skarra & Zdonik's type
versioning in Encore.  :class:`TemporalSchema` provides the substrate:
every committed schema-evolution step produces an immutable, numbered
schema *version* (a snapshot of the derived lattice), and historical
queries ("what was the interface of T_employee at version 3?") are
answered against the snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.derivation import Derivation
from ..core.properties import Property

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["SchemaVersion", "TemporalSchema"]


@dataclass(frozen=True)
class SchemaVersion:
    """One immutable schema snapshot."""

    number: int
    label: str
    derivation: Derivation

    def types(self) -> frozenset[str]:
        return self.derivation.types()

    def interface(self, type_name: str) -> frozenset[Property]:
        return self.derivation.i[type_name]

    def supertypes(self, type_name: str) -> frozenset[str]:
        return self.derivation.p[type_name]


class TemporalSchema:
    """A linear version history over one lattice.

    ``commit`` snapshots the current derived state; snapshots are cheap
    (the derivation's frozensets are shared, never copied).
    """

    def __init__(self, lattice: "TypeLattice") -> None:
        self._lattice = lattice
        self._versions: list[SchemaVersion] = []
        self.commit("initial")

    @property
    def lattice(self) -> "TypeLattice":
        return self._lattice

    def commit(self, label: str = "") -> SchemaVersion:
        """Record the current schema as a new version."""
        version = SchemaVersion(
            number=len(self._versions),
            label=label or f"v{len(self._versions)}",
            derivation=self._lattice.derivation,
        )
        self._versions.append(version)
        return version

    def version(self, number: int) -> SchemaVersion:
        return self._versions[number]

    @property
    def current(self) -> SchemaVersion:
        return self._versions[-1]

    def __len__(self) -> int:
        return len(self._versions)

    # -- historical queries ----------------------------------------------

    def interface_at(
        self, type_name: str, version: int
    ) -> frozenset[Property]:
        """``I(t)`` as of a past version (KeyError if t did not exist)."""
        return self._versions[version].interface(type_name)

    def lifespan(self, type_name: str) -> tuple[int, int | None]:
        """The version range ``[first, last]`` during which a type
        existed; ``last`` is ``None`` while the type is still alive."""
        first: int | None = None
        last: int | None = None
        for v in self._versions:
            if type_name in v.types():
                if first is None:
                    first = v.number
                last = v.number
        if first is None:
            raise KeyError(f"type {type_name!r} never existed")
        if last == self._versions[-1].number:
            return first, None
        return first, last

    def interface_history(
        self, type_name: str
    ) -> list[tuple[int, frozenset[Property]]]:
        """The distinct interfaces a type has had, as (version, I(t))
        pairs recording when each change became visible."""
        history: list[tuple[int, frozenset[Property]]] = []
        previous: frozenset[Property] | None = None
        for v in self._versions:
            if type_name not in v.types():
                previous = None
                continue
            iface = v.interface(type_name)
            if iface != previous:
                history.append((v.number, iface))
                previous = iface
        return history

    def diff(self, earlier: int, later: int) -> dict[str, str]:
        """Type-level summary of what changed between two versions."""
        a, b = self._versions[earlier], self._versions[later]
        out: dict[str, str] = {}
        for t in sorted(a.types() - b.types()):
            out[t] = "dropped"
        for t in sorted(b.types() - a.types()):
            out[t] = "added"
        for t in sorted(a.types() & b.types()):
            changes = []
            if a.supertypes(t) != b.supertypes(t):
                changes.append("supertypes")
            if a.interface(t) != b.interface(t):
                changes.append("interface")
            if changes:
                out[t] = "+".join(changes)
        return out
