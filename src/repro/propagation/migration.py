"""Object migration: porting instances between types.

"With the use of object migration techniques, the instances can be ported
to some other type prior to being dropped in order to preserve their
existence" (Section 3.3, DT).  Migration preserves object *identity* —
the OID never changes — while reassigning the instance to the target
type's class and coercing its state to the target interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import OperationRejected, UnknownTypeError
from ..core.identity import Oid

if TYPE_CHECKING:  # pragma: no cover
    from ..tigukat.store import Objectbase

__all__ = ["Migrator"]


class Migrator:
    """Moves instances between type extents, preserving identity."""

    def __init__(self, store: "Objectbase") -> None:
        self.store = store
        #: number of instances migrated so far
        self.migrated_count = 0

    def migrate_object(self, oid: Oid, target_type: str) -> None:
        """Port one instance to ``target_type``.

        Rejected when the target type has no class (object creation —
        and hence membership — "occurs only through classes") or when
        the identity does not denote an application instance.
        """
        if target_type not in self.store.lattice:
            raise UnknownTypeError(target_type)
        target_class = self.store.class_of(target_type)
        if target_class is None:
            raise OperationRejected(
                "MIGRATE",
                f"target type {target_type!r} has no associated class",
            )
        obj = self.store.get(oid)
        source_class = self.store.class_of(obj.type_name)
        if source_class is None or oid not in source_class:
            raise OperationRejected(
                "MIGRATE", f"{oid} is not a managed instance"
            )
        source_class.remove(oid)
        obj._migrate(target_type)
        target_class.insert(oid)
        # Coerce state to the target interface: stranded slots are cut.
        allowed = {
            p.semantics for p in self.store.lattice.interface(target_type)
        }
        for semantics in obj._slots() - allowed:
            obj._drop_slot(semantics)
        self.migrated_count += 1

    def migrate_extent(self, source_type: str, target_type: str) -> int:
        """Port the entire (shallow) extent of ``source_type``.

        Returns the number of instances moved.  Used by DT/DC with
        ``migrate_to`` to preserve instances of dropped types.
        """
        source_class = self.store.class_of(source_type)
        if source_class is None:
            raise OperationRejected(
                "MIGRATE", f"type {source_type!r} has no associated class"
            )
        moved = 0
        for oid in sorted(source_class.members()):
            self.migrate_object(oid, target_type)
            moved += 1
        return moved
