"""Propagation invariants: the change-propagation axioms, checkable.

The paper's future work (Section 6): "a formal axiomatic model for
change propagation and its integration with the model proposed here is
under development."  This module states the propagation contract each
coercion strategy promises, as machine-checkable invariants over an
objectbase — the executable counterpart of that planned axiomatization.

* **Membership**: every managed instance is in exactly the class of its
  type, and every class member exists.
* **Conversion conformance**: after a conversion pass, *every* instance
  conforms to its type's current interface.
* **Screening conformance**: every instance *accessed since* the last
  schema change conforms; untouched instances may lag (that is the
  point).
* **Filtering visibility**: the filtered view of any instance contains
  exactly the interface-sanctioned slots, regardless of physical state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..tigukat.objects import TigukatObject
from .base import stranded_slots, visible_slots
from .filtering import FilteringStrategy
from .screening import ScreeningStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..tigukat.store import Objectbase

__all__ = [
    "PropagationViolation",
    "check_membership",
    "check_full_conformance",
    "check_screened_conformance",
    "check_filtered_visibility",
]


@dataclass(frozen=True)
class PropagationViolation:
    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


def _instances(store: "Objectbase"):
    for cls in store.classes():
        for oid in cls.members():
            if oid in store:
                yield store.get(oid)


def check_membership(store: "Objectbase") -> list[PropagationViolation]:
    """Instances belong to exactly their type's class; members exist."""
    out: list[PropagationViolation] = []
    for cls in store.classes():
        for oid in cls.members():
            if oid not in store:
                out.append(
                    PropagationViolation(
                        "membership", str(oid),
                        f"member of {cls} does not exist",
                    )
                )
                continue
            obj = store.get(oid)
            if obj.type_name != cls.of_type:
                out.append(
                    PropagationViolation(
                        "membership", str(oid),
                        f"typed {obj.type_name!r} but held by the class "
                        f"of {cls.of_type!r}",
                    )
                )
    for obj in _instances(store):
        if type(obj) is not TigukatObject:
            continue
        cls = store.class_of(obj.type_name)
        if cls is None or obj.oid not in cls:
            out.append(
                PropagationViolation(
                    "membership", str(obj.oid),
                    "instance not registered in its type's class",
                )
            )
    return out


def check_full_conformance(store: "Objectbase") -> list[PropagationViolation]:
    """The conversion contract: no instance carries stranded slots."""
    out: list[PropagationViolation] = []
    for obj in _instances(store):
        stale = stranded_slots(store, obj)
        if stale:
            out.append(
                PropagationViolation(
                    "conversion-conformance", str(obj.oid),
                    f"stranded slots: {sorted(stale)}",
                )
            )
    return out


def check_screened_conformance(
    store: "Objectbase", strategy: ScreeningStrategy
) -> list[PropagationViolation]:
    """The screening contract: instances marked clean at (or after) their
    type's last change carry no stranded slots."""
    out: list[PropagationViolation] = []
    for obj in _instances(store):
        changed_at = strategy._type_changed_at.get(obj.type_name, 0)
        clean_at = strategy._clean_at.get(obj.oid, 0)
        if clean_at >= changed_at and stranded_slots(store, obj):
            out.append(
                PropagationViolation(
                    "screening-conformance", str(obj.oid),
                    "marked clean but carries stranded slots",
                )
            )
    return out


def check_filtered_visibility(
    store: "Objectbase", strategy: FilteringStrategy
) -> list[PropagationViolation]:
    """The filtering contract: a filtered view exposes exactly the
    interface-sanctioned slots."""
    out: list[PropagationViolation] = []
    for obj in _instances(store):
        view = strategy.filtered_state(obj)
        allowed = visible_slots(store, obj)
        exposed = set(view)
        if not exposed <= allowed:
            out.append(
                PropagationViolation(
                    "filtering-visibility", str(obj.oid),
                    f"view leaks slots: {sorted(exposed - allowed)}",
                )
            )
        hidden = strategy.hidden_state(obj)
        if set(hidden) & allowed:
            out.append(
                PropagationViolation(
                    "filtering-visibility", str(obj.oid),
                    "sanctioned slots reported as hidden",
                )
            )
    return out
