"""Change propagation: the companion problem to semantics of change.

The paper addresses only the *semantics of change*; this package supplies
the *change propagation* half it defers — screening, conversion, and
filtering coercion strategies, object migration, and temporal schema
versions — so the reproduction covers the paper's stated future work.
"""

from .auto import AutoPropagator
from .base import CoercionStrategy, stranded_slots, visible_slots
from .conversion import ConversionStrategy
from .filtering import FilteringStrategy
from .invariants import (
    PropagationViolation,
    check_filtered_visibility,
    check_full_conformance,
    check_membership,
    check_screened_conformance,
)
from .migration import Migrator
from .screening import ScreeningStrategy
from .temporal import SchemaVersion, TemporalSchema

__all__ = [
    "CoercionStrategy",
    "AutoPropagator",
    "visible_slots",
    "stranded_slots",
    "PropagationViolation",
    "check_membership",
    "check_full_conformance",
    "check_screened_conformance",
    "check_filtered_visibility",
    "ConversionStrategy",
    "ScreeningStrategy",
    "FilteringStrategy",
    "Migrator",
    "SchemaVersion",
    "TemporalSchema",
]
