"""Filtering: view-based change propagation.

Instances are never rewritten.  Every read is filtered through the type's
*current* interface, so stale slots are invisible but physically retained
— which makes schema changes trivially reversible at the instance level
(undoing the change brings the old values back).
"""

from __future__ import annotations

from typing import Any

from ..tigukat.objects import TigukatObject
from .base import CoercionStrategy, visible_slots

__all__ = ["FilteringStrategy"]


class FilteringStrategy(CoercionStrategy):
    """Mask stale slots at access time; never mutate instance state."""

    def on_schema_change(self, affected_types: frozenset[str]) -> None:
        # Nothing to do: the filter consults the live interface on every
        # read, so it is always up to date by construction.
        pass

    def read_slot(self, obj: TigukatObject, semantics: str) -> Any:
        if semantics not in visible_slots(self.store, obj):
            return None
        return obj._get_slot(semantics)

    def filtered_state(self, obj: TigukatObject) -> dict[str, Any]:
        """The instance state as visible through the current schema."""
        allowed = visible_slots(self.store, obj)
        return {
            semantics: obj._get_slot(semantics)
            for semantics in obj._slots()
            if semantics in allowed
        }

    def hidden_state(self, obj: TigukatObject) -> dict[str, Any]:
        """The physically retained but currently invisible slots."""
        allowed = visible_slots(self.store, obj)
        return {
            semantics: obj._get_slot(semantics)
            for semantics in obj._slots()
            if semantics not in allowed
        }
