"""Automatic change propagation: wiring schema events to a strategy.

The examples wire propagation by hand (apply an operation, then tell the
strategy what changed).  :class:`AutoPropagator` removes the manual step:
subscribe it to a :class:`~repro.tigukat.evolution.SchemaManager` and
every schema-evolution operation automatically notifies the coercion
strategy with the precise affected-type set (the changed type plus its
transitive subtypes — interfaces only ever change downward).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import CoercionStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..tigukat.evolution import EvolutionRecord, SchemaManager

__all__ = ["AutoPropagator"]

#: operation codes that can change interfaces (the others touch classes,
#: functions, or collections only)
_INTERFACE_CHANGING = {
    "MT-AB", "MT-DB", "MT-ASR", "MT-DSR", "AT", "DT", "DB",
}


class AutoPropagator:
    """Subscribes a coercion strategy to a schema manager's event stream."""

    def __init__(
        self, manager: "SchemaManager", strategy: CoercionStrategy
    ) -> None:
        self.manager = manager
        self.strategy = strategy
        self.notifications = 0
        manager.subscribe(self._on_record)

    def _affected(self, record: "EvolutionRecord") -> frozenset[str]:
        lattice = self.manager.store.lattice
        code = record.code
        if code in ("MT-AB", "MT-DB", "MT-ASR", "MT-DSR", "AT"):
            t = record.arguments.get("type") or record.arguments.get("name")
            if t is None or t not in lattice:
                return frozenset()
            return frozenset({t}) | lattice.all_subtypes(t)
        if code in ("DT", "DB"):
            # The dropped construct is gone; conservatively cover every
            # non-frozen type (its former subtypes are among them).
            return frozenset(
                t for t in lattice.types() if not lattice.is_frozen(t)
            )
        return frozenset()

    def _on_record(self, record: "EvolutionRecord") -> None:
        if record.code not in _INTERFACE_CHANGING:
            return
        affected = self._affected(record)
        if affected:
            self.strategy.on_schema_change(affected)
            self.notifications += 1
