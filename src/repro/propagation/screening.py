"""Screening: lazy change propagation.

Schema changes only bump a global schema-version counter and record which
types were affected at each version.  Instances remember the version they
last conformed to and are physically coerced on first access afterwards.
Change-time cost is O(1); the coercion cost is spread over future reads
(and never paid for instances that are never touched again).
"""

from __future__ import annotations

from ..core.identity import Oid
from ..tigukat.objects import TigukatObject
from .base import CoercionStrategy

__all__ = ["ScreeningStrategy"]


class ScreeningStrategy(CoercionStrategy):
    """Coerce instances lazily, on first access after a schema change."""

    def __init__(self, store) -> None:
        super().__init__(store)
        self._schema_version = 0
        #: version at which each type last changed
        self._type_changed_at: dict[str, int] = {}
        #: version up to which each instance is known clean
        self._clean_at: dict[Oid, int] = {}

    @property
    def schema_version(self) -> int:
        return self._schema_version

    def on_schema_change(self, affected_types: frozenset[str]) -> None:
        self._schema_version += 1
        for t in affected_types:
            self._type_changed_at[t] = self._schema_version

    def screen(self, obj: TigukatObject) -> bool:
        """Bring one instance up to date if stale; returns whether a
        physical coercion happened."""
        changed_at = self._type_changed_at.get(obj.type_name, 0)
        if self._clean_at.get(obj.oid, 0) >= changed_at:
            return False
        did = self._coerce(obj)
        self._clean_at[obj.oid] = self._schema_version
        return did

    def read_slot(self, obj: TigukatObject, semantics: str):
        self.screen(obj)
        return obj._get_slot(semantics)

    def pending_count(self) -> int:
        """Instances that would still need screening if accessed now."""
        count = 0
        for t, changed_at in self._type_changed_at.items():
            if t not in self.store.lattice:
                continue
            for oid in self.store.extent(t, deep=False):
                if self._clean_at.get(oid, 0) < changed_at:
                    count += 1
        return count
