"""Conversion: eager change propagation.

Every instance of an affected type is rewritten to the new schema
definition at change time.  Reads are then always clean (no per-access
overhead), at the price of a potentially large synchronous pause — the
classic trade-off against :mod:`repro.propagation.screening`.
"""

from __future__ import annotations

from ..tigukat.objects import TigukatObject
from .base import CoercionStrategy

__all__ = ["ConversionStrategy"]


class ConversionStrategy(CoercionStrategy):
    """Coerce all affected instances immediately on schema change."""

    def on_schema_change(self, affected_types: frozenset[str]) -> None:
        for obj in self._instances_of(affected_types):
            self._coerce(obj)

    def read_slot(self, obj: TigukatObject, semantics: str):
        # Conversion guarantees conformance at change time; reads are raw.
        return obj._get_slot(semantics)

    def convert_everything(self) -> int:
        """Full-base conversion sweep; returns instances rewritten."""
        before = self.coerced_count
        self.on_schema_change(frozenset(self.store.lattice.types()))
        return self.coerced_count - before
