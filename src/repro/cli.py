"""Command-line schema-evolution tool over a durable objectbase.

A thin operational surface for the library, built on the
:class:`repro.api.Objectbase` facade: schema state lives in a
write-ahead journal file (see :mod:`repro.storage.journal`) and every
subcommand is one of the paper's operations or inspections::

    python -m repro --db schema.wal init
    python -m repro --db schema.wal add-type T_person -p person.name
    python -m repro --db schema.wal add-type T_student -s T_person
    python -m repro --db schema.wal add-edge T_student T_person
    python -m repro --db schema.wal drop-edge T_student T_person
    python -m repro --db schema.wal add-prop T_person person.age
    python -m repro --db schema.wal drop-type T_student
    python -m repro --db schema.wal show [T_student]
    python -m repro --db schema.wal check       # axioms + oracle
    python -m repro --db schema.wal lint        # static analysis (schema)
    python -m repro --db schema.wal lint --plan plan.json --format sarif
    python -m repro --db schema.wal render      # ASCII lattice
    python -m repro --db schema.wal dot         # Graphviz output
    python -m repro --db schema.wal tables      # Tables 1-3
    python -m repro --db schema.wal checkpoint  # WAL -> snapshot

Opening the database replays the WAL in batch mode: one derivation pass
per invocation, however long the journal tail is.

Exit status follows the unified error taxonomy (:mod:`repro.core.errors`):
0 on success, 1 when the engine rejects the request or a check/lint gate
fails (every :class:`~repro.core.errors.EvolutionError`, reported with
its machine-readable code), 2 when the invocation itself is unusable
(e.g. an unknown lint rule id).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import Objectbase
from .core import (
    DropEssentialSupertype,
    DropType,
    EvolutionError,
    error_code,
    exit_code_for,
)
from .viz import (
    render_lattice,
    render_table1,
    render_table2,
    render_table3,
    render_type_card,
    to_dot,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Axiomatic dynamic schema evolution over a durable lattice.",
    )
    parser.add_argument(
        "--db", required=True,
        help="path to the write-ahead journal file (created when missing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init", help="create an empty TIGUKAT-policy schema")

    p = sub.add_parser("add-type", help="AT: create a type")
    p.add_argument("name")
    p.add_argument("-s", "--supertype", action="append", default=[],
                   help="essential supertype (repeatable)")
    p.add_argument("-p", "--prop", action="append", default=[],
                   help="essential property semantics key (repeatable)")

    p = sub.add_parser("drop-type", help="DT: drop a type")
    p.add_argument("name")

    p = sub.add_parser("add-edge", help="MT-ASR: add essential supertype")
    p.add_argument("subtype")
    p.add_argument("supertype")

    p = sub.add_parser("drop-edge", help="MT-DSR: drop essential supertype")
    p.add_argument("subtype")
    p.add_argument("supertype")

    p = sub.add_parser("add-prop", help="MT-AB: add essential property")
    p.add_argument("type")
    p.add_argument("semantics")
    p.add_argument("--name", default="", help="display name")

    p = sub.add_parser("drop-prop", help="MT-DB: drop essential property")
    p.add_argument("type")
    p.add_argument("semantics")

    p = sub.add_parser("show", help="type card(s): all Table 1 terms")
    p.add_argument("type", nargs="?", help="one type (default: list all)")

    sub.add_parser("check", help="verify the nine axioms and the oracle")

    p = sub.add_parser(
        "lint",
        help="static analysis: schema findings, and whole evolution plans "
             "dry-run symbolically (never mutates the schema or WAL)",
    )
    p.add_argument(
        "--plan", metavar="FILE",
        help="analyze an evolution plan (JSON / JSONL / a WAL journal) "
             "against the schema without executing it",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif = SARIF 2.1.0 for CI annotation)",
    )
    p.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="exit 1 when a finding at or above this severity exists "
             "(default: error)",
    )
    p.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only rules matching this id/prefix (repeatable)",
    )
    p.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip rules matching this id/prefix (repeatable)",
    )
    sub.add_parser("normalize", help="rewrite Pe/Ne to the minimal "
                                     "declarations (drops the insurance!)")
    sub.add_parser("history", help="show the journaled operations")

    p = sub.add_parser("impact", help="dry-run an operation: "
                                      "impact <drop-type|drop-edge> args...")
    p.add_argument("what", choices=["drop-type", "drop-edge"])
    p.add_argument("args", nargs="+")
    sub.add_parser("render", help="ASCII lattice (minimal P-edge view)")

    p = sub.add_parser("dot", help="Graphviz DOT output")
    p.add_argument("--essential", action="store_true",
                   help="draw raw Pe edges instead of minimal P edges")

    sub.add_parser("tables", help="regenerate the paper's Tables 1-3")
    sub.add_parser("checkpoint", help="fold the WAL into a snapshot")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        ob = Objectbase.open(args.db)
    except EvolutionError as exc:
        print(
            f"error [{error_code(exc)}]: cannot open {args.db}: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    lattice = ob.lattice

    try:
        if args.command == "init":
            print(f"initialized schema at {args.db}: "
                  f"{sorted(ob.types())}")
        elif args.command == "add-type":
            ob.add_type(args.name, tuple(args.supertype), tuple(args.prop))
            print(f"added {args.name}; P = {sorted(lattice.p(args.name))}")
        elif args.command == "drop-type":
            ob.drop_type(args.name)
            print(f"dropped {args.name}")
        elif args.command == "add-edge":
            ob.add_supertype(args.subtype, args.supertype)
            print(f"Pe({args.subtype}) += {args.supertype}; "
                  f"P = {sorted(lattice.p(args.subtype))}")
        elif args.command == "drop-edge":
            ob.drop_supertype(args.subtype, args.supertype)
            print(f"Pe({args.subtype}) -= {args.supertype}; "
                  f"P = {sorted(lattice.p(args.subtype))}")
        elif args.command == "add-prop":
            ob.add_property(args.type, args.semantics, args.name)
            print(f"Ne({args.type}) += {args.semantics}")
        elif args.command == "drop-prop":
            ob.drop_property(args.type, args.semantics)
            print(f"Ne({args.type}) -= {args.semantics}")
        elif args.command == "show":
            if args.type:
                print(render_type_card(lattice, args.type))
            else:
                for t in sorted(ob.types()):
                    print(f"{t}: P={sorted(lattice.p(t))} "
                          f"|I|={len(lattice.interface(t))}")
        elif args.command == "check":
            violations = ob.check()
            report = ob.verify()
            for v in violations:
                print(f"VIOLATION: {v}")
            print(f"axioms: {'ok' if not violations else 'FAILED'}; "
                  f"oracle: {'ok' if report.ok else 'FAILED'}")
            if violations or not report.ok:
                return 1
        elif args.command == "lint":
            from .staticcheck import (
                Severity,
                analyze,
                load_plan,
                render_json,
                render_sarif,
                render_text,
            )

            plan = load_plan(args.plan) if args.plan else None
            try:
                report = analyze(
                    lattice, plan, select=args.select, ignore=args.ignore
                )
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            if args.format == "json":
                print(render_json(report))
            elif args.format == "sarif":
                print(render_sarif(
                    report,
                    plan_uri=args.plan or "",
                    schema_uri=args.db,
                ))
            else:
                print(render_text(report, show_fixits=False))
            if args.fail_on != "never":
                threshold = Severity.from_name(args.fail_on)
                if report.at_least(threshold):
                    return 1
        elif args.command == "normalize":
            # Journaled through the facade: the rewrite is ordinary
            # MT-DSR/MT-DB operations in the WAL, so it replays on
            # reopen — no out-of-band checkpoint needed.
            report = ob.normalize()
            print(
                f"dropped {report.dropped_supertype_declarations} supertype "
                f"and {report.dropped_property_declarations} property "
                f"declaration(s); journaled"
            )
        elif args.command == "history":
            entries = ob.history()
            if not entries:
                print("(no journaled operations since the last checkpoint)")
            for entry in entries:
                print(f"{entry.seq:4d}  {entry.operation.code:<7} "
                      f"{entry.operation.describe()}")
        elif args.command == "impact":
            if args.what == "drop-type":
                op = DropType(args.args[0])
            else:
                op = DropEssentialSupertype(args.args[0], args.args[1])
            print(ob.impact(op).summary())
        elif args.command == "render":
            print(render_lattice(lattice))
        elif args.command == "dot":
            print(to_dot(lattice, use_essential=args.essential))
        elif args.command == "tables":
            print(render_table1())
            print()
            print(render_table2(lattice))
            print()
            print(render_table3())
        elif args.command == "checkpoint":
            ob.checkpoint()
            print(f"checkpointed {len(lattice)} types; WAL truncated")
    except EvolutionError as exc:
        print(f"rejected [{error_code(exc)}]: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
