"""Command-line schema-evolution tool over a durable objectbase.

A thin operational surface for the library, built on the
:class:`repro.api.Objectbase` facade: schema state lives in a
write-ahead journal file (see :mod:`repro.storage.journal`) and every
subcommand is one of the paper's operations or inspections::

    python -m repro --db schema.wal init
    python -m repro --db schema.wal add-type T_person -p person.name
    python -m repro --db schema.wal add-type T_student -s T_person
    python -m repro --db schema.wal add-edge T_student T_person
    python -m repro --db schema.wal drop-edge T_student T_person
    python -m repro --db schema.wal add-prop T_person person.age
    python -m repro --db schema.wal drop-type T_student
    python -m repro --db schema.wal show [T_student]
    python -m repro --db schema.wal schema show            # live schema as DDL
    python -m repro --db schema.wal schema diff target.ddl # minimal plan
    python -m repro --db schema.wal schema migrate target.ddl [--dry-run]
    python -m repro --db schema.wal check       # axioms + oracle
    python -m repro --db schema.wal lint        # static analysis (schema)
    python -m repro --db schema.wal lint --plan plan.json --format sarif
    python -m repro --db schema.wal render      # ASCII lattice
    python -m repro --db schema.wal dot         # Graphviz output
    python -m repro --db schema.wal tables      # Tables 1-3
    python -m repro --db schema.wal checkpoint  # WAL -> snapshot
    python -m repro --db schema.wal recover --mode salvage
    python -m repro --db schema.wal stats --plan plan.json --format prom
    python -m repro --db schema.wal trace --plan plan.json --out trace.jsonl
    python -m repro --db schema.wal serve --port 8787   # HTTP/JSON service

Opening the database replays the WAL in batch mode: one derivation pass
per invocation, however long the journal tail is.  The global
``--fsync {always,batch,never}`` and ``--checkpoint-every N`` flags
select the :class:`~repro.storage.framing.DurabilityPolicy` for the
mutation subcommands; ``recover`` heals a damaged WAL (``--mode strict``
only diagnoses, ``--mode salvage`` truncates torn tails and quarantines
corrupt records into a ``.corrupt`` sidecar — see ``docs/durability.md``).

Observability (see ``docs/observability.md``): ``stats`` dry-runs an
evolution plan on an in-memory copy of the schema and prints the metrics
registry (text, JSON, or Prometheus exposition format); ``trace`` runs
the same dry-run with a JSONL span sink attached, emitting one root span
per operation plus a final ``verify`` span and a trailing summary record
holding the full registry.  Both leave the WAL untouched.  ``--verbose``
(repeatable) and ``--quiet`` configure stdlib logging for every
subcommand; library code never touches handlers itself.

Exit status follows the unified error taxonomy (:mod:`repro.core.errors`):
0 on success, 1 when the engine rejects the request or a check/lint gate
fails (every :class:`~repro.core.errors.EvolutionError`, reported with
its machine-readable code), 2 when the invocation itself is unusable
(e.g. an unknown lint rule id).
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Sequence

from .api import DurabilityPolicy, Objectbase
from .core import (
    DropEssentialSupertype,
    DropType,
    EvolutionError,
    error_code,
    exit_code_for,
)
from .obs import REGISTRY, JsonlSink, configure_logging, trace as _trace
from .viz import (
    render_lattice,
    render_table1,
    render_table2,
    render_table3,
    render_type_card,
    to_dot,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Axiomatic dynamic schema evolution over a durable lattice.",
    )
    parser.add_argument(
        "--db", required=True,
        help="journal path or backend URL (created when missing): a bare "
             "path or file:PATH for the filesystem backend, "
             "sqlite:DBFILE for the SQLite backend, objstore:ROOT for "
             "the content-addressed object store (see docs/storage.md)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log more (-v: INFO, -vv: DEBUG); applies to every subcommand",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="log only errors (overrides --verbose)",
    )
    parser.add_argument(
        "--fsync", choices=("always", "batch", "never"), default=None,
        help="WAL fsync policy: always = fsync every record (crash-safe), "
             "batch = fsync at checkpoints and close (default), "
             "never = leave flushing to the OS",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, metavar="N", default=None,
        help="auto-checkpoint after N journaled operations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init", help="create an empty TIGUKAT-policy schema")

    p = sub.add_parser("add-type", help="AT: create a type")
    p.add_argument("name")
    p.add_argument("-s", "--supertype", action="append", default=[],
                   help="essential supertype (repeatable)")
    p.add_argument("-p", "--prop", action="append", default=[],
                   help="essential property semantics key (repeatable)")

    p = sub.add_parser("drop-type", help="DT: drop a type")
    p.add_argument("name")

    p = sub.add_parser("add-edge", help="MT-ASR: add essential supertype")
    p.add_argument("subtype")
    p.add_argument("supertype")

    p = sub.add_parser("drop-edge", help="MT-DSR: drop essential supertype")
    p.add_argument("subtype")
    p.add_argument("supertype")

    p = sub.add_parser("add-prop", help="MT-AB: add essential property")
    p.add_argument("type")
    p.add_argument("semantics")
    p.add_argument("--name", default="", help="display name")

    p = sub.add_parser("drop-prop", help="MT-DB: drop essential property")
    p.add_argument("type")
    p.add_argument("semantics")

    p = sub.add_parser("show", help="type card(s): all Table 1 terms")
    p.add_argument("type", nargs="?", help="one type (default: list all)")

    sub.add_parser("check", help="verify the nine axioms and the oracle")

    p = sub.add_parser(
        "lint",
        help="static analysis: schema findings, and whole evolution plans "
             "dry-run symbolically (never mutates the schema or WAL)",
    )
    p.add_argument(
        "--plan", metavar="FILE",
        help="analyze an evolution plan (JSON / JSONL / a WAL journal) "
             "against the schema without executing it",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif = SARIF 2.1.0 for CI annotation)",
    )
    p.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="exit 1 when a finding at or above this severity exists "
             "(default: error)",
    )
    p.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only rules matching this id/prefix (repeatable)",
    )
    p.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip rules matching this id/prefix (repeatable)",
    )
    p.add_argument(
        "--fix", action="store_true",
        help="apply machine-applicable fixes (typed plan edits) and "
             "rewrite the plan file in place; re-analyzes until clean "
             "and is idempotent",
    )
    p.add_argument(
        "--diff", action="store_true",
        help="with --fix: print the unified diff instead of writing the "
             "plan file (dry run)",
    )
    p.add_argument(
        "--baseline", choices=("write", "check"),
        help="write = record every current finding as accepted; "
             "check = suppress recorded findings so only new ones gate",
    )
    p.add_argument(
        "--baseline-file", metavar="FILE",
        help="baseline location (default: <plan>.lint-baseline.json)",
    )
    p = sub.add_parser(
        "schema",
        help="declarative schema (DDL): show the live schema as text, "
             "diff a declared target, or migrate to it",
    )
    ssub = p.add_subparsers(dest="schema_command", required=True)

    ps = ssub.add_parser(
        "show", help="print the live schema as canonical DDL text"
    )
    ps.add_argument("--name", default="", help="schema header name to emit")

    ps = ssub.add_parser(
        "diff",
        help="print the minimal evolution plan from the live schema to a "
             "declared target (never mutates the WAL)",
    )
    ps.add_argument(
        "schema", metavar="FILE",
        help="target schema DDL file ('-' reads stdin)",
    )
    ps.add_argument(
        "--format", choices=("text", "json", "jsonl"), default="text",
        help="text = one describe() line per operation; json/jsonl = "
             "plan serializations ready for 'repro lint --plan'",
    )
    ps.add_argument(
        "--plan-out", metavar="FILE",
        help="also write the plan as JSON to this file",
    )

    ps = ssub.add_parser(
        "migrate",
        help="diff the live schema against a declared target, gate the "
             "plan through the static analyzer, and apply it atomically",
    )
    ps.add_argument(
        "schema", metavar="FILE",
        help="target schema DDL file ('-' reads stdin)",
    )
    ps.add_argument(
        "--dry-run", action="store_true",
        help="diff + lint only; print the plan, mutate nothing",
    )
    ps.add_argument(
        "--plan-out", metavar="FILE",
        help="also write the computed plan as JSON to this file",
    )
    ps.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="reject the migration (exit 1 + diagnostics) when the plan "
             "has findings at or above this severity (default: error)",
    )
    ps.add_argument(
        "--no-verify", action="store_true",
        help="skip the commit-time axiom verification of the applying "
             "batch",
    )

    sub.add_parser("normalize", help="rewrite Pe/Ne to the minimal "
                                     "declarations (drops the insurance!)")
    sub.add_parser("history", help="show the journaled operations")

    p = sub.add_parser("impact", help="dry-run an operation: "
                                      "impact <drop-type|drop-edge> args...")
    p.add_argument("what", choices=["drop-type", "drop-edge"])
    p.add_argument("args", nargs="+")
    sub.add_parser("render", help="ASCII lattice (minimal P-edge view)")

    p = sub.add_parser("dot", help="Graphviz DOT output")
    p.add_argument("--essential", action="store_true",
                   help="draw raw Pe edges instead of minimal P edges")

    sub.add_parser("tables", help="regenerate the paper's Tables 1-3")
    sub.add_parser("checkpoint", help="fold the WAL into a snapshot")

    p = sub.add_parser(
        "recover",
        help="heal a damaged WAL: truncate torn tails, quarantine corrupt "
             "records (salvage), then verify the log replays",
    )
    p.add_argument(
        "--mode", choices=("strict", "salvage"), default="salvage",
        help="strict = diagnose only, fail on any corruption; salvage = "
             "keep every valid record, quarantine the rest (default)",
    )

    p = sub.add_parser(
        "stats",
        help="observability: dry-run a plan on an in-memory copy and "
             "print the metrics registry (never mutates the WAL)",
    )
    p.add_argument(
        "--plan", metavar="FILE",
        help="evolution plan to execute (JSON / JSONL / a WAL journal); "
             "without it, the registry reflects opening the database",
    )
    p.add_argument(
        "--format", choices=("text", "json", "prom"), default="text",
        help="output format (prom = Prometheus text exposition)",
    )

    p = sub.add_parser(
        "trace",
        help="observability: dry-run a plan with a JSONL span sink "
             "attached; spans carry per-operation metric deltas",
    )
    p.add_argument(
        "--plan", metavar="FILE", required=True,
        help="evolution plan to execute (JSON / JSONL / a WAL journal)",
    )
    p.add_argument(
        "--out", metavar="FILE", default="-",
        help="where to write the JSONL spans (default: stdout)",
    )
    p.add_argument(
        "--sample-rate", type=float, default=1.0, metavar="R",
        help="keep this fraction of traces (deterministic per trace id; "
             "summary records are always kept)",
    )

    p = sub.add_parser(
        "serve",
        help="HTTP/JSON service over the objectbase: lock-free reads, "
             "fair single-writer mutation, /healthz /readyz /metrics",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8787,
                   help="bind port (default: 8787; 0 picks a free port)")
    p.add_argument(
        "--lock-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long a write waits for the single-writer lock before "
             "failing with lock-timeout (HTTP 503 + Retry-After)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="write-admission bound: further writes are shed with 429",
    )
    p.add_argument(
        "--lint", choices=("off", "warn", "error"), default="off",
        help="admission-time lint gate: statically analyze every write "
             "under the lock and reject (409 + diagnostics) at this "
             "severity threshold (default: off)",
    )
    p.add_argument(
        "--trace-out", metavar="FILE",
        help="attach an always-on JSONL span sink (one root span per "
             "request)",
    )
    p.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="R",
        help="keep this fraction of traces (with --trace-out)",
    )
    p.add_argument(
        "--trace-max-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the trace file at this size (with --trace-out)",
    )
    p.add_argument(
        "--trace-keep", type=int, default=3, metavar="N",
        help="rotated trace generations to retain (default: 3)",
    )
    p.add_argument(
        "--replication-port", type=int, default=None, metavar="PORT",
        help="serve as a replication primary: also listen for replicas "
             "on this port (0 picks a free one), acquire the write "
             "lease next to --db, and fence all writes on lease loss",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="SECONDS",
        help="write-lease time-to-live (with --replication-port); a "
             "background keeper renews it every ttl/3 (default: 5)",
    )
    p.add_argument(
        "--replica-of", metavar="HOST:PORT", default=None,
        help="serve as a read-only replica syncing from the primary's "
             "replication listener; writes return 503 read-only-replica "
             "naming the primary",
    )
    p.add_argument(
        "--max-staleness", type=float, default=None, metavar="SECONDS",
        help="with --replica-of: /readyz reports replica-too-stale once "
             "the primary has been silent this long (default: no bound "
             "— serve stale reads forever)",
    )
    return parser


def _run_plan_observed(ob: Objectbase, plan) -> tuple[Objectbase, int, int]:
    """Execute ``plan`` on an in-memory copy of ``ob``'s schema.

    The shared engine of ``stats`` and ``trace``: prime the copy's
    derivation cache (so the run itself exercises the incremental path),
    zero the registry, apply every operation through the facade (one
    ``apply`` span each), and close with an axiom check inside a
    ``verify`` span.  Every metric increment therefore lands inside some
    root span, which is what makes the trace's aggregated deltas equal
    the registry totals.  Rejected operations are counted and skipped —
    observing a doomed plan is precisely the point.

    Returns ``(dry_ob, rejected, violations)``.
    """
    dry = Objectbase(ob.lattice.copy())
    dry.lattice.derivation  # prime outside the measured window
    REGISTRY.reset()
    rejected = 0
    for op in plan:
        try:
            dry.apply(op)
        except EvolutionError as exc:
            rejected += 1
            logging.getLogger(__name__).info(
                "plan operation rejected [%s]: %s", error_code(exc), exc
            )
    with _trace.span("verify"):
        violations = len(dry.check())
    return dry, rejected, violations


#: ``--fail-on`` severities to :meth:`Objectbase.migrate_to` lint modes.
_FAIL_ON_TO_LINT = {
    "error": "error",
    "warning": "warn",
    "info": "info",
    "never": "off",
}


def _read_schema_arg(path: str) -> str:
    """The target DDL text: a file, or stdin for ``-``."""
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _cmd_schema(ob: Objectbase, args) -> int:
    """``repro schema show|diff|migrate`` (see ``docs/ddl.md``)."""
    if args.schema_command == "show":
        print(ob.schema_ddl(name=args.name), end="")
        return 0

    try:
        target = _read_schema_arg(args.schema)
    except OSError as exc:
        print(
            f"error: cannot read schema {args.schema}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.schema_command == "diff":
        plan = ob.diff_to(target)
        if args.plan_out:
            plan.save(args.plan_out)
        if args.format == "json":
            print(plan.dumps("object"), end="")
        elif args.format == "jsonl":
            print(plan.dumps("jsonl"), end="")
        else:
            for i, op in enumerate(plan):
                print(f"{i:4d}  {op.code:<7} {op.describe()}")
            if not plan.operations:
                print("(schemas agree; empty plan)")
        return 0

    # migrate
    result = ob.migrate_to(
        target,
        dry_run=args.dry_run,
        verify_on_commit=not args.no_verify,
        lint=_FAIL_ON_TO_LINT[args.fail_on],
    )
    if args.plan_out:
        result.plan.save(args.plan_out)
    for i, op in enumerate(result.plan):
        print(f"{i:4d}  {op.code:<7} {op.describe()}")
    print(result.summary())
    return 0


def _cmd_recover(args) -> int:
    """Heal ``--db`` in place, then prove the healed log replays.

    Runs before (and instead of) the normal open so a corrupt WAL —
    which strict open refuses to touch — can still be salvaged.
    """
    from .storage.journal import JournalFile

    try:
        journal = JournalFile(args.db)
        report = journal.repair(mode=args.mode)
    except EvolutionError as exc:
        print(f"error [{error_code(exc)}]: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    print(report.summary())
    # Recovery implies exclusive ownership, so sweep backend crash
    # residue too (orphan object-store segments); the GC grace period
    # still protects a live writer if that assumption is ever wrong.
    swept = journal.gc()
    if swept:
        print(f"storage GC swept {swept} orphan object(s)")
    try:
        ob = Objectbase.open(args.db)
    except EvolutionError as exc:
        print(
            f"error [{error_code(exc)}]: WAL repaired but replay still "
            f"fails: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    print(f"replay verified: {len(ob.lattice)} type(s)")
    return 0


def _parse_host_port(value: str) -> tuple[str, int]:
    """``HOST:PORT`` for ``--replica-of``."""
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _cmd_serve(args, durability) -> int:
    """Run the HTTP/JSON service until interrupted (``repro serve``).

    Three roles share the one command (see ``docs/replication.md``):

    * standalone (default) — just the HTTP service;
    * primary (``--replication-port``) — additionally acquire the
      write lease, fence every write on it, and ship the WAL to
      replicas;
    * replica (``--replica-of``) — read-only HTTP surface over a
      :class:`~repro.replication.replica.ReplicaStore` kept caught up
      by a background sync thread.
    """
    if args.replica_of and args.replication_port is not None:
        print(
            "error: --replica-of and --replication-port are mutually "
            "exclusive (a node is a primary or a replica, not both)",
            file=sys.stderr,
        )
        return 2
    sink = None
    if args.trace_out:
        sink = JsonlSink(
            args.trace_out,
            max_bytes=args.trace_max_bytes,
            keep=args.trace_keep,
            sample_rate=args.trace_sample_rate,
        )
        _trace.set_sink(sink)
    try:
        if args.replica_of:
            return _serve_replica(args, durability)
        return _serve_primary(args, durability)
    finally:
        if sink is not None:
            _trace.set_sink(None)
            sink.close()


def _serve_replica(args, durability) -> int:
    from .replication import ReplicaStore, ReplicationClient
    from .server import ReplicaService, serve_service

    try:
        primary_host, primary_port = _parse_host_port(args.replica_of)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = ReplicaStore(args.db, durability=durability)
    except EvolutionError as exc:
        print(
            f"error [{error_code(exc)}]: cannot open {args.db}: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    client = ReplicationClient(
        store, primary_host, primary_port,
        max_staleness=args.max_staleness,
    )
    client.start()
    service = ReplicaService(store, client, max_inflight=args.max_inflight)
    try:
        serve_service(service, args.host, args.port)
    finally:
        client.stop()
    return 0


def _serve_primary(args, durability) -> int:
    from .concurrent import ConcurrentObjectbase
    from .server import ObjectbaseService, serve_service

    try:
        store = ConcurrentObjectbase.open(
            args.db, durability=durability, lock_timeout=args.lock_timeout
        )
    except EvolutionError as exc:
        print(
            f"error [{error_code(exc)}]: cannot open {args.db}: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    service = ObjectbaseService(
        store, max_inflight=args.max_inflight, lint=args.lint
    )
    if args.replication_port is None:
        serve_service(service, args.host, args.port)
        return 0

    from .replication import (
        FileLease,
        LeaseKeeper,
        ReplicationServer,
        ReplicationSource,
    )

    from .storage.backend import storage_physical_path

    # The lease is a real file next to the backend's physical location
    # (sqlite database file / object-store root), whatever the scheme —
    # fencing must work across processes even for non-file backends.
    # Resolved without constructing a backend: a failover candidate
    # must not create, connect to, or sweep a store it does not own.
    anchor = storage_physical_path(args.db)
    lease = FileLease(
        anchor.with_suffix(anchor.suffix + ".lease"), ttl=args.lease_ttl
    )
    try:
        lease.acquire()
    except EvolutionError as exc:
        print(f"error [{error_code(exc)}]: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    # Every write now re-proves lease ownership before touching the
    # WAL: a paused-and-resumed ex-primary fails with lease-lost (503)
    # instead of silently extending a superseded history.
    store.set_write_fence(lease.check)
    # Now — and only now — this process owns the store exclusively, so
    # it is safe to sweep crash residue (orphan object-store segments
    # from a predecessor's interrupted publish).
    swept = store.storage_gc()
    if swept:
        logging.getLogger(__name__).info(
            "storage GC swept %d orphan object(s)", swept
        )
    keeper = LeaseKeeper(lease)
    keeper.start()
    hub = ReplicationServer(
        ReplicationSource(args.db),
        lease=lease,
        host=args.host,
        port=args.replication_port,
    ).start()
    service.replication = hub
    try:
        serve_service(service, args.host, args.port)
    finally:
        hub.stop()
        keeper.stop()
        lease.release()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.command == "recover":
        return _cmd_recover(args)
    durability = None
    if args.fsync is not None or args.checkpoint_every is not None:
        durability = DurabilityPolicy(
            fsync=args.fsync or "batch",
            checkpoint_every=args.checkpoint_every,
        )
    if args.command == "serve":
        return _cmd_serve(args, durability)
    try:
        ob = Objectbase.open(args.db, durability=durability)
    except EvolutionError as exc:
        print(
            f"error [{error_code(exc)}]: cannot open {args.db}: {exc}",
            file=sys.stderr,
        )
        return exit_code_for(exc)
    lattice = ob.lattice

    try:
        if args.command == "init":
            print(f"initialized schema at {args.db}: "
                  f"{sorted(ob.types())}")
        elif args.command == "add-type":
            ob.add_type(args.name, tuple(args.supertype), tuple(args.prop))
            print(f"added {args.name}; P = {sorted(lattice.p(args.name))}")
        elif args.command == "drop-type":
            ob.drop_type(args.name)
            print(f"dropped {args.name}")
        elif args.command == "add-edge":
            ob.add_supertype(args.subtype, args.supertype)
            print(f"Pe({args.subtype}) += {args.supertype}; "
                  f"P = {sorted(lattice.p(args.subtype))}")
        elif args.command == "drop-edge":
            ob.drop_supertype(args.subtype, args.supertype)
            print(f"Pe({args.subtype}) -= {args.supertype}; "
                  f"P = {sorted(lattice.p(args.subtype))}")
        elif args.command == "add-prop":
            ob.add_property(args.type, args.semantics, args.name)
            print(f"Ne({args.type}) += {args.semantics}")
        elif args.command == "drop-prop":
            ob.drop_property(args.type, args.semantics)
            print(f"Ne({args.type}) -= {args.semantics}")
        elif args.command == "show":
            if args.type:
                print(render_type_card(lattice, args.type))
            else:
                for t in sorted(ob.types()):
                    print(f"{t}: P={sorted(lattice.p(t))} "
                          f"|I|={len(lattice.interface(t))}")
        elif args.command == "check":
            violations = ob.check()
            report = ob.verify()
            for v in violations:
                print(f"VIOLATION: {v}")
            print(f"axioms: {'ok' if not violations else 'FAILED'}; "
                  f"oracle: {'ok' if report.ok else 'FAILED'}")
            if violations or not report.ok:
                return 1
        elif args.command == "lint":
            from .staticcheck import (
                Severity,
                analyze,
                apply_baseline,
                fix_plan,
                load_plan,
                plan_diff,
                render_json,
                render_sarif,
                render_text,
                write_baseline,
            )

            if args.fix and not args.plan:
                print("error: --fix requires --plan", file=sys.stderr)
                return 2
            if args.diff and not args.fix:
                print("error: --diff only makes sense with --fix",
                      file=sys.stderr)
                return 2
            if args.baseline and not args.plan:
                print("error: --baseline requires --plan", file=sys.stderr)
                return 2
            baseline_file = args.baseline_file or (
                f"{args.plan}.lint-baseline.json" if args.plan else ""
            )

            plan = load_plan(args.plan) if args.plan else None
            try:
                if args.fix:
                    result = fix_plan(
                        lattice, plan, select=args.select, ignore=args.ignore
                    )
                    report = result.report
                    if args.diff:
                        diff = plan_diff(plan, result.plan, args.plan)
                        if diff:
                            print(diff, end="")
                    elif result.changed:
                        result.plan.save(args.plan)
                    print(result.summary(), file=sys.stderr)
                else:
                    report = analyze(
                        lattice, plan, select=args.select, ignore=args.ignore
                    )
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
            if args.baseline == "write":
                count = write_baseline(baseline_file, report)
                print(f"baseline: recorded {count} finding(s) in "
                      f"{baseline_file}")
                return 0
            if args.baseline == "check":
                report, suppressed = apply_baseline(report, baseline_file)
                if suppressed:
                    print(f"baseline: suppressed {suppressed} known "
                          f"finding(s)", file=sys.stderr)
            if args.diff:
                pass  # dry run: the unified diff *is* the output
            elif args.format == "json":
                print(render_json(report))
            elif args.format == "sarif":
                print(render_sarif(
                    report,
                    plan_uri=args.plan or "",
                    schema_uri=args.db,
                ))
            else:
                print(render_text(report, show_fixits=False))
            if args.fail_on != "never":
                threshold = Severity.from_name(args.fail_on)
                if report.at_least(threshold):
                    return 1
        elif args.command == "schema":
            return _cmd_schema(ob, args)
        elif args.command == "normalize":
            # Journaled through the facade: the rewrite is ordinary
            # MT-DSR/MT-DB operations in the WAL, so it replays on
            # reopen — no out-of-band checkpoint needed.
            report = ob.normalize()
            print(
                f"dropped {report.dropped_supertype_declarations} supertype "
                f"and {report.dropped_property_declarations} property "
                f"declaration(s); journaled"
            )
        elif args.command == "history":
            entries = ob.history()
            if not entries:
                print("(no journaled operations since the last checkpoint)")
            for entry in entries:
                print(f"{entry.seq:4d}  {entry.operation.code:<7} "
                      f"{entry.operation.describe()}")
        elif args.command == "impact":
            if args.what == "drop-type":
                op = DropType(args.args[0])
            else:
                op = DropEssentialSupertype(args.args[0], args.args[1])
            print(ob.impact(op).summary())
        elif args.command == "render":
            print(render_lattice(lattice))
        elif args.command == "dot":
            print(to_dot(lattice, use_essential=args.essential))
        elif args.command == "tables":
            print(render_table1())
            print()
            print(render_table2(lattice))
            print()
            print(render_table3())
        elif args.command == "checkpoint":
            ob.checkpoint()
            print(f"checkpointed {len(lattice)} types; WAL truncated")
        elif args.command == "stats":
            if args.plan:
                from .staticcheck import load_plan

                plan = load_plan(args.plan)
                _, rejected, violations = _run_plan_observed(ob, plan)
                if rejected:
                    print(
                        f"note: {rejected} operation(s) rejected "
                        f"(counted in repro_rejections_total)",
                        file=sys.stderr,
                    )
                if violations:
                    print(
                        f"note: final state has {violations} axiom "
                        f"violation(s)", file=sys.stderr,
                    )
            if args.format == "json":
                print(REGISTRY.render_json())
            elif args.format == "prom":
                print(REGISTRY.render_prometheus(), end="")
            else:
                print(REGISTRY.render_text())
        elif args.command == "trace":
            from .staticcheck import load_plan

            plan = load_plan(args.plan)
            to_stdout = args.out == "-"
            sink = JsonlSink(
                sys.stdout if to_stdout else args.out,
                sample_rate=args.sample_rate,
            )
            previous_sink = _trace.set_sink(sink)
            try:
                _, rejected, violations = _run_plan_observed(ob, plan)
                sink.emit({
                    "type": "summary",
                    "plan": plan.name,
                    "operations": len(plan),
                    "rejected": rejected,
                    "axiom_violations": violations,
                    "metrics": REGISTRY.collect(),
                })
            finally:
                _trace.set_sink(previous_sink)
                sink.close()  # flush; only closes files the sink opened
            print(
                f"traced {len(plan)} operation(s): {sink.emitted} "
                f"record(s)"
                + ("" if to_stdout else f" -> {args.out}"),
                file=sys.stderr if to_stdout else sys.stdout,
            )
    except EvolutionError as exc:
        print(f"rejected [{error_code(exc)}]: {exc}", file=sys.stderr)
        for diag in getattr(exc, "diagnostics", ()) or ():
            step = diag.get("step")
            where = f" [step {step}]" if step is not None else ""
            print(
                f"  {diag.get('severity', '?')}: {diag.get('rule', '?')}: "
                f"{diag.get('message', '')}{where}",
                file=sys.stderr,
            )
        return exit_code_for(exc)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
