"""Query execution over extents, collections, and the schema itself.

Two query surfaces, mirroring the uniformity of the model:

* :class:`ExtentQuery` — select over the (deep) extent of a type or the
  members of a collection, filtered by behavioral predicates;
* :class:`SchemaQuery` — *reflective* queries ranging over the schema
  objects themselves (types defining a behavior, subtypes of a type,
  behaviors without implementations, ...), possible precisely because
  schema is first-class data.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, TYPE_CHECKING

from ..core.errors import UnknownTypeError
from .ast import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from ..core.properties import Property
    from ..tigukat.objects import TigukatObject
    from ..tigukat.store import Objectbase

__all__ = ["ExtentQuery", "SchemaQuery", "select", "schema_query"]


class ExtentQuery:
    """A fluent select over instances.

    >>> select(store, "T_employee").where(B("salary") > 1000).all()
    """

    def __init__(
        self,
        store: "Objectbase",
        source: str,
        deep: bool = True,
        from_collection: bool = False,
    ) -> None:
        self._store = store
        self._source = source
        self._deep = deep
        self._from_collection = from_collection
        self._predicates: list[Predicate] = []

    def where(self, predicate: Predicate) -> "ExtentQuery":
        """Add a conjunct; chaining ANDs predicates together."""
        clone = ExtentQuery(
            self._store, self._source, self._deep, self._from_collection
        )
        clone._predicates = [*self._predicates, predicate]
        return clone

    def _candidates(self) -> Iterator["TigukatObject"]:
        if self._from_collection:
            collection = self._store.collection(self._source)
            oids = collection.members()
        else:
            oids = self._store.extent(self._source, deep=self._deep)
        for oid in sorted(oids):
            if oid in self._store:
                yield self._store.get(oid)

    def __iter__(self) -> Iterator["TigukatObject"]:
        for obj in self._candidates():
            if all(p(self._store, obj) for p in self._predicates):
                yield obj

    def all(self) -> list["TigukatObject"]:
        return list(self)

    def count(self) -> int:
        return sum(1 for __ in self)

    def first(self) -> "TigukatObject | None":
        return next(iter(self), None)

    def exists(self) -> bool:
        return self.first() is not None

    def values(self, behavior_name: str) -> list[Any]:
        """Project one behavior over the matches (unresolvable → None)."""
        from ..core.errors import SchemaError

        out: list[Any] = []
        for obj in self:
            try:
                out.append(self._store.apply(obj, behavior_name))
            except SchemaError:
                out.append(None)
        return out

    def aggregate(self, behavior_name: str, fn: Callable[[list[Any]], Any]) -> Any:
        """Fold a projection: ``fn`` over the non-None behavior values.

        >>> select(store, "T_employee").aggregate("salary", sum)
        """
        return fn([v for v in self.values(behavior_name) if v is not None])

    def group_by(self, behavior_name: str) -> dict[Any, list["TigukatObject"]]:
        """Partition the matches by a behavior value.

        Unresolvable or unset behaviors group under ``None``; values must
        be hashable.
        """
        from ..core.errors import SchemaError

        groups: dict[Any, list["TigukatObject"]] = {}
        for obj in self:
            try:
                key = self._store.apply(obj, behavior_name)
            except SchemaError:
                key = None
            groups.setdefault(key, []).append(obj)
        return groups

    def group_counts(self, behavior_name: str) -> dict[Any, int]:
        """Group sizes by behavior value (the histogram form)."""
        return {
            key: len(members)
            for key, members in self.group_by(behavior_name).items()
        }


def select(
    store: "Objectbase", type_name: str, deep: bool = True
) -> ExtentQuery:
    """Query the extent of a type (deep by default: inclusion
    polymorphism makes subtype instances members too)."""
    if type_name not in store.lattice:
        raise UnknownTypeError(type_name)
    return ExtentQuery(store, type_name, deep=deep)


def from_collection(store: "Objectbase", name: str) -> ExtentQuery:
    """Query the members of a user-managed collection."""
    store.collection(name)  # existence check
    return ExtentQuery(store, name, from_collection=True)


class SchemaQuery:
    """Reflective queries over the schema objects."""

    def __init__(self, store: "Objectbase") -> None:
        self._store = store

    # -- type-centric -------------------------------------------------------

    def types_defining(self, behavior_name: str) -> frozenset[str]:
        """Types whose *native* set defines a behavior with this name."""
        lattice = self._store.lattice
        return frozenset(
            t for t in lattice.types()
            if any(p.name == behavior_name for p in lattice.n(t))
        )

    def types_understanding(self, behavior_name: str) -> frozenset[str]:
        """Types whose interface offers the behavior (native or
        inherited) — the set of receivers that can answer it."""
        lattice = self._store.lattice
        return frozenset(
            t for t in lattice.types()
            if any(p.name == behavior_name for p in lattice.interface(t))
        )

    def subtypes_of(self, type_name: str, transitive: bool = True) -> frozenset[str]:
        lattice = self._store.lattice
        if transitive:
            return lattice.all_subtypes(type_name)
        return lattice.subtypes(type_name)

    def common_supertypes(self, *type_names: str) -> frozenset[str]:
        """Types every argument conforms to (intersection of PLs)."""
        lattice = self._store.lattice
        if not type_names:
            return frozenset()
        result = lattice.pl(type_names[0])
        for name in type_names[1:]:
            result &= lattice.pl(name)
        return result

    def least_common_supertypes(self, *type_names: str) -> frozenset[str]:
        """The minimal elements of the common supertypes — the join
        candidates of the lattice."""
        lattice = self._store.lattice
        common = self.common_supertypes(*type_names)
        return frozenset(
            t for t in common
            if not any(
                t in lattice.pl(other) and other != t for other in common
            )
        )

    def types_without_extent(self) -> frozenset[str]:
        """Types with no associated class (no instances possible)."""
        lattice = self._store.lattice
        return frozenset(
            t for t in lattice.types()
            if self._store.class_of(t) is None
        )

    def types_where(
        self, predicate: Callable[[str], bool]
    ) -> frozenset[str]:
        """General reflective filter over type names."""
        return frozenset(
            t for t in self._store.lattice.types() if predicate(t)
        )

    # -- behavior-centric -----------------------------------------------------

    def name_conflicts(self, type_name: str) -> dict[str, frozenset[str]]:
        """Distinct behaviors sharing a display name in one interface —
        computed via the minimal supertypes, per the Section 5 claim."""
        from ..orion.conflict import find_name_conflicts_minimal

        return find_name_conflicts_minimal(self._store.lattice, type_name)

    def unimplemented_behaviors(self, type_name: str) -> frozenset["Property"]:
        """Interface members with no reachable implementation (callable
        contract gaps — useful after manual surgery)."""
        lattice = self._store.lattice
        out = set()
        for p in lattice.interface(type_name):
            behavior = self._store._behaviors.get(p.semantics)
            if behavior is None:
                out.add(p)
                continue
            if self._store.lookup_implementation(type_name, behavior) is None:
                out.add(p)
        return frozenset(out)

    def overriding_types(self, behavior_semantics: str) -> frozenset[str]:
        """Types that associate their own implementation with a behavior."""
        behavior = self._store.behavior(behavior_semantics)
        return behavior.implementing_types()


def schema_query(store: "Objectbase") -> SchemaQuery:
    return SchemaQuery(store)
