"""Behavioral and reflective queries over a TIGUKAT objectbase.

Instance queries (:func:`select`, :func:`from_collection`) filter extents
through behavioral predicates built with :func:`B`; reflective queries
(:func:`schema_query`) range over the schema objects themselves — the
facility the paper's meta-architecture provides ("reflective queries",
Section 3.1).
"""

from .ast import B, BehaviorTerm, Predicate
from .engine import (
    ExtentQuery,
    SchemaQuery,
    from_collection,
    schema_query,
    select,
)

__all__ = [
    "B",
    "BehaviorTerm",
    "Predicate",
    "ExtentQuery",
    "SchemaQuery",
    "select",
    "from_collection",
    "schema_query",
]
