"""Predicate combinators for behavioral queries.

The TIGUKAT meta-architecture supports "class behaviors, reflective
queries" (paper Section 3.1, citing [8]): because types, behaviors and
classes are first-class objects, queries can range over schema and data
alike.  This module provides the predicate language; execution lives in
:mod:`repro.query.engine`.

Predicates are small composable objects evaluated against
``(store, object)``; behavior access goes through ``store.apply`` so a
query observes exactly what the behavioral interface exposes (late
binding, computed implementations, conformance — everything).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..tigukat.objects import TigukatObject
    from ..tigukat.store import Objectbase

__all__ = ["Predicate", "B", "BehaviorTerm"]


class Predicate:
    """A boolean condition over one object."""

    def __init__(
        self, fn: Callable[["Objectbase", "TigukatObject"], bool],
        description: str,
    ) -> None:
        self._fn = fn
        self.description = description

    def __call__(self, store: "Objectbase", obj: "TigukatObject") -> bool:
        return bool(self._fn(store, obj))

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, o: self(s, o) and other(s, o),
            f"({self.description} and {other.description})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda s, o: self(s, o) or other(s, o),
            f"({self.description} or {other.description})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(
            lambda s, o: not self(s, o), f"(not {self.description})"
        )

    def __repr__(self) -> str:
        return f"<Predicate {self.description}>"


@dataclass(frozen=True)
class BehaviorTerm:
    """A reference to a behavior value, comparable into a Predicate.

    ``B("salary") > 1000`` builds a predicate that applies the ``salary``
    behavior to each candidate and compares.  Objects whose interface
    lacks the behavior — or where application fails — simply do not
    match (queries filter, they never crash on heterogeneous inputs).
    """

    name: str

    def _compare(self, op: Callable[[Any, Any], bool], sym: str, value: Any) -> Predicate:
        def check(store: "Objectbase", obj: "TigukatObject") -> bool:
            from ..core.errors import SchemaError

            try:
                actual = store.apply(obj, self.name)
            except SchemaError:
                return False
            if actual is None:
                return False
            try:
                return op(actual, value)
            except TypeError:
                return False

        return Predicate(check, f"{self.name} {sym} {value!r}")

    def __eq__(self, value: object) -> Predicate:  # type: ignore[override]
        return self._compare(operator.eq, "==", value)

    def __ne__(self, value: object) -> Predicate:  # type: ignore[override]
        return self._compare(operator.ne, "!=", value)

    def __lt__(self, value: Any) -> Predicate:
        return self._compare(operator.lt, "<", value)

    def __le__(self, value: Any) -> Predicate:
        return self._compare(operator.le, "<=", value)

    def __gt__(self, value: Any) -> Predicate:
        return self._compare(operator.gt, ">", value)

    def __ge__(self, value: Any) -> Predicate:
        return self._compare(operator.ge, ">=", value)

    def __hash__(self) -> int:  # dataclass eq is overridden above
        return hash(self.name)

    def defined(self) -> Predicate:
        """Matches objects whose interface offers the behavior at all."""

        def check(store: "Objectbase", obj: "TigukatObject") -> bool:
            from ..core.errors import SchemaError

            try:
                store.resolve_behavior(obj.type_name, self.name)
                return True
            except SchemaError:
                return False

        return Predicate(check, f"defined({self.name})")

    def is_null(self) -> Predicate:
        """Matches objects where the behavior is defined but unset."""

        def check(store: "Objectbase", obj: "TigukatObject") -> bool:
            from ..core.errors import SchemaError

            try:
                return store.apply(obj, self.name) is None
            except SchemaError:
                return False

        return Predicate(check, f"is_null({self.name})")


def B(name: str) -> BehaviorTerm:
    """Behavior reference, mirroring the paper's ``B_`` prefix."""
    return BehaviorTerm(name)
