"""Sherpa (Nguyen & Rieu, DKE 1989), reduced.

"Nguyen and Rieu discuss schema evolution in the Sherpa model ... The
emphasis of this work is to provide equal support for semantics of change
and change propagation.  The schema changes allowed in Sherpa follow
those of Orion and, therefore, can be represented by the axiomatic model"
(paper Section 4).

The native model is therefore Orion's operation set with Sherpa's
distinguishing feature on top: every schema change carries an explicit
*propagation mode* — immediate (convert affected instances now) or
deferred (screen them on access) — chosen per change, which is exactly
the "equal support" the paper credits Sherpa with.  Instances here are
lightweight property maps so the propagation half is executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..core.lattice import TypeLattice
from ..orion.conflict import resolve_interface
from ..orion.model import OrionDatabase, OrionProperty
from ..orion.operations import OrionOps
from ..orion.reduction import ReducedOrion
from .base import ReducibleSystem, SystemProfile

__all__ = ["PropagationMode", "SherpaSchema"]


class PropagationMode(Enum):
    IMMEDIATE = "immediate"   # convert now
    DEFERRED = "deferred"     # screen on access


@dataclass
class _Instance:
    class_name: str
    state: dict[str, Any] = field(default_factory=dict)
    clean_at: int = 0          # change counter the instance conforms to


class SherpaSchema(ReducibleSystem):
    """Orion-style changes with per-change propagation modes."""

    def __init__(self) -> None:
        self.ops = OrionOps()
        self._mirror = ReducedOrion()   # kept in lockstep for to_axiomatic
        self._instances: dict[int, _Instance] = {}
        self._next_oid = 1
        self._change_counter = 0
        self.converted = 0   # instances converted eagerly
        self.screened = 0    # instances coerced lazily

    @property
    def db(self) -> OrionDatabase:
        return self.ops.db

    # -- schema changes with propagation modes ---------------------------------

    def add_class(self, name: str, superclass: str | None = None) -> None:
        self.ops.op6(name, superclass)
        self._mirror.op6(name, superclass)

    def add_property(
        self,
        class_name: str,
        prop: OrionProperty,
        mode: PropagationMode = PropagationMode.DEFERRED,
    ) -> None:
        self.ops.op1(class_name, prop)
        self._mirror.op1(class_name, prop)
        self._after_change(class_name, mode)

    def drop_property(
        self,
        class_name: str,
        prop_name: str,
        mode: PropagationMode = PropagationMode.DEFERRED,
    ) -> None:
        self.ops.op2(class_name, prop_name)
        self._mirror.op2(class_name, prop_name)
        self._after_change(class_name, mode)

    def add_edge(
        self,
        class_name: str,
        superclass: str,
        mode: PropagationMode = PropagationMode.DEFERRED,
    ) -> None:
        self.ops.op3(class_name, superclass)
        self._mirror.op3(class_name, superclass)
        self._after_change(class_name, mode)

    def drop_edge(
        self,
        class_name: str,
        superclass: str,
        mode: PropagationMode = PropagationMode.DEFERRED,
    ) -> None:
        self.ops.op4(class_name, superclass)
        self._mirror.op4(class_name, superclass)
        self._after_change(class_name, mode)

    def _after_change(self, class_name: str, mode: PropagationMode) -> None:
        self._change_counter += 1
        if mode is PropagationMode.IMMEDIATE:
            for inst in self._instances.values():
                if self._affected(inst.class_name, class_name):
                    self._conform(inst)

    def _affected(self, instance_class: str, changed_class: str) -> bool:
        if instance_class == changed_class:
            return True
        if instance_class not in self.db:
            return False
        return changed_class in self.db.ancestors_of(instance_class)

    # -- instances ----------------------------------------------------------------

    def create_instance(self, class_name: str, **state: Any) -> int:
        self.db.get(class_name)
        oid = self._next_oid
        self._next_oid += 1
        visible = set(resolve_interface(self.db, class_name))
        unknown = set(state) - visible
        if unknown:
            raise KeyError(f"unknown properties {sorted(unknown)}")
        self._instances[oid] = _Instance(
            class_name, dict(state), self._change_counter
        )
        return oid

    def read(self, oid: int, prop_name: str) -> Any:
        """Deferred-mode screening happens here, on access."""
        inst = self._instances[oid]
        if inst.clean_at < self._change_counter:
            self._conform(inst, lazily=True)
        return inst.state.get(prop_name)

    def _conform(self, inst: _Instance, lazily: bool = False) -> None:
        visible = set(resolve_interface(self.db, inst.class_name))
        stale = set(inst.state) - visible
        if stale:
            for name in stale:
                del inst.state[name]
            if lazily:
                self.screened += 1
            else:
                self.converted += 1
        inst.clean_at = self._change_counter

    def pending(self) -> int:
        """Instances that still carry out-of-date state."""
        return sum(
            1 for inst in self._instances.values()
            if inst.clean_at < self._change_counter
        )

    # -- reduction -------------------------------------------------------------------

    @property
    def profile(self) -> SystemProfile:
        return SystemProfile(
            name="Sherpa",
            multiple_inheritance=True,
            ordered_superclasses=True,
            minimal_supertypes=False,
            minimal_native_properties=False,
            rooted=True,
            pointed=False,
            explicit_deletion=True,
            type_versioning=False,
            uniform_properties=False,
            drop_order_independent=False,  # inherits Orion's OP4 semantics
            reducible_to_axioms=True,
            axioms_reducible_to_it=False,
        )

    def to_axiomatic(self) -> TypeLattice:
        """Sherpa's changes follow Orion's, so its reduction *is* the
        Orion reduction: the lockstep mirror's lattice."""
        return self._mirror.lattice.copy()
