"""GemStone class modification (Penney & Stein, OOPSLA 1987), reduced.

"Schema evolution in GemStone is similar to Orion in its definition of a
number of invariants.  The GemStone model is less complex than Orion in
that multiple inheritance and explicit deletion of objects are not
permitted.  As a result, the schema evolution policies in GemStone are
simpler and cleaner.  Based on published work, the GemStone schema
changes can be expressed by the axiomatic model" (paper Section 4).

The native model here is deliberately the *restricted* one: every class
has exactly one superclass (a tree, not a DAG), properties are instance
variables with single-inheritance resolution (no order needed — there is
nothing to order), and objects are never explicitly deleted (drops
migrate instances upward instead).
"""

from __future__ import annotations

from ..core.config import LatticePolicy
from ..core.errors import (
    CycleError,
    DuplicateTypeError,
    OperationRejected,
    UnknownTypeError,
)
from ..core.lattice import TypeLattice
from ..core.properties import Property
from .base import ReducibleSystem, SystemProfile

__all__ = ["GemStoneSchema"]

ROOT = "Object"


class GemStoneSchema(ReducibleSystem):
    """A single-inheritance class hierarchy with GemStone's change ops."""

    def __init__(self) -> None:
        self._superclass: dict[str, str | None] = {ROOT: None}
        self._instance_variables: dict[str, dict[str, str]] = {ROOT: {}}
        # Penney & Stein's instance mechanism: every class modification
        # bumps the class's version; instances remember the version they
        # last conformed to and migrate lazily on access.
        self._class_version: dict[str, int] = {ROOT: 1}
        self._instances: dict[int, dict] = {}
        self._next_oid = 1
        self.lazy_migrations = 0

    # -- structure ---------------------------------------------------------

    def classes(self) -> frozenset[str]:
        return frozenset(self._superclass)

    def superclass_of(self, name: str) -> str | None:
        if name not in self._superclass:
            raise UnknownTypeError(name)
        return self._superclass[name]

    def subclasses_of(self, name: str) -> frozenset[str]:
        if name not in self._superclass:
            raise UnknownTypeError(name)
        return frozenset(
            c for c, s in self._superclass.items() if s == name
        )

    def ancestors_of(self, name: str) -> tuple[str, ...]:
        """The (unique) superclass chain, nearest first."""
        chain: list[str] = []
        current = self.superclass_of(name)
        while current is not None:
            if current in chain:  # pragma: no cover - defensive
                raise CycleError(name, current)
            chain.append(current)
            current = self._superclass[current]
        return tuple(chain)

    def all_instance_variables(self, name: str) -> dict[str, str]:
        """Resolved variables: single inheritance means the nearest
        definition wins and no cross-superclass conflicts can exist."""
        resolved: dict[str, str] = {}
        for ancestor in reversed(self.ancestors_of(name)):
            resolved.update(self._instance_variables[ancestor])
        resolved.update(self._instance_variables[name])
        return resolved

    # -- GemStone's class-modification operations ----------------------------

    def define_class(self, name: str, superclass: str = ROOT) -> None:
        """Subclass creation (the only way to add a class)."""
        if name in self._superclass:
            raise DuplicateTypeError(name)
        if superclass not in self._superclass:
            raise UnknownTypeError(superclass)
        self._superclass[name] = superclass
        self._instance_variables[name] = {}

    def add_instance_variable(
        self, class_name: str, var: str, constraint: str = ROOT
    ) -> None:
        """Add an instance variable (GemStone: with a class constraint)."""
        if class_name not in self._superclass:
            raise UnknownTypeError(class_name)
        if var in self.all_instance_variables(class_name):
            raise OperationRejected(
                "GS-ADD-IV",
                f"{class_name!r} already sees a variable named {var!r} "
                f"(GemStone forbids shadowing)",
            )
        self._instance_variables[class_name][var] = constraint
        self._bump_version(class_name)

    def remove_instance_variable(self, class_name: str, var: str) -> None:
        if class_name not in self._superclass:
            raise UnknownTypeError(class_name)
        if var not in self._instance_variables[class_name]:
            raise OperationRejected(
                "GS-DROP-IV",
                f"{var!r} is not defined locally in {class_name!r}",
            )
        del self._instance_variables[class_name][var]
        self._bump_version(class_name)

    def change_superclass(self, class_name: str, new_superclass: str) -> None:
        """Re-parent a class (staying single-inheritance, acyclic)."""
        if class_name == ROOT:
            raise OperationRejected("GS-RESUPER", "Object has no superclass")
        if new_superclass not in self._superclass:
            raise UnknownTypeError(new_superclass)
        if class_name == new_superclass or class_name in (
            set(self.ancestors_of(new_superclass)) | {new_superclass}
        ):
            raise CycleError(class_name, new_superclass)
        # GemStone forbids shadowing: the re-parented class must not see
        # duplicate variable names through the new chain.
        local = set(self._instance_variables[class_name])
        inherited = set(self.all_instance_variables(new_superclass))
        clash = local & inherited
        if clash:
            raise OperationRejected(
                "GS-RESUPER",
                f"variables {sorted(clash)} would be shadowed",
            )
        self._superclass[class_name] = new_superclass
        self._bump_version(class_name)

    def remove_class(self, class_name: str) -> None:
        """Class removal: subclasses are re-parented to the superclass
        (no explicit instance deletion in GemStone — instances migrate
        with the hierarchy)."""
        if class_name == ROOT:
            raise OperationRejected("GS-DROP", "Object cannot be removed")
        parent = self.superclass_of(class_name)
        assert parent is not None
        for sub in sorted(self.subclasses_of(class_name)):
            self._superclass[sub] = parent
            self._bump_version(sub)
        # "Explicit deletion of objects [is] not permitted": instances of
        # the removed class migrate up to the parent.
        for record in self._instances.values():
            if record["class"] == class_name:
                record["class"] = parent
                record["version"] = 0  # force migration on next access
        del self._superclass[class_name]
        del self._instance_variables[class_name]
        self._class_version.pop(class_name, None)

    # -- instances with lazy migration (Penney & Stein's mechanism) --------

    def _bump_version(self, class_name: str) -> None:
        """A class modification invalidates the class and (since variable
        resolution is chain-wide) all of its subclasses."""
        self._class_version[class_name] = (
            self._class_version.get(class_name, 1) + 1
        )
        for sub in self.subclasses_of(class_name):
            self._bump_version(sub)

    def create_instance(self, class_name: str, **variables) -> int:
        """A new instance conformant with the current class version."""
        if class_name not in self._superclass:
            raise UnknownTypeError(class_name)
        allowed = set(self.all_instance_variables(class_name))
        unknown = set(variables) - allowed
        if unknown:
            raise OperationRejected(
                "GS-NEW", f"unknown instance variables {sorted(unknown)}"
            )
        oid = self._next_oid
        self._next_oid += 1
        self._instances[oid] = {
            "class": class_name,
            "version": self._class_version.get(class_name, 1),
            "state": dict(variables),
        }
        return oid

    def _migrate_if_stale(self, record: dict) -> None:
        class_name = record["class"]
        current = self._class_version.get(class_name, 1)
        if record["version"] == current:
            return
        allowed = set(self.all_instance_variables(class_name))
        for var in set(record["state"]) - allowed:
            del record["state"][var]
        record["version"] = current
        self.lazy_migrations += 1

    def read(self, oid: int, var: str):
        """Read an instance variable, lazily migrating a stale instance
        to the current class definition first."""
        record = self._instances[oid]
        self._migrate_if_stale(record)
        if var not in self.all_instance_variables(record["class"]):
            raise OperationRejected(
                "GS-READ",
                f"{var!r} is not an instance variable of "
                f"{record['class']!r}",
            )
        return record["state"].get(var)

    def write(self, oid: int, var: str, value) -> None:
        record = self._instances[oid]
        self._migrate_if_stale(record)
        if var not in self.all_instance_variables(record["class"]):
            raise OperationRejected(
                "GS-WRITE",
                f"{var!r} is not an instance variable of "
                f"{record['class']!r}",
            )
        record["state"][var] = value

    def instance_version(self, oid: int) -> int:
        """The class version the instance currently conforms to."""
        return self._instances[oid]["version"]

    def stale_instances(self) -> int:
        """Instances that would migrate on next access."""
        return sum(
            1 for record in self._instances.values()
            if record["version"]
            != self._class_version.get(record["class"], 1)
        )

    # -- reduction -------------------------------------------------------------

    @property
    def profile(self) -> SystemProfile:
        return SystemProfile(
            name="GemStone",
            multiple_inheritance=False,
            ordered_superclasses=False,
            minimal_supertypes=False,
            minimal_native_properties=False,
            rooted=True,
            pointed=False,
            explicit_deletion=False,
            type_versioning=False,
            uniform_properties=False,
            drop_order_independent=True,  # trees: no rewiring ambiguity
            reducible_to_axioms=True,
            axioms_reducible_to_it=False,
        )

    def to_axiomatic(self) -> TypeLattice:
        """Reduce: ``Pe(c) = {superclass}``, ``Ne(c)`` = local variables
        (origin-qualified, like the Orion reduction)."""
        lattice = TypeLattice(
            LatticePolicy(rooted=True, pointed=False,
                          root_name=ROOT, base_name="")
        )
        # Parents before children (walk by chain depth).
        for name in sorted(
            self.classes() - {ROOT}, key=lambda c: len(self.ancestors_of(c))
        ):
            superclass = self._superclass[name]
            lattice.add_type(
                name,
                supertypes=[] if superclass == ROOT else [superclass],
                properties=[
                    Property(f"{name}.{var}", var, constraint)
                    for var, constraint in
                    self._instance_variables[name].items()
                ],
            )
        return lattice
