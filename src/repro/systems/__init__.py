"""Reductions of the surveyed systems and the comparison framework.

GemStone (single inheritance), Encore (type versioning), and Sherpa
(Orion-style changes with per-change propagation), each with a native
model and a reduction to the axiomatic lattice, plus adapters for
TIGUKAT and Orion — everything :func:`compare_systems` needs to render
the Section 5 comparison across all five systems.
"""

from .adapters import OrionSystem, TigukatSystem
from .base import ReducibleSystem, SystemProfile, compare_systems
from .encore import EncoreSchema, TypeVersion, VersionSet
from .gemstone import GemStoneSchema
from .sherpa import PropagationMode, SherpaSchema

__all__ = [
    "ReducibleSystem",
    "SystemProfile",
    "compare_systems",
    "GemStoneSchema",
    "EncoreSchema",
    "TypeVersion",
    "VersionSet",
    "SherpaSchema",
    "PropagationMode",
    "TigukatSystem",
    "OrionSystem",
]
