"""The common comparison framework for schema-evolution systems.

The paper's thesis: "By reducing systems to the axiomatic model, their
functionality with respect to dynamic schema evolution can be compared
within a common framework."  :class:`ReducibleSystem` is that interface:
a system exposes its current schema as an axiomatic
:class:`~repro.core.lattice.TypeLattice` plus a :class:`SystemProfile` of
capability flags, and :func:`compare_systems` tabulates any number of
systems side by side (the Section 5 discussion as a function).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["SystemProfile", "ReducibleSystem", "compare_systems"]


@dataclass(frozen=True)
class SystemProfile:
    """Capability flags of a schema-evolution system, per the paper.

    Each flag corresponds to a distinction Sections 4-5 draw between
    TIGUKAT, Orion, GemStone, Encore, and Sherpa.
    """

    name: str
    multiple_inheritance: bool
    ordered_superclasses: bool
    minimal_supertypes: bool       # maintains P(t) (only TIGUKAT/axioms)
    minimal_native_properties: bool  # maintains N(t)
    rooted: bool
    pointed: bool
    explicit_deletion: bool        # objects can be explicitly deleted
    type_versioning: bool          # Encore-style versions
    uniform_properties: bool       # stored/computed treated uniformly
    drop_order_independent: bool   # Section 5's headline comparison
    reducible_to_axioms: bool
    axioms_reducible_to_it: bool   # only TIGUKAT is bidirectional

    def flags(self) -> dict[str, bool]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "name"
        }


class ReducibleSystem(abc.ABC):
    """A schema-evolution system reducible to the axiomatic model."""

    @property
    @abc.abstractmethod
    def profile(self) -> SystemProfile:
        """The system's capability profile."""

    @abc.abstractmethod
    def to_axiomatic(self) -> "TypeLattice":
        """The current schema, reduced to the axiomatic model.

        The result must satisfy all nine axioms (under the system's
        policy) — :func:`repro.core.axioms.check_all` is the contract and
        is asserted in the test suite for every system.
        """


def compare_systems(*systems: ReducibleSystem) -> dict[str, dict[str, bool]]:
    """Tabulate capability flags: ``flag -> {system name -> value}``.

    The rendering used by the Section 5 example and the comparison
    benchmark; :mod:`repro.viz.tables` turns it into text.
    """
    profiles = [s.profile for s in systems]
    table: dict[str, dict[str, bool]] = {}
    for profile in profiles:
        for flag, value in profile.flags().items():
            table.setdefault(flag, {})[profile.name] = value
    return table
