"""ReducibleSystem adapters for TIGUKAT and Orion.

TIGUKAT and Orion live in their own packages (Sections 3 and 4); these
thin adapters give them the common :class:`ReducibleSystem` face so the
Section 5 comparison can line all five systems up in one table.
"""

from __future__ import annotations

from ..core.lattice import TypeLattice
from ..orion.reduction import ReducedOrion
from ..tigukat.store import Objectbase
from .base import ReducibleSystem, SystemProfile

__all__ = ["TigukatSystem", "OrionSystem"]


class TigukatSystem(ReducibleSystem):
    """TIGUKAT: the only system reducible in *both* directions.

    "In terms of subtyping and property inheritance, TIGUKAT and the
    axiomatic model are reducible in both directions while only the
    reduction from Orion to the axiomatic model is possible" (Section 5).
    """

    def __init__(self, store: Objectbase | None = None) -> None:
        self.store = store if store is not None else Objectbase()

    @property
    def profile(self) -> SystemProfile:
        return SystemProfile(
            name="TIGUKAT",
            multiple_inheritance=True,
            ordered_superclasses=False,
            minimal_supertypes=True,
            minimal_native_properties=True,
            rooted=True,
            pointed=True,
            explicit_deletion=True,
            type_versioning=False,
            uniform_properties=True,
            drop_order_independent=True,
            reducible_to_axioms=True,
            axioms_reducible_to_it=True,
        )

    def to_axiomatic(self) -> TypeLattice:
        # TIGUKAT's schema *is* an axiomatic lattice (the bidirectional
        # reduction): expose a copy of the live one.
        return self.store.lattice.copy()

    def from_axiomatic(self, lattice: TypeLattice) -> Objectbase:
        """The reverse reduction: rebuild an objectbase from a lattice.

        Only TIGUKAT offers this direction — the lattice's ``Pe``/``Ne``
        map one-to-one onto essential supertypes and behaviors.
        """
        from ..tigukat.behaviors import Signature

        store = Objectbase(policy=lattice.policy, bootstrap=False)
        for t in lattice.derivation.order:
            if t in store.lattice:
                continue
            behaviors = []
            for p in sorted(lattice.ne(t)):
                store.define_behavior(p.semantics, Signature(p.name))
                behaviors.append(p.semantics)
            base = lattice.base
            supers = [
                s for s in lattice.pe(t)
                if s != lattice.root and s != base and s in store.lattice
            ]
            store.add_type(t, supertypes=supers, behaviors=behaviors)
        return store


class OrionSystem(ReducibleSystem):
    """Orion behind the common interface (via its reduction)."""

    def __init__(self, reduced: ReducedOrion | None = None) -> None:
        self.reduced = reduced if reduced is not None else ReducedOrion()

    @property
    def profile(self) -> SystemProfile:
        return SystemProfile(
            name="Orion",
            multiple_inheritance=True,
            ordered_superclasses=True,
            minimal_supertypes=False,
            minimal_native_properties=False,
            rooted=True,
            pointed=False,
            explicit_deletion=True,
            type_versioning=False,
            uniform_properties=False,
            drop_order_independent=False,
            reducible_to_axioms=True,
            axioms_reducible_to_it=False,
        )

    def to_axiomatic(self) -> TypeLattice:
        return self.reduced.lattice.copy()
