"""Encore type versioning (Skarra & Zdonik, OOPSLA 1986), reduced.

"Skarra and Zdonik define a framework for versioning types in Encore as a
support mechanism for evolving type definitions.  This work is focussed
on dealing with change propagation rather than semantics of change.
Their schema evolution operations are similar to Orion and, thus,
representable by the axiomatic model" (paper Section 4).

The native model: a type change never mutates a type in place — it
creates a new *version*.  All versions of a type belong to its *version
set*; the version-set interface is the union of the member interfaces,
and reader/writer *handlers* mediate accesses from instances bound to one
version through the interface of another (the propagation mechanism the
framework was built for).

The reduction maps each type *version* onto an axiomatic type (versions
are types — exactly how the axiomatic model absorbs versioning), with the
previous version recorded as an essential supertype so the lineage is a
chain in the lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.config import LatticePolicy
from ..core.errors import OperationRejected, UnknownTypeError
from ..core.lattice import TypeLattice
from ..core.properties import Property
from .base import ReducibleSystem, SystemProfile

__all__ = ["TypeVersion", "VersionSet", "EncoreSchema"]

ROOT = "Entity"


@dataclass(frozen=True)
class TypeVersion:
    """One immutable version of a type: its property set at that version."""

    type_name: str
    number: int
    properties: frozenset[str]

    @property
    def version_name(self) -> str:
        return f"{self.type_name}@v{self.number}"


@dataclass
class VersionSet:
    """All versions of one type, plus the cross-version handlers."""

    type_name: str
    versions: list[TypeVersion] = field(default_factory=list)
    #: (property, reader-version) -> handler producing a substitute value
    handlers: dict[tuple[str, int], Callable[[Any], Any]] = field(
        default_factory=dict
    )

    @property
    def current(self) -> TypeVersion:
        return self.versions[-1]

    def interface(self) -> frozenset[str]:
        """The version-set interface: the union over all versions."""
        out: set[str] = set()
        for v in self.versions:
            out.update(v.properties)
        return frozenset(out)


class EncoreSchema(ReducibleSystem):
    """A versioned type system with Encore's evolution operations."""

    def __init__(self) -> None:
        self._sets: dict[str, VersionSet] = {}
        #: instances: oid -> (type, bound version number, state)
        self._instances: dict[int, tuple[str, int, dict[str, Any]]] = {}
        self._next_oid = 1

    # -- type definition and versioned evolution ------------------------------

    def define_type(
        self, name: str, properties: frozenset[str] | set[str] = frozenset()
    ) -> TypeVersion:
        if name in self._sets:
            raise OperationRejected(
                "ENCORE-DEFINE", f"type {name!r} already exists"
            )
        version = TypeVersion(name, 1, frozenset(properties))
        self._sets[name] = VersionSet(name, [version])
        return version

    def version_set(self, name: str) -> VersionSet:
        vs = self._sets.get(name)
        if vs is None:
            raise UnknownTypeError(name)
        return vs

    def add_property(self, type_name: str, prop: str) -> TypeVersion:
        """Evolve by adding a property: a NEW version, old ones untouched."""
        vs = self.version_set(type_name)
        if prop in vs.current.properties:
            raise OperationRejected(
                "ENCORE-ADD", f"{prop!r} already in the current version"
            )
        return self._new_version(vs, vs.current.properties | {prop})

    def drop_property(self, type_name: str, prop: str) -> TypeVersion:
        """Evolve by dropping a property (again: a new version)."""
        vs = self.version_set(type_name)
        if prop not in vs.current.properties:
            raise OperationRejected(
                "ENCORE-DROP", f"{prop!r} not in the current version"
            )
        return self._new_version(vs, vs.current.properties - {prop})

    def _new_version(
        self, vs: VersionSet, properties: frozenset[str]
    ) -> TypeVersion:
        version = TypeVersion(vs.type_name, len(vs.versions) + 1, properties)
        vs.versions.append(version)
        return version

    def install_handler(
        self,
        type_name: str,
        prop: str,
        reader_version: int,
        handler: Callable[[Any], Any],
    ) -> None:
        """Register a cross-version access handler.

        Skarra-Zdonik's mechanism: when a program written against version
        ``reader_version`` reads ``prop`` from an instance whose bound
        version lacks it, the handler computes a substitute from the
        instance state.
        """
        vs = self.version_set(type_name)
        if reader_version < 1 or reader_version > len(vs.versions):
            raise OperationRejected(
                "ENCORE-HANDLER", f"no version {reader_version}"
            )
        vs.handlers[(prop, reader_version)] = handler

    # -- instances bound to versions -------------------------------------------

    def create_instance(self, type_name: str, **state: Any) -> int:
        """An instance bound to the *current* version of its type."""
        vs = self.version_set(type_name)
        unknown = set(state) - set(vs.current.properties)
        if unknown:
            raise OperationRejected(
                "ENCORE-NEW", f"unknown properties {sorted(unknown)}"
            )
        oid = self._next_oid
        self._next_oid += 1
        self._instances[oid] = (type_name, vs.current.number, dict(state))
        return oid

    def bound_version(self, oid: int) -> int:
        return self._instances[oid][1]

    def read(self, oid: int, prop: str, reader_version: int | None = None) -> Any:
        """Read through the version-set interface.

        A read of a property the instance's bound version defines returns
        the stored value; otherwise the handler for the reader's version
        (default: current) mediates; with no handler, the read fails —
        exactly the Skarra-Zdonik contract.
        """
        type_name, bound, state = self._instances[oid]
        vs = self.version_set(type_name)
        reader = reader_version if reader_version else vs.current.number
        if prop not in vs.interface():
            raise OperationRejected(
                "ENCORE-READ",
                f"{prop!r} is not in the version-set interface of "
                f"{type_name!r}",
            )
        bound_props = vs.versions[bound - 1].properties
        if prop in bound_props and prop in state:
            return state[prop]
        if prop in bound_props:
            return None  # defined but never written
        handler = vs.handlers.get((prop, reader))
        if handler is None:
            raise OperationRejected(
                "ENCORE-READ",
                f"instance bound to v{bound} lacks {prop!r} and no handler "
                f"is installed for readers of v{reader}",
            )
        return handler(dict(state))

    # -- reduction ---------------------------------------------------------------

    @property
    def profile(self) -> SystemProfile:
        return SystemProfile(
            name="Encore",
            multiple_inheritance=False,
            ordered_superclasses=False,
            minimal_supertypes=False,
            minimal_native_properties=False,
            rooted=True,
            pointed=False,
            explicit_deletion=True,
            type_versioning=True,
            uniform_properties=False,
            drop_order_independent=True,  # versions never mutate in place
            reducible_to_axioms=True,
            axioms_reducible_to_it=False,
        )

    def to_axiomatic(self) -> TypeLattice:
        """Reduce: every version is a type; the lineage is a supertype
        chain (``v(n)`` has ``v(n-1)`` essential), so the version-set
        interface of the *newest* version is recoverable as ``I`` along
        its ``PL`` and old versions remain addressable — versioning is
        just more types, as the paper's claim requires."""
        lattice = TypeLattice(
            LatticePolicy(rooted=True, pointed=False,
                          root_name=ROOT, base_name="")
        )
        for vs in self._sets.values():
            previous: str | None = None
            for version in vs.versions:
                lattice.add_type(
                    version.version_name,
                    supertypes=[previous] if previous else [],
                    properties=[
                        Property(f"{version.version_name}.{p}", p)
                        for p in sorted(version.properties)
                    ],
                )
                previous = version.version_name
        return lattice
