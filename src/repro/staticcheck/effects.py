"""Per-operation effect summaries and the commutativity oracle.

The paper's central comparative result (Section 5) is that the
axiomatized operations make commutativity *statically decidable*: since
every operation mutates only the designer terms ``Pe``/``Ne`` (plus type
existence) and the rest is re-derived, two operations commute whenever
their read/write footprints over those terms are disjoint.  This module
makes that footprint explicit.

An :class:`EffectSummary` is a pair of cell sets over a small addressing
scheme:

``("type", t)``
    The existence/identity of type ``t`` (including its frozen flag,
    which is fixed at creation).  Read by every operation that names
    ``t``; written by ``AT``/``DT``.
``("pe", t, s)``
    The designer edge ``s ∈ Pe(t)``.  Policy-managed edges (the implicit
    link to the root, the base type's total ``Pe``) are *not* modelled —
    they are a deterministic function of the type set.
``("ne", t, sem)``
    The designer row ``sem ∈ Ne(t)`` (properties are identified by their
    semantics key).
``("derived", t)``
    The derived terms ``P/PL/N/H/I`` of ``t``.  Written for every type in
    the operation's dirty cone (the subject and its transitive subtypes,
    excluding the base type ``⊥``, whose derived row changes with almost
    every operation and which no acceptance condition ever reads); read
    by acceptance conditions that inspect derived state (MT-ASR's cycle
    check reads ``PL(supertype)``; AT under the ``ALL_INHERITED``
    essentiality policy copies ``I`` of each supertype).
``("pe-in", s)`` / ``("ne-any", sem)``
    Wildcard *read* cells: the set of edges into ``s`` (DT scans the
    dependents of the dropped type) and the set of rows carrying ``sem``
    anywhere (DB scans every ``Ne``).  A wildcard read conflicts with
    any concrete write it covers.  Writes are always concrete.

Two summaries **may conflict** when a write of one intersects a read or
write of the other (under wildcard matching).  Disjointness is a *sound*
commutation certificate — see :func:`ops_commute` — with the usual
one-sided conservatism: a "may-conflict" verdict can be a false alarm,
but a "commutes" verdict is never wrong.  The differential fuzz oracle
in ``tests/staticcheck/test_effects.py`` enforces exactly that
direction: no pair the oracle marks "commutes" is allowed to diverge
under real execution in either order.

An operation that is *rejected* at the evaluation state publishes an
empty write set: its reads still capture everything its acceptance
depends on, so if the partner operation touches none of them, the
rejection (and the resulting no-op) is stable under reordering.

On top of the per-operation summaries, :func:`analyze_pair` lifts the
oracle to whole plans from two concurrent writers: each plan is traced
symbolically from the shared base schema and every cross-plan step pair
is checked for conflicts — the static counterpart of the server's
admission-time interference gate (``repro serve --lint``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..core.config import EssentialityDefault
from ..core.errors import SchemaError
from ..core.operations import (
    AddEssentialProperty,
    AddEssentialSupertype,
    AddType,
    DropEssentialProperty,
    DropEssentialSupertype,
    DropPropertyEverywhere,
    DropType,
    SchemaOperation,
)
from ..obs.metrics import REGISTRY as _METRICS
from .registry import Diagnostic, Severity
from .symbolic import symbolic_run

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice
    from .analyzer import AnalysisReport
    from .plan import EvolutionPlan

__all__ = [
    "Cell",
    "EffectSummary",
    "effect_summary",
    "plan_summaries",
    "conflict_witness",
    "summaries_conflict",
    "ops_commute",
    "analyze_pair",
    "INTERFERENCE_RULE_ID",
]

#: A cell address; see the module docstring for the scheme.
Cell = tuple

INTERFERENCE_RULE_ID = "cross-plan-interference"

_PAIR_RUNS = _METRICS.counter(
    "repro_staticcheck_pair_runs_total",
    "Cross-plan interference analyses (analyze_pair invocations)",
)


def _widen(cell: Cell) -> Cell | None:
    """The wildcard read cell covering a concrete write cell, if any."""
    if cell[0] == "pe":
        return ("pe-in", cell[2])
    if cell[0] == "ne":
        return ("ne-any", cell[2])
    return None


@dataclass(frozen=True)
class EffectSummary:
    """The read/write footprint of one operation at one schema state.

    ``accepted`` records whether the operation passes its preconditions
    at the evaluation state; a rejected operation's ``writes`` is empty
    (it will not execute), while its ``reads`` still name every cell its
    acceptance depends on.
    """

    operation: SchemaOperation
    reads: frozenset[Cell]
    writes: frozenset[Cell]
    accepted: bool = True

    @property
    def write_cover(self) -> frozenset[Cell]:
        """Writes plus the wildcard cells they fall under (for matching
        against the partner's wildcard reads)."""
        cover = set(self.writes)
        for cell in self.writes:
            wide = _widen(cell)
            if wide is not None:
                cover.add(wide)
        return frozenset(cover)

    def conflicts_with(self, other: "EffectSummary") -> bool:
        return bool(conflict_witness(self, other))

    def __str__(self) -> str:
        return (
            f"{self.operation.code}: reads {len(self.reads)} cell(s), "
            f"writes {len(self.writes)}"
            + ("" if self.accepted else " [rejected]")
        )


def _cone(lattice: "TypeLattice", name: str) -> set[Cell]:
    """Derived-term cells dirtied by a change at ``name``: the type and
    its transitive subtypes, excluding the base type ``⊥``."""
    if name not in lattice:
        return {("derived", name)}
    base = lattice.base
    cells = {("derived", t) for t in lattice.all_subtypes(name) if t != base}
    cells.add(("derived", name))
    return cells


def _edge_cell(lattice: "TypeLattice", t: str, s: str) -> Cell | None:
    """The cell for the designer edge ``s ∈ Pe(t)``, or ``None`` when
    the edge is policy-managed (links to the root, the base's rows)."""
    if s == lattice.root or t == lattice.base:
        return None
    return ("pe", t, s)


def effect_summary(
    lattice: "TypeLattice", op: SchemaOperation
) -> EffectSummary:
    """The footprint of ``op`` evaluated against ``lattice`` (read-only).

    The summary is exact about *reads* (every cell the operation's
    acceptance or designer-state delta depends on) and conservative
    about *writes* (a superset of the cells it may change when executed
    at this state).
    """
    reads: set[Cell] = set()
    writes: set[Cell] = set()
    policy = lattice.policy

    try:
        op.validate(lattice)
        accepted = True
    except SchemaError:
        accepted = False

    if isinstance(op, AddType):
        reads.add(("type", op.name))
        for s in op.supertypes:
            reads.add(("type", s))
        if accepted:
            writes.add(("type", op.name))
            writes.add(("derived", op.name))
            for s in op.supertypes:
                cell = _edge_cell(lattice, op.name, s)
                if cell is not None:
                    writes.add(cell)
            for p in op.properties:
                writes.add(("ne", op.name, p.semantics))
            if policy.essentiality is EssentialityDefault.ALL_INHERITED:
                # Declaration-time essentiality copies each supertype's
                # reachable ancestors and full interface into Pe/Ne — the
                # new type's designer rows now depend on derived state.
                for s in op.supertypes:
                    reads.add(("derived", s))
                    for a in lattice.pl(s):
                        cell = _edge_cell(lattice, op.name, a)
                        if cell is not None:
                            writes.add(cell)
                    for q in lattice.interface(s):
                        writes.add(("ne", op.name, q.semantics))
    elif isinstance(op, DropType):
        reads.add(("type", op.name))
        reads.add(("pe-in", op.name))  # the dependents scan
        if accepted:
            writes.add(("type", op.name))
            writes |= _cone(lattice, op.name)
            for d in lattice.essential_subtypes(op.name):
                cell = _edge_cell(lattice, d, op.name)
                if cell is not None:
                    writes.add(cell)
    elif isinstance(op, AddEssentialSupertype):
        reads.add(("type", op.subject))
        reads.add(("type", op.supertype))
        # Acceptance reads the cycle check: subject ∈ PL(supertype)?
        reads.add(("derived", op.supertype))
        if accepted:
            cell = _edge_cell(lattice, op.subject, op.supertype)
            if cell is not None:
                writes.add(cell)
            writes |= _cone(lattice, op.subject)
    elif isinstance(op, DropEssentialSupertype):
        reads.add(("type", op.subject))
        reads.add(("type", op.supertype))
        if accepted:
            cell = _edge_cell(lattice, op.subject, op.supertype)
            if cell is not None:
                writes.add(cell)
            writes |= _cone(lattice, op.subject)
    elif isinstance(op, (AddEssentialProperty, DropEssentialProperty)):
        reads.add(("type", op.subject))
        if accepted:
            writes.add(("ne", op.subject, op.prop.semantics))
            writes |= _cone(lattice, op.subject)
    elif isinstance(op, DropPropertyEverywhere):
        sem = op.prop.semantics
        reads.add(("ne-any", sem))  # the every-Ne scan
        if accepted:
            for t in lattice.essential_in(op.prop):
                if lattice.is_frozen(t):
                    continue  # DB skips primitive types
                writes.add(("ne", t, sem))
                writes |= _cone(lattice, t)
    else:  # unknown operation kind: assume the worst over its names
        for attr in ("name", "subject", "supertype"):
            t = getattr(op, attr, None)
            if t:
                reads.add(("type", t))
                writes.add(("type", t))
                writes |= _cone(lattice, t)

    return EffectSummary(
        operation=op,
        reads=frozenset(reads),
        writes=frozenset(writes),
        accepted=accepted,
    )


def conflict_witness(
    a: EffectSummary, b: EffectSummary
) -> frozenset[Cell]:
    """The cells on which ``a`` and ``b`` may conflict (empty = disjoint).

    A conflict is a write of one intersecting a read or a write of the
    other; wildcard reads match every concrete write they cover.
    Write/write intersection is checked on the concrete cells only
    (writes are never wildcards).
    """
    return frozenset(
        (a.write_cover & b.reads)
        | (b.write_cover & a.reads)
        | (a.writes & b.writes)
    )


def summaries_conflict(a: EffectSummary, b: EffectSummary) -> bool:
    return bool(conflict_witness(a, b))


def ops_commute(
    lattice: "TypeLattice", a: SchemaOperation, b: SchemaOperation
) -> bool:
    """Sound commutation certificate for ``a`` and ``b`` at ``lattice``.

    ``True`` guarantees that executing ``a;b`` and ``b;a`` from this
    state accepts/rejects identically and reaches the same designer
    state (and therefore, by the axioms, the same derived state).
    ``False`` means only *may not commute* — disjointness is sufficient,
    not necessary.
    """
    return not summaries_conflict(
        effect_summary(lattice, a), effect_summary(lattice, b)
    )


def plan_summaries(
    lattice: "TypeLattice", plan: "EvolutionPlan | Iterable[SchemaOperation]"
) -> list[EffectSummary]:
    """Per-step summaries of a whole plan, each evaluated at the symbolic
    state its step actually sees (never mutates ``lattice``)."""
    from .plan import EvolutionPlan

    if not isinstance(plan, EvolutionPlan):
        plan = EvolutionPlan(plan)
    trace = symbolic_run(lattice, plan)
    return [effect_summary(step.before, step.operation) for step in trace]


def analyze_pair(
    lattice: "TypeLattice",
    plan_a: "EvolutionPlan",
    plan_b: "EvolutionPlan",
) -> "AnalysisReport":
    """Interference analysis for two plans racing from a shared schema.

    Both plans are symbolically traced from ``lattice`` (each against its
    own copy), every step is summarized at the state its own plan gives
    it, and every cross-plan step pair is checked for effect conflicts.
    An empty report certifies the plans commute at batch granularity:
    ``A;B`` and ``B;A`` accept identically and reach the same schema.

    Findings carry the ``cross-plan-interference`` rule id; ``step``
    indexes into ``plan_b`` (the incoming plan, in the server's usage),
    with the partner step named in the message.
    """
    from .analyzer import AnalysisReport

    _PAIR_RUNS.inc()
    sums_a = plan_summaries(lattice, plan_a)
    sums_b = plan_summaries(lattice, plan_b)
    name_a = plan_a.name or "plan A"
    name_b = plan_b.name or "plan B"
    diagnostics: list[Diagnostic] = []
    for j, sb in enumerate(sums_b):
        for i, sa in enumerate(sums_a):
            witness = conflict_witness(sa, sb)
            if not witness:
                continue
            cells = ", ".join(
                "/".join(str(part) for part in cell)
                for cell in sorted(witness)[:4]
            )
            diagnostics.append(
                Diagnostic(
                    rule_id=INTERFERENCE_RULE_ID,
                    severity=Severity.WARNING,
                    category="concurrency",
                    subject=getattr(
                        sb.operation, "name",
                        getattr(sb.operation, "subject", ""),
                    ),
                    step=j,
                    message=(
                        f"step {j} ({sb.operation.describe()}) of "
                        f"{name_b!r} may conflict with step {i} "
                        f"({sa.operation.describe()}) of {name_a!r} "
                        f"on {cells}"
                    ),
                    fixit=(
                        "serialize the plans through one writer, or "
                        "rebase the later plan onto the committed schema"
                    ),
                )
            )
    return AnalysisReport(
        diagnostics=tuple(diagnostics),
        rules_run=(INTERFERENCE_RULE_ID,),
        plan=plan_b,
    )
