"""Symbolic (dry-run) execution of an evolution plan.

The evaluator abstract-interprets a plan against a *copy* of the input
lattice: each step is first dry-run through
:func:`repro.core.impact.analyze_impact` (same engine, same axioms, so
the abstraction is exact), then — if accepted — applied to the working
copy.  A rejected step is recorded as *doomed* with its rejection reason
and execution continues on the unchanged state, so one bad operation
does not hide hazards further down the plan.

The resulting :class:`PlanTrace` keeps, per step, the operation, its
acceptance, the projected :class:`~repro.core.impact.ImpactReport`, and
the full derived lattice state before and after (``P``/``PL``/``N``/
``H``/``I`` all queryable through the snapshots).  Rules consume the
trace; nothing here ever touches the caller's lattice, journal, or WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..core.impact import ImpactReport, analyze_impact

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice
    from ..core.operations import SchemaOperation
    from .plan import EvolutionPlan

__all__ = ["StepOutcome", "PlanTrace", "symbolic_run"]


@dataclass(frozen=True)
class StepOutcome:
    """One plan step under symbolic execution.

    ``before``/``after`` are shared snapshots (a rejected step's
    ``after`` *is* its ``before``); treat them as read-only.
    """

    index: int
    operation: "SchemaOperation"
    accepted: bool
    rejection: str
    impact: ImpactReport
    before: "TypeLattice"
    after: "TypeLattice"
    #: machine-readable code of the rejection (the same taxonomy the live
    #: engine raises — see ``repro.core.errors``); empty when accepted.
    rejection_code: str = ""

    @property
    def changed(self) -> bool:
        return self.accepted and not self.impact.is_noop

    def describe(self) -> str:
        status = "ok" if self.accepted else f"DOOMED ({self.rejection})"
        return f"step {self.index}: {self.operation.describe()} -> {status}"


@dataclass(frozen=True)
class PlanTrace:
    """The full symbolic execution: initial state, steps, final state."""

    initial: "TypeLattice"
    steps: tuple[StepOutcome, ...]
    final: "TypeLattice"

    def __iter__(self) -> Iterator[StepOutcome]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def doomed(self) -> tuple[StepOutcome, ...]:
        return tuple(s for s in self.steps if not s.accepted)

    @property
    def accepted(self) -> tuple[StepOutcome, ...]:
        return tuple(s for s in self.steps if s.accepted)

    def state_after(self, index: int) -> "TypeLattice":
        """The symbolic lattice right after step ``index`` (read-only)."""
        return self.steps[index].after


def symbolic_run(lattice: "TypeLattice", plan: "EvolutionPlan") -> PlanTrace:
    """Abstract-interpret ``plan`` against a copy of ``lattice``.

    Never mutates ``lattice``.  Rejected steps do not stop the run; the
    state simply carries over (the closest sound approximation of "the
    migration driver skips or aborts here", and the one that lets later
    rules keep reporting).
    """
    initial = lattice.copy()
    work = initial
    steps: list[StepOutcome] = []
    for index, op in enumerate(plan):
        impact = analyze_impact(work, op)
        before = work
        if impact.accepted:
            work = work.copy()
            op.apply(work)
        steps.append(
            StepOutcome(
                index=index,
                operation=op,
                accepted=impact.accepted,
                rejection=impact.rejection,
                impact=impact,
                before=before,
                after=work,
                rejection_code=impact.rejection_code,
            )
        )
    return PlanTrace(initial=initial, steps=tuple(steps), final=work)
