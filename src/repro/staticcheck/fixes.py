"""Typed plan edits, the ``repro lint --fix`` applier, and baselines.

Advisory ``fixit`` strings tell a human what to do; this module gives
rules a way to say it to a machine.  A rule attaches :class:`PlanEdit`
values to its diagnostics (``Diagnostic.edits``) and the
:func:`fix_plan` driver applies them: analyze, apply one non-conflicting
batch of edits, re-analyze, repeat until no fixable finding remains.
Because every built-in auto-fix deletes a step that is provably inert at
its position (a rejected step, a no-op, an exact duplicate of an
already-applied step), applying fixes never changes the plan's final
schema — and the driver is idempotent: a second ``--fix`` run finds
nothing left to do.  The idempotence is enforced by construction (the
loop exits only when the fixable set is empty) and asserted in CI, which
runs the applier twice over ``examples/plans/``.

Edits reference *original* step indices of the plan they were computed
against; :func:`apply_edits` resolves a whole batch against one snapshot
so rules don't have to reason about index shifting.

The baseline facility (``--baseline write|check``) adopts the analyzer
incrementally on existing plans: ``write`` records fingerprints of every
current finding; ``check`` suppresses exactly those, so only *new*
findings gate.  Fingerprints hash the rule, subject, and the offending
operation itself — not the message or the step index — so renumbering a
plan does not invalidate a baseline.
"""

from __future__ import annotations

import difflib
import json
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from ..core.errors import PlanError
from ..core.operations import SchemaOperation
from ..obs.metrics import REGISTRY as _METRICS
from .analyzer import AnalysisReport, analyze
from .plan import EvolutionPlan
from .registry import Diagnostic, RuleRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = [
    "PlanEdit",
    "DeleteStep",
    "InsertStep",
    "ReplaceStep",
    "MoveStep",
    "apply_edits",
    "fixable",
    "FixResult",
    "fix_plan",
    "plan_diff",
    "baseline_fingerprints",
    "write_baseline",
    "apply_baseline",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1

_FIX_RUNS = _METRICS.counter(
    "repro_staticcheck_fix_runs_total", "fix_plan / lint --fix invocations"
)
_FIXITS_APPLIED = _METRICS.counter(
    "repro_staticcheck_fixits_applied_total",
    "Typed plan edits applied by the fixer, by edit kind",
    ("kind",),
)


@dataclass(frozen=True)
class PlanEdit:
    """Base of all typed plan edits; ``index`` is the 0-based step in the
    plan the edit was computed against."""

    index: int
    kind = "edit"

    def touches(self) -> frozenset[int]:
        """Original step indices this edit consumes (for conflict checks)."""
        return frozenset((self.index,))

    def describe(self) -> str:  # pragma: no cover - overridden
        return f"{self.kind} step {self.index}"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "index": self.index}


@dataclass(frozen=True)
class DeleteStep(PlanEdit):
    """Remove the step entirely."""

    kind = "delete"

    def describe(self) -> str:
        return f"delete step {self.index}"


@dataclass(frozen=True)
class InsertStep(PlanEdit):
    """Insert ``operation`` *before* original step ``index`` (``index ==
    len(plan)`` appends)."""

    operation: SchemaOperation = None  # type: ignore[assignment]
    kind = "insert"

    def touches(self) -> frozenset[int]:
        return frozenset()  # consumes no existing step

    def describe(self) -> str:
        return f"insert {self.operation.describe()} before step {self.index}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "index": self.index,
            "operation": self.operation.to_dict(),
        }


@dataclass(frozen=True)
class ReplaceStep(PlanEdit):
    """Replace the step with ``operation``."""

    operation: SchemaOperation = None  # type: ignore[assignment]
    kind = "replace"

    def describe(self) -> str:
        return f"replace step {self.index} with {self.operation.describe()}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "index": self.index,
            "operation": self.operation.to_dict(),
        }


@dataclass(frozen=True)
class MoveStep(PlanEdit):
    """Move the step so it lands *before* original step ``to_index``."""

    to_index: int = 0
    kind = "move"

    def describe(self) -> str:
        return f"move step {self.index} before step {self.to_index}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "index": self.index,
            "to_index": self.to_index,
        }


def apply_edits(
    plan: EvolutionPlan, edits: Iterable[PlanEdit]
) -> EvolutionPlan:
    """Apply a batch of edits, all indexed against ``plan`` as given.

    Raises :class:`~repro.core.errors.PlanError` on an out-of-range index
    or two edits consuming the same original step — a batch must be
    internally consistent (``fix_plan`` guarantees this per pass).
    """
    ops = list(plan.operations)
    n = len(ops)
    deleted: set[int] = set()
    replaced: dict[int, SchemaOperation] = {}
    inserts: dict[int, list[SchemaOperation]] = defaultdict(list)
    claimed: set[int] = set()
    for e in edits:
        touched = e.touches()
        if touched & claimed:
            raise PlanError(
                f"conflicting edits: step {min(touched & claimed)} "
                "consumed twice in one batch"
            )
        claimed |= touched
        if isinstance(e, DeleteStep):
            if not 0 <= e.index < n:
                raise PlanError(f"delete: step {e.index} out of range")
            deleted.add(e.index)
        elif isinstance(e, ReplaceStep):
            if not 0 <= e.index < n:
                raise PlanError(f"replace: step {e.index} out of range")
            replaced[e.index] = e.operation
        elif isinstance(e, InsertStep):
            if not 0 <= e.index <= n:
                raise PlanError(f"insert: position {e.index} out of range")
            inserts[e.index].append(e.operation)
        elif isinstance(e, MoveStep):
            if not 0 <= e.index < n:
                raise PlanError(f"move: step {e.index} out of range")
            if not 0 <= e.to_index <= n:
                raise PlanError(f"move: position {e.to_index} out of range")
            deleted.add(e.index)
            inserts[e.to_index].append(ops[e.index])
        else:
            raise PlanError(f"unknown edit kind: {e!r}")
    out: list[SchemaOperation] = []
    for i in range(n + 1):
        out.extend(inserts.get(i, ()))
        if i < n and i not in deleted:
            out.append(replaced.get(i, ops[i]))
    return plan.with_operations(out)


def fixable(report: AnalysisReport) -> tuple[Diagnostic, ...]:
    """The findings in ``report`` that carry machine-applicable edits."""
    return tuple(d for d in report.diagnostics if d.edits)


@dataclass
class FixResult:
    """What :func:`fix_plan` did: the rewritten plan, the report of its
    final (clean-of-fixables) analysis, and the fix log."""

    plan: EvolutionPlan
    report: AnalysisReport
    passes: int
    applied: tuple[Diagnostic, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def summary(self) -> str:
        n = sum(len(d.edits) for d in self.applied)
        return (
            f"applied {n} fix(es) in {self.passes} pass(es); "
            f"{self.report.summary()} remain"
        )


def fix_plan(
    lattice: "TypeLattice",
    plan: EvolutionPlan,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    registry: RuleRegistry | None = None,
    max_passes: int = 8,
) -> FixResult:
    """Analyze ``plan`` and apply fixable diagnostics until none remain.

    Each pass applies every finding whose edits don't collide with an
    earlier finding's in the same pass (collisions wait for the next
    analysis round, which recomputes them against fresh indices).  The
    loop terminates when the fixable set is empty — which makes a second
    invocation a no-op — or at ``max_passes`` as a hard backstop.
    ``lattice`` is never mutated.
    """
    _FIX_RUNS.inc()
    select = tuple(select) if select is not None else None
    ignore = tuple(ignore) if ignore is not None else None
    current = plan
    applied: list[Diagnostic] = []
    passes = 0
    while True:
        report = analyze(
            lattice, current, select=select, ignore=ignore, registry=registry
        )
        todo = fixable(report)
        if not todo or passes >= max_passes:
            break
        claimed: set[int] = set()
        batch: list[PlanEdit] = []
        batch_diags: list[Diagnostic] = []
        for d in todo:
            touched = frozenset().union(*(e.touches() for e in d.edits))
            if touched & claimed:
                continue
            claimed |= touched
            batch.extend(d.edits)
            batch_diags.append(d)
        if not batch:  # every remaining fix collided; let the loop end
            break
        current = apply_edits(current, batch)
        applied.extend(batch_diags)
        for e in batch:
            _FIXITS_APPLIED.labels(kind=e.kind).inc()
        passes += 1
    return FixResult(
        plan=current, report=report, passes=passes, applied=tuple(applied)
    )


def plan_diff(
    original: EvolutionPlan, fixed: EvolutionPlan, path: str = ""
) -> str:
    """A unified diff of the two plans' on-disk serialization."""
    label = path or original.source or original.name or "plan"
    return "".join(
        difflib.unified_diff(
            original.dumps().splitlines(keepends=True),
            fixed.dumps().splitlines(keepends=True),
            fromfile=label,
            tofile=label,
        )
    )


def _fingerprint(d: Diagnostic, plan: EvolutionPlan | None) -> str:
    """A stable identity for a finding: rule, subject, and the offending
    operation (by value) — but never the message or the step index, so
    reordering or renumbering a plan keeps the baseline valid."""
    anchor = ""
    if d.step is not None and plan is not None and 0 <= d.step < len(plan):
        anchor = json.dumps(plan[d.step].to_dict(), sort_keys=True)
    return f"{d.rule_id}::{d.subject}::{anchor}"


def baseline_fingerprints(report: AnalysisReport) -> list[str]:
    """Occurrence-counted fingerprints of every finding in ``report``."""
    seen: dict[str, int] = defaultdict(int)
    out: list[str] = []
    for d in report.diagnostics:
        fp = _fingerprint(d, report.plan)
        seen[fp] += 1
        out.append(f"{fp}#{seen[fp]}")
    return out


def write_baseline(path: str | Path, report: AnalysisReport) -> int:
    """Record every current finding as accepted; returns the count."""
    fingerprints = sorted(baseline_fingerprints(report))
    Path(path).write_text(
        json.dumps(
            {
                "version": BASELINE_VERSION,
                "tool": "repro-staticcheck",
                "fingerprints": fingerprints,
            },
            indent=2,
        )
        + "\n"
    )
    return len(fingerprints)


def apply_baseline(
    report: AnalysisReport, path: str | Path
) -> tuple[AnalysisReport, int]:
    """Suppress baselined findings; returns (filtered report, #suppressed).

    Raises :class:`~repro.core.errors.PlanError` when the baseline file
    is missing or unreadable — a CI check against a absent baseline is a
    configuration error, not a clean run.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PlanError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise PlanError(f"{path}: unsupported baseline format")
    accepted = set(doc.get("fingerprints", ()))
    seen: dict[str, int] = defaultdict(int)
    kept: list[Diagnostic] = []
    suppressed = 0
    for d in report.diagnostics:
        fp = _fingerprint(d, report.plan)
        seen[fp] += 1
        if f"{fp}#{seen[fp]}" in accepted:
            suppressed += 1
        else:
            kept.append(d)
    filtered = AnalysisReport(
        diagnostics=tuple(kept),
        rules_run=report.rules_run,
        plan=report.plan,
        trace=report.trace,
    )
    return filtered, suppressed
