"""Policy-parameterized symbolic replay: Orion vs. TIGUKAT semantics.

Section 5's headline hazard: "Dropping a series of edges in Orion can
produce a different lattice depending on the order in which the edges
are dropped.  In TIGUKAT, the ordering is irrelevant."  The culprit is
Orion's OP4 rewiring — dropping a class's *last* superclass links it to
that superclass's superclasses *as they are at drop time*.

This module lets the analyzer detect the hazard in a concrete plan
without executing it: the plan's edge drops are replayed symbolically
under both engine policies — natively through Orion's OP4 on a mirrored
:class:`~repro.orion.model.OrionDatabase`, and axiomatically through
MT-DSR on a lattice copy — in the plan order and in sampled
permutations, and the sets of distinct final lattices are diffed.  A
plan whose drops produce more than one Orion outcome is order-dependent
under Orion while (provably, and checked here) order-independent under
TIGUKAT.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.derivation import topological_order
from ..core.errors import SchemaError
from ..orion.model import ROOT_CLASS, OrionDatabase
from ..orion.operations import OrionOps

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = ["OrderHazard", "mirror_to_orion", "find_order_hazard"]


@dataclass(frozen=True)
class OrderHazard:
    """Evidence that a plan's edge drops are order-dependent under Orion."""

    drops: tuple[tuple[str, str], ...]
    orders_tried: int
    orion_distinct: int
    tigukat_distinct: int

    @property
    def diverges(self) -> bool:
        return self.orion_distinct > 1

    def describe(self) -> str:
        pairs = ", ".join(f"{t}-/->{s}" for t, s in self.drops)
        return (
            f"dropping {{{pairs}}} yields {self.orion_distinct} distinct "
            f"lattices under Orion OP4 rewiring across {self.orders_tried} "
            f"orders, but {self.tigukat_distinct} under TIGUKAT MT-DSR"
        )


def mirror_to_orion(lattice: "TypeLattice") -> OrionDatabase:
    """An Orion-policy mirror of the lattice's essential structure.

    Types map to classes (the root maps to ``OBJECT``; the base, which
    Orion's relaxed pointedness has no counterpart for, is elided) and
    the *minimal* immediate supertypes ``P(t)`` map to the ordered
    superclass list, alphabetically ordered — the canonical order the
    reduction uses ("The Pe set can easily be ordered for this
    purpose").  ``P`` rather than raw ``Pe`` because an Orion class only
    carries its direct edges — the paper notes Orion cannot represent
    dominated essential declarations at all — and it is exactly the
    direct-edge structure that OP4's last-superclass rewiring acts on.
    Properties are irrelevant to edge-drop rewiring and not mirrored.
    """
    db = OrionDatabase()
    root, base = lattice.root, lattice.base

    def as_class(name: str) -> str:
        return ROOT_CLASS if name == root else name

    pe_map = {
        t: frozenset(s for s in lattice.p(t) if s != base)
        for t in lattice.types()
        if t != base
    }
    for t in topological_order(pe_map):
        if t == root:
            continue
        supers = [as_class(s) for s in sorted(pe_map[t])] or [ROOT_CLASS]
        db.add_class(as_class(t), supers)
    return db


def _orion_outcome(
    db: OrionDatabase, drops: list[tuple[str, str]]
) -> tuple:
    ops = OrionOps(db.copy())
    for c, s in drops:
        if c not in ops.db or s not in ops.db.get(c).superclasses:
            continue
        try:
            ops.op4(c, s)
        except SchemaError:
            continue
    return ops.db.fingerprint()


def _tigukat_outcome(
    lattice: "TypeLattice", drops: list[tuple[str, str]]
) -> tuple:
    lat = lattice.copy()
    for t, s in drops:
        if t not in lat or s not in lat:
            continue
        try:
            lat.drop_essential_supertype(t, s)
        except SchemaError:
            continue
    return lat.derived_fingerprint()


def _orders(
    drops: list[tuple[str, str]], n_orders: int, seed: int
) -> list[list[tuple[str, str]]]:
    """The plan order plus up to ``n_orders - 1`` other permutations."""
    if len(drops) <= 4:
        perms = [list(p) for p in itertools.permutations(drops)]
        return perms[:max(n_orders, 1)]
    rng = random.Random(seed)
    orders = [list(drops)]
    seen = {tuple(drops)}
    attempts = 0
    while len(orders) < n_orders and attempts < n_orders * 10:
        attempts += 1
        perm = drops[:]
        rng.shuffle(perm)
        if tuple(perm) not in seen:
            seen.add(tuple(perm))
            orders.append(perm)
    return orders


def find_order_hazard(
    lattice: "TypeLattice",
    drops: list[tuple[str, str]],
    n_orders: int = 12,
    seed: int = 0,
) -> OrderHazard | None:
    """Replay ``drops`` under both policies and report any divergence.

    ``drops`` are ``(subtype, supertype)`` pairs in plan order.  Returns
    ``None`` when fewer than two drops (no ordering to vary).
    """
    if len(drops) < 2:
        return None
    root = lattice.root

    def as_class(pair: tuple[str, str]) -> tuple[str, str]:
        t, s = pair
        return (t, ROOT_CLASS if s == root else s)

    db = mirror_to_orion(lattice)
    orders = _orders(list(drops), n_orders, seed)
    orion_outcomes = {
        _orion_outcome(db, [as_class(p) for p in order]) for order in orders
    }
    tigukat_outcomes = {
        _tigukat_outcome(lattice, order) for order in orders
    }
    return OrderHazard(
        drops=tuple(drops),
        orders_tried=len(orders),
        orion_distinct=len(orion_outcomes),
        tigukat_distinct=len(tigukat_outcomes),
    )
