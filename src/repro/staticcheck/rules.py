"""The built-in rule catalogue of the schema-evolution static analyzer.

Two rule scopes:

* **schema** rules look at one lattice state (the final symbolic state
  when a plan is analyzed).  The five of them are the historic
  ``repro.core.lint`` advisory checks, migrated into the registry.
* **plan** rules look at the whole symbolic execution trace and flag
  hazards no single-state check can see: doomed operations, conflicts a
  later step introduces, Orion-vs-TIGUKAT order-dependence divergence
  (the paper's Section 5 hazard), lossy drops, redundancy creep,
  drop/re-add churn, duplicate and no-op steps, and instance-migration
  impact estimates.

Every rule carries an example trigger and a fix-it suggestion; the rule
catalogue in ``docs/staticcheck.md`` is written from these fields.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator

from ..core.errors import SchemaError
from ..core.operations import (
    AddType,
    DropEssentialProperty,
    DropEssentialSupertype,
    DropPropertyEverywhere,
    DropType,
)
from ..orion.conflict import find_name_conflicts_minimal
from .effects import effect_summary, summaries_conflict
from .engines import find_order_hazard
from .fixes import DeleteStep
from .registry import REGISTRY, Diagnostic, Severity, rule

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice
    from .analyzer import AnalysisContext

__all__ = ["SCHEMA_RULE_IDS", "PLAN_RULE_IDS"]

#: The migrated ``core.lint`` rules, in their historic order.
SCHEMA_RULE_IDS = (
    "redundant-essential-supertype",
    "redundant-essential-property",
    "shadowed-name",
    "empty-interface",
    "single-subtype-chain",
)

PLAN_RULE_IDS = (
    "doomed-operation",
    "order-dependence-hazard",
    "late-name-conflict",
    "lossy-property-drop",
    "drop-readd-churn",
    "redundancy-introduced",
    "migration-impact",
    "duplicate-step",
    "no-op-step",
    "reorder-hazard",
    "undo-unsafe-step",
    "cross-plan-interference",
)

_DESTRUCTIVE = (
    DropType,
    DropEssentialSupertype,
    DropEssentialProperty,
    DropPropertyEverywhere,
)


# ----------------------------------------------------------------------
# Schema-state rules (migrated from repro.core.lint)
# ----------------------------------------------------------------------


@rule(
    "redundant-essential-supertype",
    scope="schema",
    severity=Severity.INFO,
    category="redundancy",
    summary="an essential supertype is dominated (reachable through "
            "another essential supertype)",
    example="Pe(T_ta) = {T_student, T_person} with T_student ⊑ T_person",
    fixit="drop the dominated declaration, or run `normalize` to rewrite "
          "Pe to the minimal form",
)
def _redundant_supertypes(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    lattice = ctx.schema
    base, root = lattice.base, lattice.root
    for t in sorted(lattice.types()):
        if t == base:
            continue  # Pe(⊥) is total by the pointedness policy
        for s in sorted(lattice.pe(t) - lattice.p(t)):
            if s == root:
                continue  # the implicit root declaration is policy
            yield Diagnostic(
                "", Severity.INFO, "", subject=t,
                message=f"{s!r} is reachable through another essential "
                        f"supertype (will be re-established on drops)",
            )


@rule(
    "redundant-essential-property",
    scope="schema",
    severity=Severity.INFO,
    category="redundancy",
    summary="an essential property is inherited, so it is not native",
    example="taxBracket ∈ Ne(T_employee) while already in H(T_employee)",
    fixit="drop the declaration unless the adopt-on-drop insurance is "
          "intended",
)
def _redundant_properties(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    lattice = ctx.schema
    for t in sorted(lattice.types()):
        for p in sorted(lattice.ne(t) - lattice.n(t)):
            yield Diagnostic(
                "", Severity.INFO, "", subject=t,
                message=f"{p} is inherited; it will be adopted as native if "
                        f"its defining supertype disappears",
            )


@rule(
    "shadowed-name",
    scope="schema",
    severity=Severity.WARNING,
    category="conflict",
    summary="two distinct properties share a display name in one interface",
    example="person.name and taxSource.name both visible in I(T_employee)",
    fixit="rename one property, or rely on Orion-style order resolution "
          "explicitly",
)
def _shadowed_names(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    lattice = ctx.schema
    for t in sorted(lattice.types()):
        for name, keys in sorted(
            find_name_conflicts_minimal(lattice, t).items()
        ):
            yield Diagnostic(
                "", Severity.WARNING, "", subject=t,
                message=f"name {name!r} denotes {sorted(keys)} in I({t})",
            )


@rule(
    "empty-interface",
    scope="schema",
    severity=Severity.INFO,
    category="design",
    summary="a non-root type whose interface is empty",
    example="add-type T_bare with no properties and no supertypes",
    fixit="add essential properties, or collapse the type",
)
def _empty_interfaces(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    lattice = ctx.schema
    for t in sorted(lattice.types()):
        if t in (lattice.root, lattice.base):
            continue
        if not lattice.interface(t):
            yield Diagnostic(
                "", Severity.INFO, "", subject=t,
                message="interface is empty",
            )


@rule(
    "single-subtype-chain",
    scope="schema",
    severity=Severity.INFO,
    category="design",
    summary="a pass-through type between one supertype and one subtype "
            "adding nothing to the interface",
    example="T_top -> T_mid -> T_bot with N(T_mid) = ∅",
    fixit="collapse the chain: reparent the subtype and drop the middle "
          "type",
)
def _single_subtype_chains(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    lattice = ctx.schema
    base = lattice.base
    for t in sorted(lattice.types()):
        if t in (lattice.root, base):
            continue
        subtypes = lattice.subtypes(t) - ({base} if base else set())
        if (
            len(lattice.p(t)) == 1
            and len(subtypes) == 1
            and not lattice.n(t)
        ):
            yield Diagnostic(
                "", Severity.INFO, "", subject=t,
                message="adds nothing to the interface between "
                        f"{next(iter(lattice.p(t)))!r} and "
                        f"{next(iter(subtypes))!r}",
            )


# ----------------------------------------------------------------------
# Plan-trace rules
# ----------------------------------------------------------------------


@rule(
    "doomed-operation",
    scope="plan",
    severity=Severity.ERROR,
    category="hazard",
    summary="a plan step will be rejected by the axioms when executed",
    example="add-edge T_a T_b when T_b ⊑ T_a (Axiom of Acyclicity), or "
            "drop-edge T_x T_object (Axiom of Rootedness)",
    fixit="remove the step, or reorder the plan so its preconditions hold",
)
def _doomed_operations(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    for step in ctx.trace:
        if not step.accepted:
            # A rejected step never executes, so deleting it is always
            # schema-preserving: safe to auto-fix.
            yield Diagnostic(
                "", Severity.ERROR, "", step=step.index,
                subject=getattr(
                    step.operation, "name",
                    getattr(step.operation, "subject", ""),
                ),
                message=f"{step.operation.describe()} would be rejected "
                        f"[{step.rejection_code or 'operation-rejected'}]: "
                        f"{step.rejection}",
                edits=(DeleteStep(step.index),),
            )


@rule(
    "order-dependence-hazard",
    scope="plan",
    severity=Severity.WARNING,
    category="hazard",
    summary="the plan's edge drops are order-dependent under Orion "
            "semantics (Section 5) though order-independent under TIGUKAT",
    example="drop-edge T_c T_b; drop-edge T_b T_a — Orion's OP4 rewires "
            "differently depending on which runs first",
    fixit="run the plan on the axiomatic (TIGUKAT-policy) engine, or pin "
          "a canonical drop order",
)
def _order_dependence(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    drop_steps = [
        s for s in ctx.trace
        if isinstance(s.operation, DropEssentialSupertype)
    ]
    drops = [
        (s.operation.subject, s.operation.supertype) for s in drop_steps
    ]
    if not drops:
        return
    # Replay from the symbolic state just before the first drop, so the
    # hazard is detected even when the plan bootstrapped the types itself.
    hazard = find_order_hazard(drop_steps[0].before, drops)
    if hazard is not None and hazard.diverges:
        yield Diagnostic(
            "", Severity.WARNING, "",
            step=drop_steps[0].index,
            subject=drop_steps[0].operation.subject,
            message=hazard.describe(),
        )


def _conflicts(lattice: "TypeLattice") -> frozenset[tuple[str, str]]:
    return frozenset(
        (t, name)
        for t in lattice.types()
        for name in find_name_conflicts_minimal(lattice, t)
    )


@rule(
    "late-name-conflict",
    scope="plan",
    severity=Severity.WARNING,
    category="conflict",
    summary="a plan step introduces a property-name conflict that did "
            "not exist before it",
    example="add-edge T_employee T_taxSource brings a second 'name' into "
            "I(T_employee)",
    fixit="rename one of the colliding properties before this step",
)
def _late_name_conflicts(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    before = _conflicts(ctx.trace.initial)
    for step in ctx.trace:
        if not step.changed:
            continue
        after = _conflicts(step.after)
        for t, name in sorted(after - before):
            yield Diagnostic(
                "", Severity.WARNING, "", step=step.index, subject=t,
                message=f"{step.operation.describe()} introduces a name "
                        f"conflict: {name!r} becomes ambiguous in I({t})",
            )
        before = after


@rule(
    "lossy-property-drop",
    scope="plan",
    severity=Severity.WARNING,
    category="migration",
    summary="a step removes properties from surviving interfaces; stored "
            "instance values become unreachable",
    example="drop-type T_person loses 'name' from I(T_student)",
    fixit="screen or convert affected instances first (see "
          "repro.propagation), or re-home the property",
)
def _lossy_drops(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    for step in ctx.trace:
        if not step.accepted:
            continue
        for t, (_gained, lost) in sorted(step.impact.interface_changes.items()):
            if not lost:
                continue
            names = sorted(str(p) for p in lost)
            yield Diagnostic(
                "", Severity.WARNING, "", step=step.index, subject=t,
                message=f"I({t}) loses {names}; instance values under "
                        f"these properties become unreachable",
            )


@rule(
    "drop-readd-churn",
    scope="plan",
    severity=Severity.WARNING,
    category="migration",
    summary="a type is dropped and later re-created in the same plan",
    example="drop-type T_student ... add-type T_student",
    fixit="replace the drop/re-add pair with in-place MT-* edits to keep "
          "instance identity",
)
def _drop_readd(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    dropped_at: dict[str, int] = {}
    for step in ctx.trace:
        op = step.operation
        if isinstance(op, DropType) and step.accepted:
            dropped_at[op.name] = step.index
        elif isinstance(op, AddType) and op.name in dropped_at:
            yield Diagnostic(
                "", Severity.WARNING, "", step=step.index, subject=op.name,
                message=f"type {op.name!r} was dropped at step "
                        f"{dropped_at[op.name]} and is re-created here; "
                        f"its instances are discarded, not migrated",
            )
            dropped_at.pop(op.name)


def _redundancies(lattice: "TypeLattice") -> frozenset[tuple]:
    base, root = lattice.base, lattice.root
    out: set[tuple] = set()
    for t in lattice.types():
        if t != base:
            for s in lattice.pe(t) - lattice.p(t):
                if s != root:
                    out.add(("pe", t, s))
        for p in lattice.ne(t) - lattice.n(t):
            out.add(("ne", t, p.semantics))
    return frozenset(out)


@rule(
    "redundancy-introduced",
    scope="plan",
    severity=Severity.INFO,
    category="redundancy",
    summary="a step turns an essential declaration redundant (dominated "
            "supertype or inherited property)",
    example="add-edge T_c T_a after T_c ⊑ T_b ⊑ T_a",
    fixit="drop the now-dominated declaration, or plan a `normalize`",
)
def _redundancy_introduced(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    # Accepted steps, not derived-changed ones: adding a dominated edge
    # alters Pe while leaving every derived term intact — a no-op by
    # impact, but exactly the redundancy this rule exists to catch.
    before = _redundancies(ctx.trace.initial)
    for step in ctx.trace:
        if not step.accepted:
            continue
        after = _redundancies(step.after)
        for kind, t, what in sorted(
            after - before, key=lambda e: (e[0], e[1], str(e[2]))
        ):
            term = "Pe" if kind == "pe" else "Ne"
            yield Diagnostic(
                "", Severity.INFO, "", step=step.index, subject=t,
                message=f"{step.operation.describe()} makes {what!r} "
                        f"redundant in {term}({t})",
            )
        before = after


@rule(
    "migration-impact",
    scope="plan",
    severity=Severity.INFO,
    category="migration",
    summary="estimated blast radius of a destructive step: how many "
            "types' derived terms change",
    example="drop-type T_person touches every subtype's P and I",
    fixit="",
)
def _migration_impact(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    for step in ctx.trace:
        if not step.accepted or not isinstance(step.operation, _DESTRUCTIVE):
            continue
        affected = step.impact.affected_types
        if not affected:
            continue
        n_iface = len(step.impact.interface_changes)
        yield Diagnostic(
            "", Severity.INFO, "", step=step.index,
            subject=getattr(
                step.operation, "name",
                getattr(step.operation, "subject", ""),
            ),
            message=f"affects {len(affected)} type(s) "
                    f"({n_iface} interface change(s)): "
                    f"{sorted(affected)[:8]}",
        )


@rule(
    "duplicate-step",
    scope="plan",
    severity=Severity.INFO,
    category="hygiene",
    summary="the identical operation appears more than once in the plan",
    example="two identical add-edge T_b T_a steps",
    fixit="delete the repeated step",
)
def _duplicate_steps(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    seen: dict[str, int] = {}
    for step in ctx.trace:
        key = json.dumps(step.operation.to_dict(), sort_keys=True)
        if key in seen:
            yield Diagnostic(
                "", Severity.INFO, "", step=step.index,
                message=f"identical to step {seen[key]} "
                        f"({step.operation.describe()})",
                edits=_delete_if_inert(step),
            )
        else:
            seen[key] = step.index


@rule(
    "no-op-step",
    scope="plan",
    severity=Severity.INFO,
    category="hygiene",
    summary="an accepted step that changes no derived state",
    example="add-edge T_b T_a when T_a is already essential in T_b",
    fixit="delete the step",
)
def _noop_steps(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    for step in ctx.trace:
        if step.accepted and step.impact.is_noop:
            yield Diagnostic(
                "", Severity.INFO, "", step=step.index,
                message=f"{step.operation.describe()} changes nothing in "
                        f"the schema state at this point",
                edits=_delete_if_inert(step),
            )


def _delete_if_inert(step) -> tuple:
    """A DeleteStep edit, but only when removing the step provably cannot
    change the plan's outcome: the step is rejected (never executes) or
    leaves the *designer* state untouched.  An impact-level no-op that
    still edits ``Pe``/``Ne`` (e.g. declaring a dominated supertype) is
    left to a human — that declaration changes how later drops behave.
    """
    inert = (
        not step.accepted
        or step.before.state_fingerprint() == step.after.state_fingerprint()
    )
    return (DeleteStep(step.index),) if inert else ()


# ----------------------------------------------------------------------
# Effect-summary rules (commutativity, undo-safety, interference)
# ----------------------------------------------------------------------


@rule(
    "reorder-hazard",
    scope="plan",
    severity=Severity.WARNING,
    category="hazard",
    summary="adjacent steps with overlapping effects whose swap silently "
            "changes the resulting schema",
    example="add-edge T_c T_a; drop-type T_a — swapped, the edge add is "
            "rejected and T_c silently keeps its old ancestry",
    fixit="make the data dependency explicit (merge the steps or add a "
          "comment), or separate the steps into different plans",
)
def _reorder_hazards(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    steps = ctx.trace.steps
    for a, b in zip(steps, steps[1:]):
        base = a.before
        sa = effect_summary(base, a.operation)
        sb = effect_summary(base, b.operation)
        if not summaries_conflict(sa, sb):
            continue  # certified commuting: swap-safe by the axioms
        # Dual replay of the swapped order from the state before `a`.
        swapped = base.copy()
        ok = {}
        for tag, op in (("b", b.operation), ("a", a.operation)):
            try:
                op.apply(swapped)
                ok[tag] = True
            except SchemaError:
                ok[tag] = False
        if ok["a"] != a.accepted or ok["b"] != b.accepted:
            continue  # the dependency fails loudly when swapped: visible
        if swapped.state_fingerprint() == b.after.state_fingerprint():
            continue  # effects overlap but the orders converge anyway
        yield Diagnostic(
            "", Severity.WARNING, "", step=b.index,
            subject=getattr(
                b.operation, "name", getattr(b.operation, "subject", ""),
            ),
            message=f"swapping with step {a.index} "
                    f"({a.operation.describe()}) is accepted but yields a "
                    f"different schema — the order matters and nothing "
                    f"would fail to say so",
        )


@rule(
    "undo-unsafe-step",
    scope="plan",
    severity=Severity.WARNING,
    category="migration",
    summary="a step whose recorded inverse does not restore the schema "
            "exactly (undo after this step is lossy or rejected)",
    example="DB salary when one type's row carried a renamed display "
            "name — the inverse re-adds the canonical payload",
    fixit="prefer narrower MT-* edits whose inverses are exact, or "
          "checkpoint before this step so recovery replays instead of "
          "inverting",
)
def _undo_unsafe_steps(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    for step in ctx.trace:
        if not step.accepted:
            continue
        before = step.before
        work = before.copy()
        try:
            result = step.operation.apply(work)
        except SchemaError:  # pragma: no cover - accepted implies applies
            continue
        if not result.changed:
            continue  # no-op round-trips trivially
        problem = ""
        try:
            for inv in result.inverse:
                inv.apply(work)
        except SchemaError as exc:
            problem = f"the inverse is rejected ({exc})"
        if not problem and (
            work.state_fingerprint() != before.state_fingerprint()
            or work.derived_fingerprint() != before.derived_fingerprint()
        ):
            problem = "the derived P/PL/N/H/I state is not restored"
        if not problem and _payload_rows(work) != _payload_rows(before):
            problem = (
                "property payloads drift (display name or domain is "
                "replaced by the inverse's canonical copy)"
            )
        if problem:
            yield Diagnostic(
                "", Severity.WARNING, "", step=step.index,
                subject=getattr(
                    step.operation, "name",
                    getattr(step.operation, "subject", ""),
                ),
                message=f"undoing {step.operation.describe()} does not "
                        f"round-trip: {problem}",
            )


def _payload_rows(lattice: "TypeLattice") -> frozenset[tuple]:
    """Designer Ne rows *including* the payload fields that semantics-based
    equality (and hence the fingerprints) cannot see."""
    return frozenset(
        (t, p.semantics, p.name, p.domain)
        for t in lattice.types()
        for p in lattice.ne(t)
    )


@rule(
    "cross-plan-interference",
    scope="plan",
    severity=Severity.WARNING,
    category="concurrency",
    summary="steps of two concurrently submitted plans read/write "
            "overlapping Pe edges, Ne rows, or derived state",
    example="writer A drops T_person while writer B adds a subtype "
            "under it",
    fixit="serialize the plans through one writer, or rebase the later "
          "plan onto the committed schema",
)
def _cross_plan_interference(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    # This rule needs *two* plans, so it cannot fire from a single-plan
    # analyze() pass; registering it here gives it catalogue/SARIF
    # metadata and --select addressing.  Findings are produced by
    # repro.staticcheck.effects.analyze_pair (and the server's admission
    # gate, which calls it).
    return iter(())


def _selfcheck() -> None:
    registered = set(REGISTRY.ids())
    expected = set(SCHEMA_RULE_IDS) | set(PLAN_RULE_IDS)
    missing = expected - registered
    if missing:  # pragma: no cover - import-time invariant
        raise RuntimeError(f"rules not registered: {sorted(missing)}")


_selfcheck()
