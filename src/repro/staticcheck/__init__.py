"""Static analysis of schemas and whole evolution plans (no execution).

The axioms make schema consistency *checkable*; this subsystem makes it
checkable **ahead of time**.  A symbolic evaluator
(:mod:`~repro.staticcheck.symbolic`) abstract-interprets an evolution
plan — a sequence of the paper's operations, loadable from a plan file
or an existing WAL journal (:mod:`~repro.staticcheck.plan`) — against a
copy of the lattice, tracking the derived ``P``/``PL``/``N``/``H``/``I``
state per step.  Diagnostics flow through a pluggable rule registry
(:mod:`~repro.staticcheck.registry`, built-ins in
:mod:`~repro.staticcheck.rules`) and render as human text, JSON, or
SARIF 2.1.0 (:mod:`~repro.staticcheck.emit`) for CI annotation.

The Section 5 Orion-vs-TIGUKAT order-dependence hazard is detected by
replaying a plan's edge drops under both engine policies
(:mod:`~repro.staticcheck.engines`) and diffing the final lattices.

Entry point::

    from repro.staticcheck import analyze, load_plan
    report = analyze(lattice, load_plan("migration.json"))
    for finding in report:
        print(finding)
"""

from .analyzer import AnalysisContext, AnalysisReport, analyze, analyze_schema
from .effects import (
    EffectSummary,
    analyze_pair,
    conflict_witness,
    effect_summary,
    ops_commute,
    plan_summaries,
    summaries_conflict,
)
from .emit import render_json, render_sarif, render_text, sarif_dict
from .engines import OrderHazard, find_order_hazard, mirror_to_orion
from .fixes import (
    DeleteStep,
    FixResult,
    InsertStep,
    MoveStep,
    PlanEdit,
    ReplaceStep,
    apply_baseline,
    apply_edits,
    fix_plan,
    plan_diff,
    write_baseline,
)
from .plan import EvolutionPlan, load_plan, plan_from_journal
from .registry import (
    REGISTRY,
    Diagnostic,
    Rule,
    RuleRegistry,
    Severity,
    rule,
)
from .rules import PLAN_RULE_IDS, SCHEMA_RULE_IDS
from .symbolic import PlanTrace, StepOutcome, symbolic_run

__all__ = [
    "analyze",
    "analyze_schema",
    "AnalysisContext",
    "AnalysisReport",
    "EvolutionPlan",
    "load_plan",
    "plan_from_journal",
    "PlanTrace",
    "StepOutcome",
    "symbolic_run",
    "Diagnostic",
    "Severity",
    "Rule",
    "RuleRegistry",
    "REGISTRY",
    "rule",
    "SCHEMA_RULE_IDS",
    "PLAN_RULE_IDS",
    "OrderHazard",
    "find_order_hazard",
    "mirror_to_orion",
    "render_text",
    "render_json",
    "render_sarif",
    "sarif_dict",
    "EffectSummary",
    "effect_summary",
    "plan_summaries",
    "conflict_witness",
    "summaries_conflict",
    "ops_commute",
    "analyze_pair",
    "PlanEdit",
    "DeleteStep",
    "InsertStep",
    "ReplaceStep",
    "MoveStep",
    "apply_edits",
    "fix_plan",
    "FixResult",
    "plan_diff",
    "write_baseline",
    "apply_baseline",
]
