"""Diagnostic emitters: human text, machine JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
systems and code hosts ingest to annotate findings inline; the emitter
targets the 2.1.0 schema.  Plan-scope findings anchor to the plan file
at the exact source line the offending operation starts on — real
provenance threaded by :func:`~repro.staticcheck.plan.load_plan` for
every on-disk shape, including framed-WAL journals — with ``step + 1``
as the fallback for plans built in memory.  Schema-scope findings anchor
to the schema artifact, with the subject type carried as a SARIF logical
location.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .registry import REGISTRY, RuleRegistry, Severity

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import AnalysisReport

__all__ = ["render_text", "render_json", "render_sarif", "sarif_dict"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/example/repro"


def render_text(report: "AnalysisReport", *, show_fixits: bool = True) -> str:
    """The human-readable listing, one finding per line plus a summary."""
    lines: list[str] = []
    for d in report.diagnostics:
        lines.append(str(d))
        if show_fixits and d.fixit:
            lines.append(f"    fix: {d.fixit}")
    if report.trace is not None:
        lines.append(
            f"plan: {len(report.trace)} step(s), "
            f"{len(report.trace.doomed)} doomed"
        )
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: "AnalysisReport") -> str:
    """A stable machine-readable JSON document."""
    doc = {
        "version": 1,
        "rules_run": list(report.rules_run),
        "findings": [
            {
                "rule": d.rule_id,
                "severity": str(d.severity),
                "category": d.category,
                "subject": d.subject,
                "step": d.step,
                "message": d.message,
                "fixit": d.fixit or None,
                "source": d.source or None,
                "line": d.line,
                "edits": [e.to_dict() for e in d.edits] or None,
            }
            for d in report.diagnostics
        ],
        "summary": {
            "total": len(report.diagnostics),
            "error": report.counts[Severity.ERROR],
            "warning": report.counts[Severity.WARNING],
            "info": report.counts[Severity.INFO],
        },
    }
    if report.trace is not None:
        doc["plan"] = {
            "steps": len(report.trace),
            "doomed": len(report.trace.doomed),
        }
    return json.dumps(doc, indent=2, sort_keys=True)


def sarif_dict(
    report: "AnalysisReport",
    *,
    plan_uri: str = "",
    schema_uri: str = "",
    registry: RuleRegistry | None = None,
) -> dict:
    """The SARIF 2.1.0 log as a plain dictionary."""
    registry = registry if registry is not None else REGISTRY
    from .. import __version__

    rule_ids = list(report.rules_run)
    rules_meta = []
    for rid in rule_ids:
        r = registry.get(rid)
        meta: dict = {
            "id": r.rule_id,
            "shortDescription": {"text": r.summary},
            "defaultConfiguration": {"level": r.severity.sarif_level},
            "properties": {"category": r.category, "scope": r.scope},
        }
        if r.fixit:
            meta["help"] = {"text": f"fix: {r.fixit}"}
        rules_meta.append(meta)
    index_of = {rid: i for i, rid in enumerate(rule_ids)}

    results = []
    for d in report.diagnostics:
        uri = plan_uri if d.step is not None else schema_uri
        if d.step is not None and d.source:
            uri = uri or d.source
        location: dict = {}
        if uri:
            if d.line is not None:
                start_line = d.line
            elif d.step is not None:
                start_line = d.step + 1
            else:
                start_line = 1
            location["physicalLocation"] = {
                "artifactLocation": {"uri": uri},
                "region": {"startLine": start_line},
            }
        if d.subject:
            location["logicalLocations"] = [
                {"name": d.subject, "kind": "type"}
            ]
        result: dict = {
            "ruleId": d.rule_id,
            "level": d.severity.sarif_level,
            "message": {"text": str(d)},
        }
        if d.rule_id in index_of:
            result["ruleIndex"] = index_of[d.rule_id]
        if location:
            result["locations"] = [location]
        if d.fixit:
            result.setdefault("properties", {})["fixit"] = d.fixit
        results.append(result)

    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "version": __version__,
                        "informationUri": _INFO_URI,
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    report: "AnalysisReport",
    *,
    plan_uri: str = "",
    schema_uri: str = "",
    registry: RuleRegistry | None = None,
) -> str:
    """The SARIF 2.1.0 log, serialized."""
    return json.dumps(
        sarif_dict(
            report,
            plan_uri=plan_uri,
            schema_uri=schema_uri,
            registry=registry,
        ),
        indent=2,
        sort_keys=True,
    )
