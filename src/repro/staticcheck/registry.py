"""The pluggable diagnostics registry of the static analyzer.

Every check the analyzer can perform is a :class:`Rule`: an identifier,
a category, a default :class:`Severity`, a scope (``schema`` rules look
at one lattice state; ``plan`` rules look at a symbolic execution
trace), documentation strings used to generate the rule catalogue in
``docs/staticcheck.md``, and a checker callable.  Rules register
themselves into a :class:`RuleRegistry` — the default global one via the
:func:`rule` decorator — and callers narrow the active set with
ruff-style ``select``/``ignore`` lists (exact ids or prefixes, ignore
wins).

The registry is deliberately open: downstream code can register custom
rules at import time and they flow through the same CLI/SARIF pipeline
as the built-ins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .analyzer import AnalysisContext

__all__ = [
    "Severity",
    "Diagnostic",
    "Rule",
    "RuleRegistry",
    "REGISTRY",
    "rule",
]


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so that comparisons read naturally:
    ``Severity.ERROR > Severity.WARNING > Severity.INFO``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity: {name!r}") from None

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` this severity maps to."""
        return {
            Severity.ERROR: "error",
            Severity.WARNING: "warning",
            Severity.INFO: "note",
        }[self]

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule firing at a subject (and optionally a step).

    ``step`` is the 0-based index into the analyzed plan for plan-scope
    findings, or ``None`` for schema-state findings.  ``fixit`` carries
    an optional human-readable suggested remediation; ``edits`` carries
    machine-applicable typed plan edits (see
    :mod:`repro.staticcheck.fixes`) the ``repro lint --fix`` applier can
    execute.  ``source``/``line`` locate the finding in the plan file it
    came from (filled in by the analyzer from plan provenance; ``line``
    is 1-based, ``None`` when the plan has no file location).
    """

    rule_id: str
    severity: Severity
    category: str
    message: str
    subject: str = ""
    step: int | None = None
    fixit: str = ""
    edits: tuple = ()
    source: str = ""
    line: int | None = None

    @property
    def fixable(self) -> bool:
        """Whether ``repro lint --fix`` can mechanically resolve this."""
        return bool(self.edits)

    def as_dict(self) -> dict:
        """The wire shape used in HTTP 409 bodies and CLI JSON output."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "category": self.category,
            "subject": self.subject,
            "step": self.step,
            "message": self.message,
            "fixit": self.fixit or None,
        }

    def __str__(self) -> str:
        where = f" [step {self.step}]" if self.step is not None else ""
        subject = f"{self.subject}: " if self.subject else ""
        return f"{self.severity}: {self.rule_id}: {subject}{self.message}{where}"


#: Checker signature: receives the analysis context, yields diagnostics.
#: A checker may leave ``rule_id``/``category`` empty and ``severity`` at
#: the rule default — the runner fills them in.
Checker = Callable[["AnalysisContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered analyzer rule (see the module docstring)."""

    rule_id: str
    scope: str  # "schema" | "plan"
    severity: Severity
    category: str
    summary: str
    check: Checker
    example: str = ""
    fixit: str = ""

    def __post_init__(self) -> None:
        if self.scope not in ("schema", "plan"):
            raise ValueError(f"unknown rule scope: {self.scope!r}")

    def diagnostic(
        self,
        message: str,
        subject: str = "",
        step: int | None = None,
        severity: Severity | None = None,
        fixit: str | None = None,
        edits: tuple = (),
    ) -> Diagnostic:
        """A diagnostic pre-filled with this rule's id/category/defaults."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            category=self.category,
            message=message,
            subject=subject,
            step=step,
            fixit=self.fixit if fixit is None else fixit,
            edits=tuple(edits),
        )


class RuleRegistry:
    """An ordered collection of rules with ruff-style selection."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: dict[str, Rule] = {}
        for r in rules:
            self.register(r)

    def register(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise ValueError(f"rule already registered: {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def unregister(self, rule_id: str) -> None:
        self._rules.pop(rule_id, None)

    def get(self, rule_id: str) -> Rule:
        rule = self._rules.get(rule_id)
        if rule is None:
            raise KeyError(f"unknown rule: {rule_id!r}")
        return rule

    def ids(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> tuple[Rule, ...]:
        """The active rules under ``select``/``ignore`` narrowing.

        Entries match a rule when equal to its id or a prefix of it
        (``--select redundant`` picks both redundancy rules).  An
        unknown selector that matches nothing raises ``KeyError`` so
        typos fail loudly rather than silently de-selecting.  ``ignore``
        is applied after ``select`` and wins.
        """
        chosen = list(self._rules.values())
        if select is not None:
            wanted = tuple(select)
            for entry in wanted:
                if not any(r.rule_id.startswith(entry) for r in chosen):
                    raise KeyError(f"--select matched no rule: {entry!r}")
            chosen = [
                r for r in chosen
                if any(r.rule_id.startswith(entry) for entry in wanted)
            ]
        if ignore is not None:
            dropped = tuple(ignore)
            chosen = [
                r for r in chosen
                if not any(r.rule_id.startswith(entry) for entry in dropped)
            ]
        return tuple(chosen)


#: The default global registry; built-in rules live in
#: :mod:`repro.staticcheck.rules`.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str,
    *,
    scope: str,
    severity: Severity,
    category: str,
    summary: str,
    example: str = "",
    fixit: str = "",
    registry: RuleRegistry | None = None,
) -> Callable[[Checker], Checker]:
    """Decorator: register ``fn`` as a rule checker in the registry."""

    def deco(fn: Checker) -> Checker:
        (registry if registry is not None else REGISTRY).register(
            Rule(
                rule_id=rule_id,
                scope=scope,
                severity=severity,
                category=category,
                summary=summary,
                check=fn,
                example=example,
                fixit=fixit,
            )
        )
        return fn

    return deco


def normalize_diagnostic(rule: Rule, diag: Diagnostic) -> Diagnostic:
    """Fill in registry-owned fields a checker left blank."""
    updates: dict = {}
    if not diag.rule_id:
        updates["rule_id"] = rule.rule_id
    if not diag.category:
        updates["category"] = rule.category
    if not diag.fixit and rule.fixit:
        updates["fixit"] = rule.fixit
    return replace(diag, **updates) if updates else diag
