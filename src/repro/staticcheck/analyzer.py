"""The analyzer driver: run selected rules over a schema and/or a plan.

:func:`analyze` is the single entry point the CLI, the benchmarks, and
the tests share.  Given a lattice (the current schema) and optionally an
:class:`~repro.staticcheck.plan.EvolutionPlan`, it

1. symbolically executes the plan (:mod:`repro.staticcheck.symbolic`) —
   never mutating the input lattice;
2. runs every selected *plan*-scope rule over the trace;
3. runs every selected *schema*-scope rule over the **final** symbolic
   state (what the schema would look like if the plan ran) — or over the
   lattice itself when there is no plan;
4. returns an :class:`AnalysisReport` the emitters render as text, JSON,
   or SARIF.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING, Iterable

from ..obs.metrics import REGISTRY as _METRICS
from .registry import (
    REGISTRY,
    Diagnostic,
    Rule,
    RuleRegistry,
    Severity,
    normalize_diagnostic,
)
from .symbolic import PlanTrace, symbolic_run

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice
    from .plan import EvolutionPlan

__all__ = ["AnalysisContext", "AnalysisReport", "analyze", "analyze_schema"]

logger = logging.getLogger(__name__)

_ANALYZE_RUNS = _METRICS.counter(
    "repro_staticcheck_runs_total", "Static-analyzer invocations"
)
_PLANS_SCANNED = _METRICS.counter(
    "repro_staticcheck_plans_total",
    "Evolution plans symbolically dry-run by the analyzer",
)
_RULES_FIRED = _METRICS.counter(
    "repro_staticcheck_rules_fired_total",
    "Diagnostics produced, by rule id",
    ("rule",),
)
_ANALYZE_SECONDS = _METRICS.histogram(
    "repro_staticcheck_seconds", "Wall time of one analyzer run"
)


@dataclass
class AnalysisContext:
    """Everything a rule checker may look at."""

    lattice: "TypeLattice"
    plan: "EvolutionPlan | None" = None
    trace: PlanTrace | None = None

    @property
    def schema(self) -> "TypeLattice":
        """The schema state that schema-scope rules analyze: the final
        symbolic state under the plan, or the lattice itself."""
        return self.trace.final if self.trace is not None else self.lattice


@dataclass
class AnalysisReport:
    """The analyzer's result: ordered diagnostics plus run metadata."""

    diagnostics: tuple[Diagnostic, ...] = ()
    rules_run: tuple[str, ...] = ()
    plan: "EvolutionPlan | None" = None
    trace: PlanTrace | None = None
    counts: dict[Severity, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = {s: 0 for s in Severity}
            for d in self.diagnostics:
                self.counts[d.severity] += 1

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self.diagnostics), default=None)

    def at_least(self, threshold: Severity) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity >= threshold
        )

    def by_rule(self, rule_id: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule_id == rule_id)

    def summary(self) -> str:
        parts = [
            f"{self.counts[s]} {s}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if self.counts[s]
        ]
        detail = f" ({', '.join(parts)})" if parts else ""
        return f"{len(self.diagnostics)} finding(s){detail}"


def _sort_key(d: Diagnostic) -> tuple:
    # Plan findings first, in step order, severe first; then schema-state
    # findings grouped by rule.
    return (
        0 if d.step is not None else 1,
        d.step if d.step is not None else 0,
        -int(d.severity),
        d.rule_id,
        d.subject,
        d.message,
    )


def _run_rules(
    rules: Iterable[Rule], ctx: AnalysisContext
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in rules:
        out.extend(
            normalize_diagnostic(rule, d) for d in rule.check(ctx)
        )
    return out


def _attach_provenance(
    diagnostics: list[Diagnostic], plan: "EvolutionPlan | None"
) -> list[Diagnostic]:
    """Fill ``source``/``line`` on plan-step findings from the plan's
    file provenance (a no-op for plans built in memory)."""
    if plan is None or not plan.source:
        return diagnostics
    out: list[Diagnostic] = []
    for d in diagnostics:
        if d.source or d.step is None:
            out.append(d)
            continue
        out.append(
            replace(d, source=plan.source, line=plan.line_of(d.step))
        )
    return out


def analyze(
    lattice: "TypeLattice",
    plan: "EvolutionPlan | None" = None,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    registry: RuleRegistry | None = None,
) -> AnalysisReport:
    """Run the static analyzer; see the module docstring.

    ``select``/``ignore`` narrow the rule set by id or id prefix
    (ignore wins).  The input ``lattice`` is never mutated.
    """
    registry = registry if registry is not None else REGISTRY
    active = registry.select(select, ignore)
    started = perf_counter()
    trace = symbolic_run(lattice, plan) if plan is not None else None
    ctx = AnalysisContext(lattice=lattice, plan=plan, trace=trace)

    diagnostics = _run_rules(
        (r for r in active if r.scope == "plan" and trace is not None), ctx
    )
    diagnostics += _run_rules(
        (r for r in active if r.scope == "schema"), ctx
    )
    diagnostics = _attach_provenance(diagnostics, plan)
    _ANALYZE_RUNS.inc()
    if plan is not None:
        _PLANS_SCANNED.inc()
    for d in diagnostics:
        _RULES_FIRED.labels(rule=d.rule_id).inc()
    _ANALYZE_SECONDS.observe(perf_counter() - started)
    logger.info(
        "analyzed %s with %d rule(s): %d finding(s)",
        f"plan {plan.name!r}" if plan is not None else "schema",
        len(active), len(diagnostics),
    )
    return AnalysisReport(
        diagnostics=tuple(sorted(diagnostics, key=_sort_key)),
        rules_run=tuple(r.rule_id for r in active),
        plan=plan,
        trace=trace,
    )


def analyze_schema(
    lattice: "TypeLattice",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[Diagnostic, ...]:
    """Schema-scope rules only — the legacy ``lint_lattice`` surface."""
    schema_ids = tuple(r.rule_id for r in REGISTRY if r.scope == "schema")
    wanted = schema_ids if select is None else tuple(select)
    report = analyze(lattice, select=wanted, ignore=ignore)
    return tuple(d for d in report.diagnostics if d.rule_id in schema_ids)
