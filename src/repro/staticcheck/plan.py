"""Evolution plans: ordered operation sequences to analyze before running.

A plan is just a sequence of the paper's schema operations, serialized
in the same dictionary form the write-ahead journal already uses
(:meth:`repro.core.operations.SchemaOperation.to_dict`).  Three on-disk
shapes are accepted, auto-detected by :func:`load_plan`:

* a JSON object ``{"name": ..., "operations": [op, ...]}``;
* a bare JSON array ``[op, ...]``;
* JSON lines, one operation per line — compatible with a WAL journal
  file, so an existing journal *is* a valid plan (analyze yesterday's
  migration against today's schema).  Checksummed framed WAL lines
  (``#W1 ...``, see :mod:`repro.storage.framing`) and legacy bare-JSONL
  lines both parse, and a torn trailing write (an unterminated final
  line — a live WAL's normal crash residue) is skipped rather than
  rejected.

:func:`plan_from_journal` loads through
:class:`repro.storage.journal.JournalFile` instead, inheriting its
torn-tail tolerance and reading only the operations since the last
checkpoint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.errors import CorruptRecordError, PlanError
from ..core.operations import SchemaOperation, operation_from_dict
from ..storage.framing import frame_payload

__all__ = ["EvolutionPlan", "load_plan", "plan_from_journal"]


class EvolutionPlan:
    """An immutable, ordered sequence of schema operations."""

    def __init__(
        self,
        operations: Iterable[SchemaOperation],
        name: str = "",
        source: str = "",
    ) -> None:
        self.operations: tuple[SchemaOperation, ...] = tuple(operations)
        self.name = name
        self.source = source

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __getitem__(self, index: int) -> SchemaOperation:
        return self.operations[index]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "operations": [op.to_dict() for op in self.operations],
        }

    def to_jsonl(self) -> str:
        """The WAL-compatible one-operation-per-line serialization."""
        return "\n".join(
            json.dumps(op.to_dict(), sort_keys=True) for op in self.operations
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"EvolutionPlan({len(self.operations)} ops{label})"


def _ops_from_dicts(records: Iterable[dict], source: str) -> list[SchemaOperation]:
    ops: list[SchemaOperation] = []
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            raise PlanError(
                f"{source}: operation {i} is not an object: {record!r}"
            )
        try:
            ops.append(operation_from_dict(record))
        except (ValueError, KeyError, TypeError) as exc:
            raise PlanError(f"{source}: bad operation {i}: {exc}") from exc
    return ops


def load_plan(path: str | Path) -> EvolutionPlan:
    """Load a plan file, auto-detecting its shape (see module docstring)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise PlanError(f"cannot read plan {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        return EvolutionPlan((), name=path.stem, source=str(path))

    # A whole-document JSON object or array?
    if stripped.startswith(("{", "[")):
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError:
            doc = None  # fall through to JSONL (objects, one per line)
        if isinstance(doc, dict):
            records = doc.get("operations")
            if not isinstance(records, list):
                raise PlanError(
                    f"{path}: plan object must carry an 'operations' array"
                )
            return EvolutionPlan(
                _ops_from_dicts(records, str(path)),
                name=str(doc.get("name") or path.stem),
                source=str(path),
            )
        if isinstance(doc, list):
            return EvolutionPlan(
                _ops_from_dicts(doc, str(path)),
                name=path.stem,
                source=str(path),
            )

    # JSON lines (the WAL journal format, framed or legacy).
    lines = text.splitlines()
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        torn_candidate = lineno == len(lines) and not text.endswith("\n")
        if line.startswith("#W"):
            try:
                records.append(frame_payload(line))
            except CorruptRecordError as exc:
                if torn_candidate:
                    break  # torn tail of a live WAL: skip, not an error
                raise PlanError(f"{path}:{lineno}: {exc}") from exc
        else:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if torn_candidate:
                    break
                raise PlanError(
                    f"{path}:{lineno}: not JSON: {exc}"
                ) from exc
    return EvolutionPlan(
        _ops_from_dicts(records, str(path)), name=path.stem, source=str(path)
    )


def plan_from_journal(path: str | Path) -> EvolutionPlan:
    """A plan made of a WAL journal's logged operations (post-checkpoint).

    The journal is opened read-only; analyzing it never mutates the WAL.
    """
    from ..storage.journal import JournalFile

    path = Path(path)
    try:
        operations = JournalFile(path).operations()
    except Exception as exc:  # JournalError and I/O problems alike
        raise PlanError(f"cannot load journal {path}: {exc}") from exc
    return EvolutionPlan(operations, name=path.stem, source=str(path))
