"""Evolution plans: ordered operation sequences to analyze before running.

A plan is just a sequence of the paper's schema operations, serialized
in the same dictionary form the write-ahead journal already uses
(:meth:`repro.core.operations.SchemaOperation.to_dict`).  Three on-disk
shapes are accepted, auto-detected by :func:`load_plan`:

* a JSON object ``{"name": ..., "operations": [op, ...]}``;
* a bare JSON array ``[op, ...]``;
* JSON lines, one operation per line — compatible with a WAL journal
  file, so an existing journal *is* a valid plan (analyze yesterday's
  migration against today's schema).  Checksummed framed WAL lines
  (``#W1 ...``, see :mod:`repro.storage.framing`) and legacy bare-JSONL
  lines both parse, and a torn trailing write (an unterminated final
  line — a live WAL's normal crash residue) is skipped rather than
  rejected.

:func:`plan_from_journal` loads through
:class:`repro.storage.journal.JournalFile` instead, inheriting its
torn-tail tolerance and reading only the operations since the last
checkpoint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.errors import CorruptRecordError, PlanError, PlanFormatError
from ..core.operations import SchemaOperation, operation_from_dict
from ..storage.framing import frame_payload

__all__ = ["EvolutionPlan", "load_plan", "plan_from_journal"]


class EvolutionPlan:
    """An immutable, ordered sequence of schema operations.

    ``lines`` is optional file provenance: the 1-based line number each
    operation starts on in ``source`` (parallel to ``operations``), so
    diagnostics and SARIF results can point at the exact offending step.
    ``fmt`` remembers the on-disk shape (``"object"``, ``"array"`` or
    ``"jsonl"``) so the ``--fix`` applier can rewrite the file in kind.
    """

    def __init__(
        self,
        operations: Iterable[SchemaOperation],
        name: str = "",
        source: str = "",
        lines: Iterable[int] | None = None,
        fmt: str = "",
    ) -> None:
        self.operations: tuple[SchemaOperation, ...] = tuple(operations)
        self.name = name
        self.source = source
        self.lines: tuple[int, ...] | None = (
            tuple(lines) if lines is not None else None
        )
        if self.lines is not None and len(self.lines) != len(self.operations):
            self.lines = None  # misaligned provenance is worse than none
        self.fmt = fmt

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __getitem__(self, index: int) -> SchemaOperation:
        return self.operations[index]

    def line_of(self, index: int) -> int | None:
        """The 1-based source line of step ``index``, if known."""
        if self.lines is None or not 0 <= index < len(self.lines):
            return None
        return self.lines[index]

    def with_operations(
        self, operations: Iterable[SchemaOperation]
    ) -> "EvolutionPlan":
        """A copy with a different operation sequence (line provenance is
        dropped — it no longer describes the new sequence)."""
        return EvolutionPlan(
            operations, name=self.name, source=self.source, fmt=self.fmt
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "operations": [op.to_dict() for op in self.operations],
        }

    def to_jsonl(self) -> str:
        """The WAL-compatible one-operation-per-line serialization."""
        return "\n".join(
            json.dumps(op.to_dict(), sort_keys=True) for op in self.operations
        )

    def dumps(self, fmt: str | None = None) -> str:
        """Serialize in ``fmt`` (defaults to the shape it was loaded in)."""
        fmt = fmt or self.fmt or "object"
        if fmt == "jsonl":
            text = self.to_jsonl()
            return text + "\n" if text else ""
        if fmt == "array":
            body = json.dumps(
                [op.to_dict() for op in self.operations], indent=2
            )
        else:
            body = json.dumps(self.to_dict(), indent=2)
        return body + "\n"

    def save(self, path: str | Path | None = None) -> Path:
        """Write the plan back to ``path`` (default: where it came from)."""
        target = Path(path) if path is not None else Path(self.source)
        if not str(target):
            raise PlanError("plan has no source path to save to")
        target.write_text(self.dumps())
        return target

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"EvolutionPlan({len(self.operations)} ops{label})"


def _format_hint(text: str) -> str:
    """A remediation hint when a non-plan text file was handed to the
    plan loader — most commonly a schema DDL file."""
    head = text.lstrip()
    if head.startswith(("schema", "type")):
        return (
            " (this looks like schema DDL, not an evolution plan; plans "
            "are JSON — produce one with 'repro schema diff FILE "
            "--plan-out plan.json')"
        )
    return ""


def _op_start_lines(text: str) -> list[int] | None:
    """1-based start lines of each element of the operations array in a
    whole-document JSON plan, found by a small syntax walk.  ``None``
    when the document doesn't contain a recognizable operations array.
    Only called on text :func:`json.loads` already accepted, so the walk
    can trust JSON syntax.
    """
    stripped = text.lstrip()
    if not stripped.startswith(("{", "[")):
        return None
    doc_is_array = stripped.startswith("[")
    line = 1
    in_string = escape = False
    depth = 0
    chunk: list[str] = []
    last_string = ""  # the most recently completed string literal
    in_ops = False
    ops_depth = -1
    expecting = False  # the next value starts an array element
    out: list[int] = []

    def element_starts() -> bool:
        return in_ops and depth == ops_depth and expecting

    for ch in text:
        if ch == "\n":
            line += 1
            continue
        if in_string:
            if escape:
                escape = False
            elif ch == "\\":
                escape = True
            elif ch == '"':
                in_string = False
                last_string = "".join(chunk)
            else:
                chunk.append(ch)
        elif ch == '"':
            if element_starts():
                out.append(line)
                expecting = False
            in_string = True
            chunk = []
        elif ch in "[{":
            if element_starts():
                out.append(line)
                expecting = False
            depth += 1
            if ch == "[" and not in_ops and (
                (doc_is_array and depth == 1)
                or (not doc_is_array and depth == 2
                    and last_string == "operations")
            ):
                in_ops = True
                ops_depth = depth
                expecting = True
        elif ch in "]}":
            if in_ops and depth == ops_depth and ch == "]":
                return out
            depth -= 1
        elif ch == ",":
            if in_ops and depth == ops_depth:
                expecting = True
        elif element_starts() and not ch.isspace():
            out.append(line)  # a bare literal element (number/bool/null)
            expecting = False
    return out if in_ops or doc_is_array else None


def _ops_from_dicts(records: Iterable[dict], source: str) -> list[SchemaOperation]:
    ops: list[SchemaOperation] = []
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            raise PlanFormatError(
                f"{source}: operation {i} is not an object: {record!r}"
            )
        try:
            ops.append(operation_from_dict(record))
        except (ValueError, KeyError, TypeError) as exc:
            raise PlanError(f"{source}: bad operation {i}: {exc}") from exc
    return ops


def load_plan(path: str | Path) -> EvolutionPlan:
    """Load a plan file, auto-detecting its shape (see module docstring)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise PlanError(f"cannot read plan {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise PlanFormatError(
            f"{path} is not a text plan file: {exc}"
        ) from exc
    stripped = text.strip()
    if not stripped:
        return EvolutionPlan((), name=path.stem, source=str(path))

    # A whole-document JSON object or array?
    if stripped.startswith(("{", "[")):
        try:
            doc = json.loads(stripped)
        except json.JSONDecodeError:
            doc = None  # fall through to JSONL (objects, one per line)
        if isinstance(doc, dict):
            records = doc.get("operations")
            if not isinstance(records, list):
                raise PlanFormatError(
                    f"{path}: plan object must carry an 'operations' array"
                )
            return EvolutionPlan(
                _ops_from_dicts(records, str(path)),
                name=str(doc.get("name") or path.stem),
                source=str(path),
                lines=_op_start_lines(text),
                fmt="object",
            )
        if isinstance(doc, list):
            return EvolutionPlan(
                _ops_from_dicts(doc, str(path)),
                name=path.stem,
                source=str(path),
                lines=_op_start_lines(text),
                fmt="array",
            )

    # JSON lines (the WAL journal format, framed or legacy).
    lines = text.splitlines()
    records = []
    line_numbers: list[int] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        torn_candidate = lineno == len(lines) and not text.endswith("\n")
        if line.startswith("#W"):
            try:
                records.append(frame_payload(line))
            except CorruptRecordError as exc:
                if torn_candidate:
                    break  # torn tail of a live WAL: skip, not an error
                raise PlanError(f"{path}:{lineno}: {exc}") from exc
        else:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if torn_candidate:
                    break
                raise PlanFormatError(
                    f"{path}:{lineno}: not JSON: {exc}{_format_hint(text)}"
                ) from exc
        line_numbers.append(lineno)
    return EvolutionPlan(
        _ops_from_dicts(records, str(path)),
        name=path.stem,
        source=str(path),
        lines=line_numbers,
        fmt="jsonl",
    )


def plan_from_journal(path: str | Path) -> EvolutionPlan:
    """A plan made of a WAL journal's logged operations (post-checkpoint).

    The journal is opened read-only; analyzing it never mutates the WAL.
    """
    from ..storage.journal import JournalFile

    path = Path(path)
    try:
        operations = JournalFile(path).operations()
    except Exception as exc:  # JournalError and I/O problems alike
        raise PlanError(f"cannot load journal {path}: {exc}") from exc
    return EvolutionPlan(
        operations, name=path.stem, source=str(path), fmt="jsonl"
    )
