"""Concurrency layer: lock-free reads, fair single-writer mutation.

The axiomatic engine itself is single-threaded by design — every
mutation funnels through one journal, and the incremental derivation
cache assumes one writer.  This module makes that engine safe to share
across threads (the HTTP service in :mod:`repro.server`, or any embedder
with worker threads) without giving up either property:

* **Reads never lock.**  :class:`ConcurrentObjectbase` publishes an
  immutable :class:`SchemaSnapshot` after every successful mutation;
  readers grab the current snapshot reference (one atomic load) and
  query it freely.  A reader therefore always sees a *consistent*
  schema — the designer terms and the derived terms of one moment —
  never a half-applied batch.
* **Writes serialize through a fair lock.**  :class:`FairLock` is a
  FIFO ticket lock: writers are granted the lock strictly in arrival
  order (no barging, no starvation), and a writer that waits longer
  than its timeout gets a typed
  :class:`~repro.core.errors.LockTimeoutError` — machine-readable
  (``lock-timeout``), mapped to HTTP 503 + ``Retry-After`` by the
  service — with the guarantee that nothing was admitted, so retrying
  is always safe.
* **Snapshots are copy-on-write.**  Publishing after a small mutation
  reuses every untouched entry of the previous snapshot by object
  identity (the incremental derivation engine recreates row objects
  exactly for the types it recomputed), so publish cost is O(cone),
  matching the engine it rides on.

Degraded mode composes: when the storage layer exhausts its retry
budget (:mod:`repro.storage.reliability`) the underlying store latches
read-only and writers see :class:`~repro.core.errors.DegradedModeError`;
reads keep serving the last published snapshot.  :meth:`recover` heals
the WAL (salvage), reopens the backend, and republishes.
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterable, Iterator

from .api import Objectbase, TermCard
from .core.config import LatticePolicy
from .core.derivation import Derivation
from .core.errors import LockTimeoutError, UnknownTypeError
from .core.lattice import TypeLattice
from .core.operations import OperationResult, SchemaOperation
from .core.properties import Property
from .obs.metrics import REGISTRY
from .storage.faults import StorageFS
from .storage.framing import DurabilityPolicy, SalvageReport
from .storage.reliability import RetryPolicy

__all__ = ["FairLock", "SchemaSnapshot", "ConcurrentObjectbase"]

_LOCK_ACQUISITIONS = REGISTRY.counter(
    "repro_lock_acquisitions_total",
    "Successful write-lock acquisitions",
)
_LOCK_TIMEOUTS = REGISTRY.counter(
    "repro_lock_timeouts_total",
    "Write-lock waits abandoned at the timeout",
)
_LOCK_WAIT_SECONDS = REGISTRY.histogram(
    "repro_lock_wait_seconds",
    "Time writers spent waiting for the single-writer lock",
)
_LOCK_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_lock_queue_depth",
    "Writers currently queued behind the single-writer lock",
)
_SNAPSHOT_PUBLISHES = REGISTRY.counter(
    "repro_snapshot_publishes_total",
    "Immutable schema snapshots published after mutations",
)
_SNAPSHOT_UNCHANGED = REGISTRY.counter(
    "repro_snapshot_unchanged_total",
    "Publish attempts that reused the previous snapshot unchanged",
)


class FairLock:
    """A FIFO (ticket) mutex with timeout.

    Unlike :class:`threading.Lock`, waiters are granted the lock in
    strict arrival order: release *hands the lock off* to the oldest
    waiter rather than unlocking and letting the scheduler race.  A
    timed-out waiter raises :class:`LockTimeoutError` after removing
    itself from the queue, so an abandoned wait can never absorb a
    hand-off (the hand-off/timeout race is resolved under the internal
    mutex: a waiter signalled *between* its timeout and its cleanup
    takes the lock after all).
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._locked = False
        self._waiters: deque[threading.Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiters(self) -> int:
        """Writers currently queued (approximate outside the lock)."""
        return len(self._waiters)

    def acquire(self, timeout: float | None = None) -> None:
        """Take the lock, waiting at most ``timeout`` seconds.

        Raises :class:`LockTimeoutError` when the wait expires; the
        caller was never granted the lock, so no cleanup is needed.
        """
        with self._mutex:
            if not self._locked and not self._waiters:
                self._locked = True
                _LOCK_ACQUISITIONS.inc()
                return
            ticket = threading.Event()
            self._waiters.append(ticket)
            _LOCK_QUEUE_DEPTH.set(len(self._waiters))
        started = perf_counter()
        granted = ticket.wait(timeout)
        waited = perf_counter() - started
        if not granted:
            with self._mutex:
                # Re-check under the mutex: release() may have handed us
                # the lock after wait() gave up but before we got here.
                if not ticket.is_set():
                    self._waiters.remove(ticket)
                    _LOCK_QUEUE_DEPTH.set(len(self._waiters))
                    _LOCK_TIMEOUTS.inc()
                    raise LockTimeoutError(
                        timeout if timeout is not None else 0.0,
                        waiters=len(self._waiters),
                    )
        _LOCK_WAIT_SECONDS.observe(waited)
        _LOCK_ACQUISITIONS.inc()

    def release(self) -> None:
        """Release, handing the lock to the oldest waiter if any."""
        with self._mutex:
            if not self._locked:
                raise RuntimeError("release of an unheld FairLock")
            if self._waiters:
                # Hand-off: the lock stays held, ownership transfers.
                ticket = self._waiters.popleft()
                _LOCK_QUEUE_DEPTH.set(len(self._waiters))
                ticket.set()
            else:
                self._locked = False

    def __enter__(self) -> "FairLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SchemaSnapshot:
    """An immutable, consistent view of one schema moment.

    Carries the designer terms (``Pe``/``Ne``) *and* the derived
    :class:`Derivation` captured together under the write lock, so any
    combination of queries against one snapshot is mutually consistent.
    Construct through :meth:`capture`.
    """

    __slots__ = (
        "_pe", "_ne", "derivation", "generation", "root", "base", "frozen",
    )

    def __init__(
        self,
        pe: dict[str, frozenset[str]],
        ne: dict[str, "frozenset[Property]"],
        derivation: Derivation,
        generation: int,
        root: str | None = None,
        base: str | None = None,
        frozen: frozenset[str] = frozenset(),
    ) -> None:
        self._pe = pe
        self._ne = ne
        self.derivation = derivation
        self.generation = generation
        #: Policy facts frozen into the snapshot so the DDL differ can
        #: diff against it without touching the live lattice.
        self.root = root
        self.base = base
        self.frozen = frozen

    @classmethod
    def capture(
        cls, lattice: TypeLattice, previous: "SchemaSnapshot | None" = None
    ) -> "SchemaSnapshot":
        """Snapshot ``lattice`` now, reusing ``previous`` where possible.

        Must run while no concurrent mutation is possible (the caller
        holds the write lock).  Forces any pending incremental
        propagation, then copies only the entries whose derived rows
        were recomputed — the engine builds fresh row objects exactly
        for the cone it touched, so identity comparison against
        ``previous`` finds the delta without comparing values.
        """
        deriv = lattice.derivation
        if previous is not None and deriv is previous.derivation:
            _SNAPSHOT_UNCHANGED.inc()
            return previous
        if previous is None:
            pe = {t: lattice.pe(t) for t in deriv.pl}
            ne = {t: lattice.ne(t) for t in deriv.pl}
        else:
            old = previous.derivation
            pe = dict(previous._pe)
            ne = dict(previous._ne)
            for t in list(pe):
                if t not in deriv.pl:
                    del pe[t]
                    del ne[t]
            for t in deriv.pl:
                if (
                    t not in pe
                    or deriv.pl[t] is not old.pl.get(t)
                    or deriv.i[t] is not old.i.get(t)
                ):
                    pe[t] = lattice.pe(t)
                    ne[t] = lattice.ne(t)
        _SNAPSHOT_PUBLISHES.inc()
        return cls(
            pe, ne, deriv, lattice.generation,
            root=lattice.root,
            base=lattice.base,
            frozen=frozenset(
                t for t in lattice.types() if lattice.is_frozen(t)
            ),
        )

    # -- queries (all lock-free, all mutually consistent) ---------------

    def types(self) -> frozenset[str]:
        return frozenset(self._pe)

    def __contains__(self, name: str) -> bool:
        return name in self._pe

    def __len__(self) -> int:
        return len(self._pe)

    def pe(self, name: str) -> frozenset[str]:
        self._require(name)
        return self._pe[name]

    def ne(self, name: str) -> "frozenset[Property]":
        self._require(name)
        return self._ne[name]

    def card(self, name: str) -> TermCard:
        """All Table-1 terms of ``name``, from this one moment."""
        self._require(name)
        d = self.derivation
        return TermCard(
            name=name,
            pe=self._pe[name],
            ne=self._ne[name],
            p=d.p[name],
            pl=d.pl[name],
            n=d.n[name],
            h=d.h[name],
            i=d.i[name],
        )

    def cards(self) -> Iterator[TermCard]:
        for t in sorted(self._pe):
            yield self.card(t)

    def _require(self, name: str) -> None:
        if name not in self._pe:
            raise UnknownTypeError(name)

    def __repr__(self) -> str:
        return (
            f"SchemaSnapshot(|T|={len(self._pe)}, "
            f"generation={self.generation})"
        )


class ConcurrentObjectbase:
    """A thread-safe shell around :class:`~repro.api.Objectbase`.

    Reads (:meth:`snapshot`, :meth:`card`, :meth:`types`, ...) never
    block: they serve from the last published :class:`SchemaSnapshot`.
    Mutations (:meth:`apply`, :meth:`apply_batch`, :meth:`undo`,
    :meth:`normalize`, :meth:`checkpoint`) serialize through a
    :class:`FairLock` with a configurable ``lock_timeout`` and publish a
    fresh snapshot before releasing it.

    The wrapped facade must not be mutated directly once wrapped —
    every write must go through this object, or readers may observe a
    stale snapshot indefinitely.
    """

    def __init__(
        self,
        objectbase: Objectbase,
        *,
        lock_timeout: float = 5.0,
        _reopen: Callable[[], Objectbase] | None = None,
    ) -> None:
        self._ob = objectbase
        self._lock = FairLock()
        self.lock_timeout = lock_timeout
        self._reopen = _reopen
        self._fence: Callable[[], None] | None = None
        self._snapshot = SchemaSnapshot.capture(objectbase.lattice)

    # -- constructors ---------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        policy: LatticePolicy | None = None,
        *,
        durability: DurabilityPolicy | None = None,
        recovery: str = "strict",
        retry: RetryPolicy | None = None,
        fs: StorageFS | None = None,
        lock_timeout: float = 5.0,
    ) -> "ConcurrentObjectbase":
        """Open a durable objectbase and wrap it for concurrent use.

        Remembers the open parameters so :meth:`recover` can heal and
        reopen the same store in place (salvage mode).
        """

        def reopen() -> Objectbase:
            return Objectbase.open(
                path, policy, durability=durability, recovery="salvage",
                retry=retry, fs=fs,
            )

        return cls(
            Objectbase.open(
                path, policy, durability=durability, recovery=recovery,
                retry=retry, fs=fs,
            ),
            lock_timeout=lock_timeout,
            _reopen=reopen,
        )

    @classmethod
    def in_memory(
        cls,
        policy: LatticePolicy | None = None,
        *,
        lock_timeout: float = 5.0,
    ) -> "ConcurrentObjectbase":
        return cls(Objectbase.in_memory(policy), lock_timeout=lock_timeout)

    # -- lock-free reads ------------------------------------------------

    @property
    def snapshot(self) -> SchemaSnapshot:
        """The current published snapshot (one atomic reference load)."""
        return self._snapshot

    def types(self) -> frozenset[str]:
        return self._snapshot.types()

    def __contains__(self, name: str) -> bool:
        return name in self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot)

    def card(self, name: str) -> TermCard:
        return self._snapshot.card(name)

    @property
    def durable(self) -> bool:
        return self._ob.durable

    @property
    def degraded(self) -> bool:
        """Whether the store is latched read-only (reads still served)."""
        return self._ob.degraded

    @property
    def recovery_report(self) -> SalvageReport | None:
        return self._ob.recovery_report

    # -- serialized writes ----------------------------------------------

    def _write(self, fn: Callable[[], object], timeout: float | None = None):
        self._lock.acquire(
            timeout if timeout is not None else self.lock_timeout
        )
        try:
            return fn()
        finally:
            # Publish even after a rejected mutation: a failed batch has
            # rolled back through inverses and the lattice may carry a
            # fresh derivation; capture() reuses the old snapshot when
            # nothing actually changed.
            self._snapshot = SchemaSnapshot.capture(
                self._ob.lattice, self._snapshot
            )
            self._lock.release()

    def apply(
        self,
        operation: SchemaOperation,
        *,
        timeout: float | None = None,
        gate: Callable[[TypeLattice], None] | None = None,
    ) -> OperationResult:
        """Apply one operation under the write lock; publish on success.

        ``gate``, if given, runs *under the lock* against the live
        lattice before anything is mutated; raising from it aborts the
        write atomically (the service's admission-time lint gate rides
        on this — the schema it analyzes is exactly the schema the
        operation would execute against).
        """

        def run() -> OperationResult:
            if gate is not None:
                gate(self._ob.lattice)
            return self._ob.apply(operation)

        return self._write(run, timeout)

    def apply_batch(
        self,
        operations: Iterable[SchemaOperation],
        *,
        verify_on_commit: bool = True,
        timeout: float | None = None,
        gate: Callable[[TypeLattice], None] | None = None,
    ) -> list[OperationResult]:
        """Apply a whole batch atomically (one lock hold, one publish).

        Readers never observe an intermediate state: the snapshot is
        republished only after the transaction commits (or rolls back).
        ``gate`` behaves as in :meth:`apply`: pre-mutation veto under
        the lock.
        """

        def run() -> list[OperationResult]:
            if gate is not None:
                gate(self._ob.lattice)
            with self._ob.batch(verify_on_commit=verify_on_commit) as txn:
                return [txn.apply(op) for op in operations]

        return self._write(run, timeout)

    # -- declarative schema (DDL) ---------------------------------------

    def schema_ddl(self, name: str = "") -> str:
        """The published schema as canonical DDL text (lock-free)."""
        from .ddl.differ import schema_from
        from .ddl.printer import print_schema

        return print_schema(schema_from(self._snapshot, name=name))

    def diff_to(self, target, *, name: str = ""):
        """Diff the *published* snapshot against ``target`` (lock-free).

        Advisory by nature: a writer may commit between this diff and a
        later :meth:`migrate_to` (which re-diffs under the lock against
        the live lattice).  Pair with ``snapshot.generation`` and the
        service's ``expect_generation`` check to detect that race.
        """
        from .ddl.differ import diff_schemas

        return diff_schemas(self._snapshot, target, name=name)

    def migrate_to(
        self,
        target,
        *,
        dry_run: bool = False,
        verify_on_commit: bool = True,
        lint: str = "error",
        gate=None,
        timeout: float | None = None,
    ):
        """Declarative migration under the write lock (one publish).

        Diff, lint gate, and apply all run while the lock is held, so
        the delta is computed against exactly the schema it executes on
        and readers only ever observe the before or after state.  See
        :meth:`Objectbase.migrate_to` for the parameters.
        """

        def run():
            return self._ob.migrate_to(
                target,
                dry_run=dry_run,
                verify_on_commit=verify_on_commit,
                lint=lint,
                gate=gate,
            )

        return self._write(run, timeout)

    def undo(self, *, timeout: float | None = None):
        return self._write(self._ob.undo, timeout)

    def normalize(self, *, timeout: float | None = None):
        return self._write(self._ob.normalize, timeout)

    def checkpoint(self, *, timeout: float | None = None) -> None:
        return self._write(self._ob.checkpoint, timeout)

    def sync(self) -> None:
        self._ob.sync()

    def storage_gc(self, *, timeout: float | None = None) -> int:
        """Sweep storage-backend garbage, serialized with writers.

        Exclusive-writer-only (see :meth:`Objectbase.storage_gc`): the
        primary calls this once its lease is acquired and fenced, never
        before.
        """
        return self._write(self._ob.storage_gc, timeout)

    def set_write_fence(self, fence: Callable[[], None] | None) -> None:
        """Install (or clear, with ``None``) a write fence on the WAL.

        The fence runs before every append and checkpoint; raising from
        it aborts the write.  Replication installs the primary lease's
        ``check`` here so an ex-primary that lost its lease is stopped
        at the append boundary.  Survives :meth:`recover` (the fence is
        reattached to the reopened backend).
        """
        jf = getattr(getattr(self._ob, "_journal", None), "file", None)
        if jf is None:
            raise ValueError("write fences require a durable store")
        self._fence = fence
        jf.fence = fence

    def recover(self, *, timeout: float | None = None) -> SalvageReport | None:
        """Heal the store and leave degraded mode (if it was entered).

        Durable stores are reopened from disk in salvage mode: the WAL
        is repaired (torn tails truncated, corruption quarantined), the
        lattice rebuilt from exactly the acknowledged records, and a
        fresh snapshot published.  Rebuilding from disk — rather than
        merely clearing the latch — guarantees the in-memory state and
        the log agree again even if a partial append could not be rolled
        back.  In-memory stores have nothing to heal; the call is a
        no-op that returns ``None``.
        """

        def run() -> SalvageReport | None:
            if self._reopen is not None:
                previous = self._ob
                self._ob = self._reopen()
                # The reopened backend has a fresh (clear) latch; end the
                # old store's degraded episode so the gauge drops too.
                old_latch = getattr(
                    getattr(previous._journal, "file", None), "latch", None
                )
                if old_latch is not None:
                    old_latch.clear()
                if self._fence is not None:
                    new_file = getattr(
                        getattr(self._ob, "_journal", None), "file", None
                    )
                    if new_file is not None:
                        new_file.fence = self._fence
            return self._ob.recovery_report

        return self._write(run, timeout)

    def __repr__(self) -> str:
        kind = "durable" if self.durable else "in-memory"
        state = "degraded" if self.degraded else "ok"
        return (
            f"ConcurrentObjectbase({kind}, {state}, "
            f"|T|={len(self._snapshot)})"
        )
