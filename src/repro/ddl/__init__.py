"""Declarative schema DDL: schema-as-code compiled to evolution plans.

The paper axiomatizes evolution as sequences of primitive operations
over ``Pe``/``Ne``; production schema changes are *declared*.  This
subpackage closes that gap:

* a tiny text DDL (:mod:`~repro.ddl.parser`, grammar in its docstring)
  declaring types with supertype (``Pe``) and native-property (``Ne``)
  blocks;
* a canonical pretty-printer (:mod:`~repro.ddl.printer`) — parse→print
  is a fixpoint, so declared schemas diff cleanly in code review;
* a **differ** (:mod:`~repro.ddl.differ`) that compares a declared
  target against a live objectbase and emits the minimal, safely
  ordered :class:`~repro.staticcheck.plan.EvolutionPlan` realizing it.

The op-by-op API is thereby a compilation target: declare the schema
you want, let the differ derive the delta, and run it through the
staticcheck lint gate before applying —
:meth:`repro.api.Objectbase.migrate_to`, ``repro schema
show|diff|migrate``, and ``POST /v1/migrate`` all ride this module.

Entry points::

    from repro import parse_schema, diff_schemas

    target = parse_schema('''
        type T_person {
            ne person.name as name;
        }
        type T_student : T_person;
    ''')
    plan = diff_schemas(objectbase, target)   # minimal EvolutionPlan
"""

from .ast import PropertyDecl, SchemaDecl, TypeDecl
from .differ import diff_schemas, schema_from
from .lexer import Token, tokenize
from .parser import parse_schema
from .printer import print_schema

__all__ = [
    "PropertyDecl",
    "TypeDecl",
    "SchemaDecl",
    "Token",
    "tokenize",
    "parse_schema",
    "print_schema",
    "schema_from",
    "diff_schemas",
]
