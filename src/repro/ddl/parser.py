"""Recursive-descent parser for the schema DDL.

Grammar (``#`` starts a line comment; names may be quoted strings)::

    schema      := [ "schema" name ";" ] { typedecl }
    typedecl    := "type" name [ ":" name { "," name } ] ( body | ";" )
    body        := "{" { stmt } "}"
    stmt        := "pe" name ";"
                 | "ne" name [ "as" name ] [ "domain" name ] ";"

``type T_x : T_a, T_b`` and ``pe`` lines are equivalent ways to declare
essential supertypes (``Pe``); ``ne`` lines declare native essential
properties (``Ne``).  Keywords are contextual — a type literally named
``type`` needs quotes.  Parsing normalizes everything through the AST
(:mod:`repro.ddl.ast`): order and duplication never survive.
"""

from __future__ import annotations

from ..core.errors import DDLError
from ..obs.metrics import REGISTRY
from .ast import PropertyDecl, SchemaDecl, TypeDecl
from .lexer import Token, tokenize

__all__ = ["parse_schema"]

#: Contextual keywords: usable as names only when quoted.  Rejecting the
#: bare spellings keeps ``ne k as domain;`` unambiguous.
_KEYWORDS = frozenset({"schema", "type", "pe", "ne", "as", "domain"})

_PARSES = REGISTRY.counter(
    "repro_ddl_parses_total",
    "Schema DDL parse attempts, by outcome",
    labelnames=("outcome",),
)


def parse_schema(text: str) -> SchemaDecl:
    """Parse DDL source into a canonical :class:`SchemaDecl`.

    Raises :class:`~repro.core.errors.DDLError` (code ``ddl-syntax``)
    with line/column provenance on malformed input, and its subclass
    :class:`~repro.core.errors.DDLValidationError` (``ddl-invalid``)
    when the text parses but declares an unusable schema (duplicate
    types, self-supertypes, conflicting property payloads).
    """
    try:
        schema = _Parser(tokenize(text)).schema()
    except DDLError:
        _PARSES.labels(outcome="error").inc()
        raise
    _PARSES.labels(outcome="ok").inc()
    return schema


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _fail(self, expected: str) -> "DDLError":
        tok = self._cur
        return DDLError(
            f"expected {expected}, found {tok.spell()}",
            line=tok.line,
            column=tok.column,
        )

    def _at_keyword(self, word: str) -> bool:
        return self._cur.kind == "name" and self._cur.value == word

    def _expect_keyword(self, word: str) -> None:
        if not self._at_keyword(word):
            raise self._fail(f"{word!r}")
        self._advance()

    def _expect_punct(self, mark: str) -> None:
        if self._cur.kind != "punct" or self._cur.value != mark:
            raise self._fail(f"{mark!r}")
        self._advance()

    def _at_punct(self, mark: str) -> bool:
        return self._cur.kind == "punct" and self._cur.value == mark

    def _name(self, what: str) -> str:
        if self._cur.kind == "string":
            return self._advance().value
        if self._cur.kind == "name" and self._cur.value not in _KEYWORDS:
            return self._advance().value
        raise self._fail(
            f"{what} (quote it if it spells a keyword)"
            if self._cur.kind == "name" else what
        )

    # -- grammar --------------------------------------------------------

    def schema(self) -> SchemaDecl:
        name = ""
        if self._at_keyword("schema"):
            self._advance()
            name = self._name("a schema name")
            self._expect_punct(";")
        types: list[TypeDecl] = []
        while self._cur.kind != "eof":
            types.append(self._typedecl())
        return SchemaDecl(tuple(types), name=name)

    def _typedecl(self) -> TypeDecl:
        self._expect_keyword("type")
        name = self._name("a type name")
        supertypes: list[str] = []
        properties: list[PropertyDecl] = []
        if self._at_punct(":"):
            self._advance()
            supertypes.append(self._name("a supertype name"))
            while self._at_punct(","):
                self._advance()
                supertypes.append(self._name("a supertype name"))
        if self._at_punct(";"):
            self._advance()
        elif self._at_punct("{"):
            self._advance()
            while not self._at_punct("}"):
                self._stmt(supertypes, properties)
            self._advance()
        else:
            raise self._fail("';' or '{'")
        return TypeDecl(name, tuple(supertypes), tuple(properties))

    def _stmt(
        self, supertypes: list[str], properties: list[PropertyDecl]
    ) -> None:
        if self._at_keyword("pe"):
            self._advance()
            supertypes.append(self._name("a supertype name"))
            self._expect_punct(";")
        elif self._at_keyword("ne"):
            self._advance()
            semantics = self._name("a property semantics key")
            display = ""
            domain: str | None = None
            if self._at_keyword("as"):
                self._advance()
                display = self._name("a display name")
            if self._at_keyword("domain"):
                self._advance()
                domain = self._name("a domain name")
            self._expect_punct(";")
            properties.append(PropertyDecl(semantics, display, domain))
        else:
            raise self._fail("'pe', 'ne', or '}'")
