"""The migration differ: declared target schema − live schema = plan.

:func:`diff_schemas` compares a :class:`~repro.ddl.ast.SchemaDecl` (or
DDL text) against a live objectbase and emits the **minimal** evolution
plan — only operations whose designer-state delta is non-empty — in an
order that is safe by construction:

1. ``DT`` for types absent from the target (subtypes before their
   dropped supertypes; dropping a type detaches it from every ``Pe``
   that lists it, so no explicit edge drops toward doomed types are
   emitted);
2. ``AT`` for new types, topologically (declared supertypes first), each
   carrying its declared ``Ne`` block;
3. ``MT-DSR`` for stale essential-supertype edges of surviving types;
4. ``MT-ASR`` for new edges — after every drop, so the intermediate edge
   set stays a subset of the (acyclic) target's and no step can trip the
   Axiom of Acyclicity;
5. ``MT-DB`` / ``MT-AB`` for native-property deltas.

The differ speaks the axiomatic model's identity rules: a property *is*
its semantics key (Section 3.1), so payload-only edits (display name,
domain) are treated as annotations, not schema deltas; the policy's
managed cells (the implicit root in every ``Pe``, the base type's
``Pe``, frozen primitive types) are excluded from both sides.  Applying
the emitted plan makes a re-diff against the same target empty — the
idempotent fixpoint the test-suite oracle proves over fuzzed pairs.

``live`` may be a :class:`~repro.api.Objectbase`, a raw
:class:`~repro.core.lattice.TypeLattice`, a
:class:`~repro.concurrent.ConcurrentObjectbase`, or a published
:class:`~repro.concurrent.SchemaSnapshot` (lock-free diffing).
"""

from __future__ import annotations

from time import perf_counter

from ..core.errors import DDLValidationError
from ..core.operations import (
    AddEssentialProperty,
    AddEssentialSupertype,
    AddType,
    DropEssentialProperty,
    DropEssentialSupertype,
    DropType,
    SchemaOperation,
)
from ..core.properties import Property
from ..obs.metrics import REGISTRY
from ..obs.tracing import trace
from ..staticcheck.plan import EvolutionPlan
from .ast import PropertyDecl, SchemaDecl, TypeDecl
from .parser import parse_schema

__all__ = ["diff_schemas", "schema_from"]

_DIFF_RUNS = REGISTRY.counter(
    "repro_ddl_diff_runs_total",
    "Schema differ invocations",
)
_DIFF_OPS = REGISTRY.counter(
    "repro_ddl_diff_operations_total",
    "Operations emitted by the schema differ, by operation code",
    labelnames=("op",),
)
_DIFF_SECONDS = REGISTRY.histogram(
    "repro_ddl_diff_seconds",
    "Schema differ latency (validate + delta + ordering)",
)


class _LiveView:
    """Uniform read access to whichever live-schema shape we were given."""

    def __init__(self, live) -> None:
        snapshot = getattr(live, "snapshot", None)
        if snapshot is not None and not callable(snapshot):
            live = snapshot  # ConcurrentObjectbase -> SchemaSnapshot
        lattice = getattr(live, "lattice", None)
        if lattice is not None:
            live = lattice  # Objectbase / journal -> TypeLattice
        self._live = live
        self.root: str | None = getattr(live, "root", None)
        self.base: str | None = getattr(live, "base", None)
        is_frozen = getattr(live, "is_frozen", None)
        if callable(is_frozen):
            self.frozen = frozenset(
                t for t in live.types() if is_frozen(t)
            )
        else:
            self.frozen = frozenset(getattr(live, "frozen", ()) or ())

    def types(self) -> frozenset[str]:
        return self._live.types()

    def declared_types(self) -> list[str]:
        """Designer-managed types: everything the policy doesn't own."""
        return sorted(self.types() - self.frozen)

    def pe(self, name: str) -> frozenset[str]:
        """The declared supertype set, without the policy-implied root."""
        supers = self._live.pe(name)
        if self.root is not None:
            supers = supers - {self.root}
        return supers

    def ne(self, name: str) -> frozenset[Property]:
        return self._live.ne(name)


def schema_from(live, name: str = "") -> SchemaDecl:
    """Export the live schema as a canonical :class:`SchemaDecl`.

    The inverse direction of the differ: ``diff_schemas(live,
    schema_from(live))`` is always the empty plan.
    """
    view = _LiveView(live)
    return SchemaDecl(
        tuple(
            TypeDecl(
                t,
                tuple(view.pe(t)),
                tuple(
                    PropertyDecl.from_property(p) for p in view.ne(t)
                ),
            )
            for t in view.declared_types()
        ),
        name=name,
    )


def _validate_target(target: SchemaDecl, view: _LiveView) -> None:
    """Reject targets the plan could never realize (typed, up front)."""
    declared = target.type_names()
    managed = set(view.frozen)
    for special in (view.root, view.base):
        if special is not None:
            managed.add(special)
    for t in target:
        if t.name in managed:
            raise DDLValidationError(
                f"type {t.name!r} is managed by the lattice policy and "
                f"cannot be declared"
            )
        for s in t.supertypes:
            if s == view.base:
                raise DDLValidationError(
                    f"type {t.name!r}: the base type {s!r} cannot be a "
                    f"supertype"
                )
            if s == view.root:
                continue  # implicit in every Pe: harmless, normalized out
            if s not in declared and s not in view.frozen:
                raise DDLValidationError(
                    f"type {t.name!r}: unknown supertype {s!r} (declare "
                    f"it, or it must be a policy-managed type)"
                )
    _require_acyclic(target)


def _require_acyclic(target: SchemaDecl) -> None:
    order = _topo_order(
        target.type_names(),
        {t.name: set(t.supertypes) & target.type_names() for t in target},
    )
    if order is None:
        raise DDLValidationError(
            "the declared supertype graph contains a cycle"
        )


def _topo_order(
    names: frozenset[str], supers: dict[str, set[str]]
) -> list[str] | None:
    """Names ordered so every name follows its supertypes; ``None`` on a
    cycle.  Deterministic: ties resolve alphabetically."""
    remaining = {n: set(supers.get(n, ())) & names for n in names}
    out: list[str] = []
    ready = sorted(n for n, deps in remaining.items() if not deps)
    while ready:
        n = ready.pop(0)
        out.append(n)
        del remaining[n]
        newly = [
            m for m, deps in remaining.items()
            if n in deps and not (deps.discard(n) or deps)
        ]
        ready = sorted(set(ready) | set(newly))
    return out if not remaining else None


def _target_pe(decl: TypeDecl, view: _LiveView) -> frozenset[str]:
    return frozenset(s for s in decl.supertypes if s != view.root)


def diff_schemas(
    live,
    target: SchemaDecl | str,
    *,
    name: str = "",
) -> EvolutionPlan:
    """The minimal, safely ordered plan that evolves ``live`` to ``target``.

    ``target`` may be DDL text (parsed here) or an already-parsed
    :class:`SchemaDecl`.  Raises
    :class:`~repro.core.errors.DDLValidationError` when the target is
    unrealizable (see :func:`_validate_target`); the returned plan is
    empty exactly when the schemas already agree.
    """
    if isinstance(target, str):
        target = parse_schema(target)
    started = perf_counter()
    with trace.span("ddl.diff") as span:
        view = _LiveView(live)
        _validate_target(target, view)
        ops = _delta(view, target)
        span.set_attr("operations", len(ops))
    _DIFF_RUNS.inc()
    for op in ops:
        _DIFF_OPS.labels(op=op.code).inc()
    _DIFF_SECONDS.observe(perf_counter() - started)
    plan_name = name or (
        f"migrate-to-{target.name}" if target.name else "migrate"
    )
    return EvolutionPlan(ops, name=plan_name, fmt="object")


def _delta(view: _LiveView, target: SchemaDecl) -> list[SchemaOperation]:
    live_names = frozenset(view.declared_types())
    target_names = target.type_names()
    dropped = live_names - target_names
    added = target_names - live_names
    common = live_names & target_names
    ops: list[SchemaOperation] = []

    # 1. Drop vanished types, subtypes before their dropped supertypes.
    drop_order = _topo_order(
        frozenset(dropped), {t: set(view.pe(t)) for t in dropped}
    )
    assert drop_order is not None  # the live lattice is acyclic
    for t in reversed(drop_order):
        ops.append(DropType(t))

    # 2. Create new types, supertypes first, with their Ne blocks.
    add_order = _topo_order(
        frozenset(added),
        {t.name: set(t.supertypes) for t in target if t.name in added},
    )
    assert add_order is not None  # _validate_target proved acyclicity
    for t in add_order:
        decl = target.get(t)
        ops.append(AddType(
            t,
            tuple(sorted(_target_pe(decl, view))),
            tuple(p.to_property() for p in decl.properties),
        ))

    # 3./4. Essential-supertype edges of surviving types: drops before
    # adds, so intermediate edge sets stay within the acyclic target's.
    edge_adds: list[SchemaOperation] = []
    for t in sorted(common):
        have = view.pe(t)
        want = _target_pe(target.get(t), view)
        for s in sorted(have - want):
            if s in dropped:
                continue  # step 1's DT already detached this edge
            ops.append(DropEssentialSupertype(t, s))
        for s in sorted(want - have):
            edge_adds.append(AddEssentialSupertype(t, s))
    ops += edge_adds

    # 5. Native-property deltas (identity = semantics key).
    prop_adds: list[SchemaOperation] = []
    for t in sorted(common):
        have = {p.semantics: p for p in view.ne(t)}
        want = {p.semantics: p for p in target.get(t).properties}
        for key in sorted(set(have) - set(want)):
            # Drop the *live* property object so the recorded inverse
            # restores the exact payload (undo-safety).
            ops.append(DropEssentialProperty(t, have[key]))
        for key in sorted(set(want) - set(have)):
            prop_adds.append(
                AddEssentialProperty(t, want[key].to_property())
            )
    ops += prop_adds
    return ops
