"""The declarative schema AST: canonical, order-insensitive, hashable.

A declared schema is a set of type declarations; a type declaration is a
set of essential supertypes (the ``Pe`` block) and a set of native
property declarations (the ``Ne`` block).  Declaration order carries no
meaning in the axiomatic model, so the AST normalizes it away at
construction: supertypes and properties are sorted and de-duplicated,
types are sorted by name.  Two texts that declare the same schema
therefore parse to *equal* ASTs, and the pretty-printer
(:mod:`repro.ddl.printer`) is a fixpoint: ``parse(print(ast)) == ast``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.errors import DDLValidationError
from ..core.properties import Property

__all__ = ["PropertyDecl", "TypeDecl", "SchemaDecl"]


@dataclass(frozen=True, order=True)
class PropertyDecl:
    """One ``ne`` line: a property identified by its semantics key.

    ``name`` is the display name (empty means "same as the semantics
    key", matching :class:`~repro.core.properties.Property` defaulting);
    ``domain`` is the opaque value-domain annotation.
    """

    semantics: str
    name: str = ""
    domain: str | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.semantics:
            raise DDLValidationError("a property needs a semantics key")
        if self.name == self.semantics:
            # Normalize: an explicit name equal to the key is the default.
            object.__setattr__(self, "name", "")

    def to_property(self) -> Property:
        return Property(self.semantics, self.name, self.domain)

    @classmethod
    def from_property(cls, p: Property) -> "PropertyDecl":
        name = "" if p.name == p.semantics else p.name
        return cls(p.semantics, name, p.domain)

    def to_dict(self) -> dict:
        return {
            "semantics": self.semantics,
            "name": self.name,
            "domain": self.domain,
        }


@dataclass(frozen=True)
class TypeDecl:
    """One ``type`` declaration: name, ``Pe`` block, ``Ne`` block."""

    name: str
    supertypes: tuple[str, ...] = ()
    properties: tuple[PropertyDecl, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise DDLValidationError("a type needs a name")
        supers = tuple(sorted(set(self.supertypes)))
        if self.name in supers:
            raise DDLValidationError(
                f"type {self.name!r} declares itself as a supertype"
            )
        object.__setattr__(self, "supertypes", supers)
        by_key: dict[str, PropertyDecl] = {}
        for p in self.properties:
            prior = by_key.get(p.semantics)
            if prior is not None and prior != p:
                raise DDLValidationError(
                    f"type {self.name!r} declares property "
                    f"{p.semantics!r} twice with different payloads"
                )
            by_key[p.semantics] = p
        object.__setattr__(
            self, "properties", tuple(sorted(by_key.values()))
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "supertypes": list(self.supertypes),
            "properties": [p.to_dict() for p in self.properties],
        }


@dataclass(frozen=True)
class SchemaDecl:
    """A whole declared schema: the target of a migration."""

    types: tuple[TypeDecl, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for t in self.types:
            if t.name in seen:
                raise DDLValidationError(
                    f"type {t.name!r} is declared more than once"
                )
            seen.add(t.name)
        object.__setattr__(
            self, "types", tuple(sorted(self.types, key=lambda t: t.name))
        )

    def __iter__(self) -> Iterator[TypeDecl]:
        return iter(self.types)

    def __len__(self) -> int:
        return len(self.types)

    def __contains__(self, name: str) -> bool:
        return any(t.name == name for t in self.types)

    def get(self, name: str) -> TypeDecl | None:
        for t in self.types:
            if t.name == name:
                return t
        return None

    def type_names(self) -> frozenset[str]:
        return frozenset(t.name for t in self.types)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "types": [t.to_dict() for t in self.types],
        }

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"SchemaDecl({len(self.types)} types{label})"
