"""Canonical pretty-printer for declared schemas.

The printer emits exactly one text per schema: types sorted by name,
supertypes in the ``:`` header (sorted), one ``ne`` line per property
(sorted by semantics), four-space indentation.  Because the parser
normalizes the same way, printing is round-trip stable —
``parse_schema(print_schema(s)) == s`` for every :class:`SchemaDecl`,
and ``print(parse(print(x))) == print(x)`` for every text ``x``.
"""

from __future__ import annotations

from .ast import PropertyDecl, SchemaDecl, TypeDecl
from .lexer import is_bare_name

__all__ = ["print_schema"]

_KEYWORDS = frozenset({"schema", "type", "pe", "ne", "as", "domain"})


def _quote(name: str) -> str:
    """Spell ``name`` as DDL: bare when possible, quoted otherwise."""
    if is_bare_name(name) and name not in _KEYWORDS:
        return name
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def _property_line(p: PropertyDecl) -> str:
    parts = ["ne", _quote(p.semantics)]
    if p.name:
        parts += ["as", _quote(p.name)]
    if p.domain is not None:
        parts += ["domain", _quote(p.domain)]
    return "    " + " ".join(parts) + ";"


def _type_block(t: TypeDecl) -> str:
    head = f"type {_quote(t.name)}"
    if t.supertypes:
        head += " : " + ", ".join(_quote(s) for s in t.supertypes)
    if not t.properties:
        return head + ";"
    lines = [head + " {"]
    lines += [_property_line(p) for p in t.properties]
    lines.append("}")
    return "\n".join(lines)


def print_schema(schema: SchemaDecl) -> str:
    """The canonical DDL text of ``schema`` (trailing newline included)."""
    blocks: list[str] = []
    if schema.name:
        blocks.append(f"schema {_quote(schema.name)};")
    blocks += [_type_block(t) for t in schema.types]
    if not blocks:
        return ""
    return "\n\n".join(blocks) + "\n"
