"""Tokenizer for the schema DDL (see :mod:`repro.ddl`).

The surface is deliberately tiny: identifiers (which may contain dots,
so property semantics keys like ``person.name`` are bare words), quoted
strings for anything the identifier charset cannot spell, five
punctuation marks, and ``#`` line comments.  Every token carries its
1-based line and column so parse errors point at the offending source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..core.errors import DDLError

__all__ = ["Token", "tokenize", "NAME_RE", "is_bare_name"]

#: What may appear as a bare (unquoted) name: type names (``T_person``)
#: and property semantics keys (``person.name``).
NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")

_PUNCT = "{};:,"

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def is_bare_name(text: str) -> bool:
    """Whether ``text`` can be printed without quotes."""
    return bool(text) and NAME_RE.fullmatch(text) is not None


@dataclass(frozen=True)
class Token:
    """One lexical unit: ``kind`` is ``name``, ``string``, ``punct`` or
    ``eof``; ``value`` is the decoded payload (quotes and escapes already
    resolved for strings)."""

    kind: str
    value: str
    line: int
    column: int

    def spell(self) -> str:
        """How to mention this token in an error message."""
        if self.kind == "eof":
            return "end of input"
        return repr(self.value)


def tokenize(text: str) -> list[Token]:
    """Tokenize DDL source; raises :class:`DDLError` on lexical damage."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in _PUNCT:
            yield Token("punct", ch, line, col)
            i += 1
            col += 1
            continue
        if ch == '"':
            value, consumed = _scan_string(text, i, line, col)
            yield Token("string", value, line, col)
            i += consumed
            col += consumed
            continue
        match = NAME_RE.match(text, i)
        if match is not None:
            yield Token("name", match.group(), line, col)
            col += match.end() - i
            i = match.end()
            continue
        raise DDLError(
            f"unexpected character {ch!r}", line=line, column=col
        )
    yield Token("eof", "", line, col)


def _scan_string(text: str, start: int, line: int, col: int) -> tuple[str, int]:
    """Decode a quoted string starting at ``text[start]`` (a ``"``).

    Returns ``(decoded value, characters consumed)``.  Strings may not
    span lines; ``\\n``, ``\\t``, ``\\"`` and ``\\\\`` escapes decode.
    """
    out: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            return "".join(out), i + 1 - start
        if ch == "\n":
            break
        if ch == "\\":
            if i + 1 >= n or text[i + 1] not in _ESCAPES:
                raise DDLError(
                    "bad string escape", line=line, column=col + i - start
                )
            out.append(_ESCAPES[text[i + 1]])
            i += 2
            continue
        out.append(ch)
        i += 1
    raise DDLError("unterminated string", line=line, column=col)
