"""The Orion system and its reduction to the axiomatic model (Section 4).

* :class:`OrionDatabase` / :class:`OrionOps` — the native model with
  ordered superclasses, name+domain properties, invariants, and OP1-OP8;
* :class:`ReducedOrion` — the same eight operations executed through the
  axiomatic model, per the paper's mapping;
* :func:`check_equivalent` — the machine check of the reduction theorem;
* :func:`reverse_reduction_counterexample` — why the reverse direction
  fails (Orion keeps no minimal supertypes).
"""

from .conflict import (
    find_name_conflicts_full,
    find_name_conflicts_minimal,
    resolve_interface,
    resolve_on_lattice,
    visible_property,
)
from .invariants import (
    ORION_INVARIANTS,
    ORION_RULES,
    OrionViolation,
    check_invariants,
)
from .model import ROOT_CLASS, OrionClass, OrionDatabase, OrionProperty
from .operations import OrionOps
from .reduction import (
    EquivalenceReport,
    ReducedOrion,
    assert_equivalent,
    check_equivalent,
    reverse_reduction_counterexample,
)

__all__ = [
    "ROOT_CLASS",
    "OrionProperty",
    "OrionClass",
    "OrionDatabase",
    "OrionOps",
    "OrionViolation",
    "check_invariants",
    "ORION_INVARIANTS",
    "ORION_RULES",
    "resolve_interface",
    "visible_property",
    "resolve_on_lattice",
    "find_name_conflicts_minimal",
    "find_name_conflicts_full",
    "ReducedOrion",
    "EquivalenceReport",
    "check_equivalent",
    "assert_equivalent",
    "reverse_reduction_counterexample",
]
