"""Orion's eight fundamental schema operations, natively (Section 4).

"Orion defines eight fundamental operations that are declared as being
inclusive of all 'interesting' schema changes."  The docstring of each
method quotes the paper's rendering of the operation; the bodies
implement exactly that semantics over the native
:class:`~repro.orion.model.OrionDatabase`.

The twin of this module is :class:`repro.orion.reduction.ReducedOrion`,
which performs the same eight operations through the axiomatic model;
the differential tests assert they stay equivalent.
"""

from __future__ import annotations

from ..core.errors import OperationRejected, UnknownTypeError
from .model import ROOT_CLASS, OrionDatabase, OrionProperty

__all__ = ["OrionOps"]


class OrionOps:
    """Executor of OP1-OP8 over a native Orion database."""

    def __init__(self, db: OrionDatabase | None = None) -> None:
        self.db = db if db is not None else OrionDatabase()

    # -- properties -------------------------------------------------------

    def op1(self, class_name: str, prop: OrionProperty) -> None:
        """OP1: Add a new property v to a class C.

        "Add v to Ne(C).  Perform Orion conflict resolution as necessary.
        The same operation is performed whether v is an attribute or a
        method."  Rule R5: a redefinition may only specialize the domain.
        """
        from .conflict import visible_property

        cls = self.db.get(class_name)
        inherited = visible_property(self.db, class_name, prop.name)
        if (
            inherited is not None
            and inherited.origin != class_name
            and not prop.is_method
            and not self._domain_specializes(prop.domain, inherited.domain)
        ):
            raise OperationRejected(
                "OP1",
                f"redefinition of {prop.name!r} must specialize domain "
                f"{inherited.domain!r}, got {prop.domain!r}",
            )
        cls.define(prop)

    def op2(self, class_name: str, prop_name: str) -> None:
        """OP2: Drop an existing property v from a class C.

        "Drop v from Ne(C).  Perform conflict resolution as necessary."
        Dropping a name the class does not define locally is rejected
        (inherited properties are dropped at their origin).
        """
        cls = self.db.get(class_name)
        if cls.undefine(prop_name) is None:
            raise OperationRejected(
                "OP2",
                f"class {class_name!r} does not define {prop_name!r} locally",
            )

    # -- edges -------------------------------------------------------------

    def op3(self, class_name: str, superclass: str) -> None:
        """OP3: Add an edge to make class S a superclass of class C.

        "Add S to the end of ordered Pe(C).  Perform conflict resolution
        as necessary.  If the Axiom of Acyclicity is violated, the
        operation is rejected."
        """
        self.db.add_edge(class_name, superclass)

    def op4(self, class_name: str, superclass: str) -> None:
        """OP4: Drop an edge to remove class S as a superclass of class C.

        The paper's algorithm, verbatim::

            if Pe(C) = {S} then            // Last superclass of C?
                if S = OBJECT then REJECT operation
                else Pe(C) = Pe(S)         // Link C to superclasses
            else remove S from Pe(C)
        """
        cls = self.db.get(class_name)
        if superclass not in cls.superclasses:
            raise OperationRejected(
                "OP4",
                f"{superclass!r} is not a superclass of {class_name!r}",
            )
        if cls.superclasses == [superclass]:
            if superclass == ROOT_CLASS:
                raise OperationRejected(
                    "OP4", "cannot drop the last edge to OBJECT"
                )
            # Link C to the superclasses of S *as they are right now* —
            # the source of Orion's drop-order dependence (Section 5).
            cls.superclasses = list(self.db.get(superclass).superclasses)
        else:
            cls.superclasses.remove(superclass)

    def op5(self, class_name: str, new_order: list[str]) -> None:
        """OP5: Change the ordering of superclasses of a class C.

        "Simply change the ordering of classes in Pe(C)."  The new order
        must be a permutation of the current superclass list.
        """
        cls = self.db.get(class_name)
        if sorted(new_order) != sorted(cls.superclasses):
            raise OperationRejected(
                "OP5",
                "new order must be a permutation of the current superclasses",
            )
        cls.superclasses = list(new_order)

    # -- classes -------------------------------------------------------------

    def op6(self, class_name: str, superclass: str | None = None) -> None:
        """OP6: Add a new class C as the subclass of a class S.

        "Create C and add S to Pe(C).  If S is not specified, then
        S = OBJECT by default.  In Orion, additional superclasses can be
        added to C using OP3."
        """
        self.db.add_class(
            class_name, [superclass if superclass else ROOT_CLASS]
        )

    def op7(self, class_name: str) -> None:
        """OP7: Drop an existing class S.

        "For all subclasses C of S, remove S as a superclass of C using
        OP4."  The class is then removed from the lattice.
        """
        if class_name == ROOT_CLASS:
            raise OperationRejected("OP7", "OBJECT cannot be dropped")
        if class_name not in self.db:
            raise UnknownTypeError(class_name)
        for sub in sorted(self.db.subclasses_of(class_name)):
            self.op4(sub, class_name)
        self.db.remove_class(class_name)

    def op8(self, old_name: str, new_name: str) -> None:
        """OP8: Change the name of a class C.

        "Change every occurrence of C in the Pe's of the various classes
        to the new name."
        """
        if old_name == ROOT_CLASS:
            raise OperationRejected("OP8", "OBJECT cannot be renamed")
        self.db.rename_class(old_name, new_name)

    # -- helpers -------------------------------------------------------------

    def _domain_specializes(self, sub_domain: str, super_domain: str) -> bool:
        """Rule R5: the redefined domain must be the same class or one of
        its descendants."""
        if sub_domain == super_domain:
            return True
        if sub_domain not in self.db or super_domain not in self.db:
            # Unmodeled (atomic) domains: accept, as Orion does for
            # user-interpreted domains.
            return True
        return super_domain in self.db.ancestors_of(sub_domain)
