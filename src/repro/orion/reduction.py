"""The reduction of Orion to the axiomatic model (paper Section 4).

"In mapping the Orion class structure to the axiomatic model, Pe
represents the superclasses of an Orion class ... The Pe set can easily
be ordered for [conflict resolution].  ... In mapping properties, Ne
represents the defined or redefined properties of an Orion class."

:class:`ReducedOrion` executes Orion's OP1-OP8 *through* the axiomatic
model: the lattice (with the Orion policy: rooted at OBJECT, pointedness
relaxed) carries ``Pe``/``Ne``, an ordered mirror of ``Pe`` carries the
conflict-resolution order, and every operation follows the paper's
axiomatic rendering verbatim.  :func:`assert_equivalent` is the machine
check of the reduction theorem: after any operation sequence, the native
database and the reduction agree on classes, superclass order, ancestor
sets, and conflict-resolved interfaces.

The paper also notes the reverse direction fails: "The reduction of [the]
axiomatic model to Orion is not possible since, for example, Orion does
not maintain minimal superclasses or native properties of classes."
:func:`reverse_reduction_counterexample` constructs the witness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import LatticePolicy
from ..core.errors import OperationRejected, UnknownTypeError
from ..core.lattice import TypeLattice
from ..core.properties import Property
from .conflict import resolve_interface, resolve_on_lattice
from .model import ROOT_CLASS, OrionDatabase, OrionProperty

__all__ = [
    "ReducedOrion",
    "EquivalenceReport",
    "check_equivalent",
    "assert_equivalent",
    "reverse_reduction_counterexample",
]


class ReducedOrion:
    """Orion's eight operations, executed on the axiomatic model."""

    def __init__(self) -> None:
        self.lattice = TypeLattice(LatticePolicy.orion())
        #: the ordered view of ``Pe`` ("The Pe set can easily be ordered")
        self.ordered_pe: dict[str, list[str]] = {ROOT_CLASS: []}
        #: payload registry: semantics key -> the Orion property object
        self.props: dict[str, OrionProperty] = {}

    # -- helpers -----------------------------------------------------------

    def _require(self, class_name: str) -> None:
        if class_name not in self.lattice:
            raise UnknownTypeError(class_name)

    def _local_props(self, class_name: str) -> dict[str, Property]:
        """Ne(C) indexed by property *name* (each name appears once: a
        class (re)defines a name at most once, as in Orion)."""
        return {p.name: p for p in self.lattice.ne(class_name)}

    def _winner(self, class_name: str, prop_name: str) -> OrionProperty | None:
        semantics = resolve_on_lattice(
            self.lattice, self.ordered_pe, class_name
        ).get(prop_name)
        return self.props.get(semantics) if semantics else None

    def _domain_specializes(self, sub: str, sup: str) -> bool:
        if sub == sup:
            return True
        if sub not in self.lattice or sup not in self.lattice:
            return True
        return self.lattice.is_subtype(sub, sup)

    # -- OP1-OP8, axiomatic renderings --------------------------------------

    def op1(self, class_name: str, prop: OrionProperty) -> None:
        """OP1: "Add v to Ne(C).  Perform Orion conflict resolution as
        necessary." """
        self._require(class_name)
        inherited = self._winner(class_name, prop.name)
        if (
            inherited is not None
            and inherited.origin != class_name
            and not prop.is_method
            and not self._domain_specializes(prop.domain, inherited.domain)
        ):
            raise OperationRejected(
                "OP1",
                f"redefinition of {prop.name!r} must specialize domain "
                f"{inherited.domain!r}, got {prop.domain!r}",
            )
        # A same-name local redefinition replaces the previous one.
        existing = self._local_props(class_name).get(prop.name)
        if existing is not None:
            self.lattice.drop_essential_property(class_name, existing)
            self.props.pop(existing.semantics, None)
        originated = OrionProperty(
            prop.name, prop.domain, class_name, prop.is_method
        )
        p = Property(originated.semantics, prop.name, prop.domain)
        self.lattice.add_essential_property(class_name, p)
        self.props[p.semantics] = originated

    def op2(self, class_name: str, prop_name: str) -> None:
        """OP2: "Drop v from Ne(C)." """
        self._require(class_name)
        existing = self._local_props(class_name).get(prop_name)
        if existing is None:
            raise OperationRejected(
                "OP2",
                f"class {class_name!r} does not define {prop_name!r} locally",
            )
        self.lattice.drop_essential_property(class_name, existing)
        self.props.pop(existing.semantics, None)

    def op3(self, class_name: str, superclass: str) -> None:
        """OP3: "Add S to the end of ordered Pe(C) ... If the Axiom of
        Acyclicity is violated, the operation is rejected." """
        self._require(class_name)
        self._require(superclass)
        if superclass in self.ordered_pe[class_name]:
            return
        if superclass != ROOT_CLASS:
            # The lattice rejects cycles (Axiom of Acyclicity).
            self.lattice.add_essential_supertype(class_name, superclass)
        else:
            # OBJECT is implicitly in Pe under the rooted policy; only
            # the ordered mirror needs the entry.
            pass
        self.ordered_pe[class_name].append(superclass)

    def op4(self, class_name: str, superclass: str) -> None:
        """OP4, the paper's algorithm::

            if Pe(C) = {S} then
                if S = OBJECT then REJECT operation
                else Pe(C) = Pe(S)
            else remove S from Pe(C)
        """
        self._require(class_name)
        order = self.ordered_pe[class_name]
        if superclass not in order:
            raise OperationRejected(
                "OP4",
                f"{superclass!r} is not a superclass of {class_name!r}",
            )
        if order == [superclass]:
            if superclass == ROOT_CLASS:
                raise OperationRejected(
                    "OP4", "cannot drop the last edge to OBJECT"
                )
            inherited_order = list(self.ordered_pe[superclass])
            self.lattice.drop_essential_supertype(class_name, superclass)
            for s in inherited_order:
                if s != ROOT_CLASS:
                    self.lattice.add_essential_supertype(class_name, s)
            self.ordered_pe[class_name] = inherited_order
        else:
            if superclass != ROOT_CLASS:
                self.lattice.drop_essential_supertype(class_name, superclass)
            order.remove(superclass)

    def op5(self, class_name: str, new_order: list[str]) -> None:
        """OP5: "Simply change the ordering of classes in Pe(C)."

        Pure conflict-resolution metadata: the lattice is untouched — the
        axiomatization of TIGUKAT abstracted this operation out entirely
        (Section 5).
        """
        self._require(class_name)
        if sorted(new_order) != sorted(self.ordered_pe[class_name]):
            raise OperationRejected(
                "OP5",
                "new order must be a permutation of the current superclasses",
            )
        self.ordered_pe[class_name] = list(new_order)

    def op6(self, class_name: str, superclass: str | None = None) -> None:
        """OP6: "Create C and add S to Pe(C).  If S is not specified, then
        S = OBJECT by default." """
        s = superclass if superclass else ROOT_CLASS
        self._require(s)
        self.lattice.add_type(
            class_name, supertypes=[] if s == ROOT_CLASS else [s]
        )
        self.ordered_pe[class_name] = [s]

    def op7(self, class_name: str) -> None:
        """OP7: "For all subclasses C of S, remove S as a superclass of C
        using OP4." """
        if class_name == ROOT_CLASS:
            raise OperationRejected("OP7", "OBJECT cannot be dropped")
        self._require(class_name)
        subs = sorted(
            c for c, order in self.ordered_pe.items()
            if class_name in order
        )
        for sub in subs:
            self.op4(sub, class_name)
        for p in list(self.lattice.ne(class_name)):
            self.props.pop(p.semantics, None)
        self.lattice.drop_type(class_name)
        del self.ordered_pe[class_name]

    def op8(self, old_name: str, new_name: str) -> None:
        """OP8: "Change every occurrence of C in the Pe's of the various
        classes to the new name."

        The axiomatic model has no renaming (identity is immutable and
        references are separate, Section 5); the reduction realizes the
        Orion semantics by re-referencing: rebuild the type under the new
        reference and re-point every ``Pe`` and property origin/domain.
        """
        self._require(old_name)
        if old_name == ROOT_CLASS:
            raise OperationRejected("OP8", "OBJECT cannot be renamed")
        if new_name in self.lattice:
            raise OperationRejected("OP8", f"{new_name!r} already exists")

        old_order = self.ordered_pe[old_name]
        local = sorted(self.lattice.ne(old_name))
        dependents = {
            c: list(order) for c, order in self.ordered_pe.items()
            if old_name in order and c != old_name
        }
        # Create the new reference with the same supertypes.
        self.lattice.add_type(
            new_name,
            supertypes=[s for s in old_order if s != ROOT_CLASS],
        )
        self.ordered_pe[new_name] = list(old_order)
        # Re-originate local properties under the new name.
        for p in local:
            orion_prop = self.props.pop(p.semantics)
            renamed = OrionProperty(
                orion_prop.name, orion_prop.domain, new_name,
                orion_prop.is_method,
            )
            np = Property(renamed.semantics, renamed.name, renamed.domain)
            self.lattice.add_essential_property(new_name, np)
            self.props[np.semantics] = renamed
        # Re-point subclasses, preserving their order positions.
        for c, order in dependents.items():
            self.lattice.add_essential_supertype(c, new_name)
            self.lattice.drop_essential_supertype(c, old_name)
            self.ordered_pe[c] = [
                new_name if s == old_name else s for s in order
            ]
        # Domains referencing the renamed class follow it.
        for semantics, orion_prop in list(self.props.items()):
            if orion_prop.domain == old_name:
                self.props[semantics] = OrionProperty(
                    orion_prop.name, new_name, orion_prop.origin,
                    orion_prop.is_method,
                )
        self.lattice.drop_type(old_name)
        del self.ordered_pe[old_name]

    # -- views ---------------------------------------------------------------

    def classes(self) -> frozenset[str]:
        return self.lattice.types()

    def resolved_interface(self, class_name: str) -> dict[str, str]:
        """Conflict-resolved interface: ``name -> winning semantics``."""
        return resolve_on_lattice(self.lattice, self.ordered_pe, class_name)


# ----------------------------------------------------------------------
# The reduction theorem, machine-checked
# ----------------------------------------------------------------------


@dataclass
class EquivalenceReport:
    """Differences between a native Orion database and its reduction."""

    mismatches: list[str]

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def __str__(self) -> str:
        if self.equivalent:
            return "native Orion and the axiomatic reduction are equivalent"
        return "\n".join(self.mismatches)


def check_equivalent(
    native: OrionDatabase, reduced: ReducedOrion
) -> EquivalenceReport:
    """Compare every observable the paper's reduction must preserve."""
    mismatches: list[str] = []

    native_classes = native.classes()
    reduced_classes = reduced.classes()
    if native_classes != reduced_classes:
        mismatches.append(
            f"class sets differ: only native "
            f"{sorted(native_classes - reduced_classes)}, only reduced "
            f"{sorted(reduced_classes - native_classes)}"
        )
        return EquivalenceReport(mismatches)

    for name in sorted(native_classes):
        native_cls = native.get(name)
        if native_cls.superclasses != reduced.ordered_pe.get(name, []):
            mismatches.append(
                f"ordered superclasses of {name!r}: native "
                f"{native_cls.superclasses} vs reduced "
                f"{reduced.ordered_pe.get(name)}"
            )
        native_ancestors = native.ancestors_of(name) | {name}
        if native_ancestors != reduced.lattice.pl(name):
            mismatches.append(
                f"ancestors of {name!r}: native {sorted(native_ancestors)} "
                f"vs PL {sorted(reduced.lattice.pl(name))}"
            )
        native_iface = {
            n: p.semantics
            for n, p in resolve_interface(native, name).items()
        }
        reduced_iface = reduced.resolved_interface(name)
        if native_iface != reduced_iface:
            mismatches.append(
                f"resolved interface of {name!r}: native {native_iface} "
                f"vs reduced {reduced_iface}"
            )
    return EquivalenceReport(mismatches)


def assert_equivalent(native: OrionDatabase, reduced: ReducedOrion) -> None:
    report = check_equivalent(native, reduced)
    if not report.equivalent:
        raise AssertionError(str(report))


def reverse_reduction_counterexample() -> dict[str, object]:
    """Why the axiomatic model does NOT reduce to Orion (Section 4/5).

    Builds a lattice where the axiomatic model distinguishes states Orion
    cannot represent: two types with identical Orion-visible structure
    whose essential (minimal) bookkeeping differs, so dropping the same
    edge diverges.  Returns the witness pieces for tests and docs.
    """
    # Type A declares T_mid AND T_top essential; type B only T_mid.  Both
    # have P = {T_mid} — indistinguishable to Orion, which keeps only the
    # direct superclass list.  Dropping T_mid then separates them: A
    # retains T_top (essential), B falls to the root.
    lat = TypeLattice(LatticePolicy(rooted=True, pointed=False,
                                    root_name="OBJECT", base_name=""))
    lat.add_type("T_top")
    lat.add_type("T_mid", supertypes=["T_top"])
    lat.add_type("A", supertypes=["T_mid", "T_top"])
    lat.add_type("B", supertypes=["T_mid"])
    same_before = lat.p("A") == lat.p("B") == frozenset({"T_mid"})
    lat.drop_essential_supertype("A", "T_mid")
    lat.drop_essential_supertype("B", "T_mid")
    return {
        "lattice": lat,
        "identical_p_before": same_before,
        "p_A_after": lat.p("A"),   # {T_top}: the essential memory
        "p_B_after": lat.p("B"),   # {OBJECT}: no essential memory
        "diverged": lat.p("A") != lat.p("B"),
    }
