"""The Orion object model (Banerjee, Kim, Kim & Korth, SIGMOD 1987).

"The Orion model is the first system to introduce the invariants and
rules approach as a structured way of describing schema evolution in
OBMSs" (paper Section 4).  This module is a faithful, *native*
implementation of Orion's class structure as the paper characterizes it:

* classes with **ordered** superclass lists ("The superclasses in Orion
  are ordered for conflict resolution purposes");
* properties (attributes and methods alike) carrying **name and domain**
  ("Properties in Orion have names and domains, which are used in
  conflict resolution") plus an *origin* class;
* name-based conflict resolution with locally-defined precedence and
  superclass-order precedence (:mod:`repro.orion.conflict`);
* a lattice "rooted with ⊤ = OBJECT" and "the Axiom of Pointedness ...
  relaxed since there is no single class as a base".

The native model exists so the reduction of Section 4 can be *tested*
rather than asserted: :mod:`repro.orion.reduction` drives an axiomatic
lattice through the same operations and the differential tests check the
two agree operation by operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.errors import (
    CycleError,
    DuplicateTypeError,
    UnknownTypeError,
)

__all__ = ["ROOT_CLASS", "OrionProperty", "OrionClass", "OrionDatabase"]

#: Orion's distinguished root class.
ROOT_CLASS = "OBJECT"


@dataclass(frozen=True)
class OrionProperty:
    """An Orion attribute or method.

    ``origin`` is the class that (re)defined the property — Orion's
    "distinct identity (origin)" notion.  Two properties with the same
    name but different origins are different properties that *conflict*;
    the resolution rules pick which one a class sees.
    """

    name: str
    domain: str = "OBJECT"
    origin: str = ""
    is_method: bool = False

    def redefined_by(self, new_origin: str, domain: str | None = None) -> "OrionProperty":
        """The property as redefined in a subclass (new origin)."""
        return replace(
            self, origin=new_origin,
            domain=self.domain if domain is None else domain,
        )

    @property
    def semantics(self) -> str:
        """The identity key used when mapping into the axiomatic model:
        origin-qualified, since Orion identifies properties by origin."""
        return f"{self.origin}.{self.name}"

    def __str__(self) -> str:
        kind = "method" if self.is_method else "attr"
        return f"{self.name}[{kind}:{self.domain}]@{self.origin}"


@dataclass
class OrionClass:
    """A class: ordered superclasses plus locally (re)defined properties."""

    name: str
    superclasses: list[str] = field(default_factory=list)
    #: locally defined or redefined properties, by name
    local: dict[str, OrionProperty] = field(default_factory=dict)

    def define(self, prop: OrionProperty) -> None:
        self.local[prop.name] = replace(prop, origin=self.name)

    def undefine(self, name: str) -> OrionProperty | None:
        return self.local.pop(name, None)

    def copy(self) -> "OrionClass":
        return OrionClass(
            self.name, list(self.superclasses), dict(self.local)
        )


class OrionDatabase:
    """The native Orion class lattice.

    The DAG is rooted at :data:`ROOT_CLASS`; every class except the root
    must keep at least one superclass (Orion's "class lattice invariant"
    keeps the structure connected — OP4 enforces it by rewiring).
    """

    def __init__(self) -> None:
        self._classes: dict[str, OrionClass] = {
            ROOT_CLASS: OrionClass(ROOT_CLASS)
        }

    # -- access ----------------------------------------------------------

    def classes(self) -> frozenset[str]:
        return frozenset(self._classes)

    def get(self, name: str) -> OrionClass:
        cls = self._classes.get(name)
        if cls is None:
            raise UnknownTypeError(name)
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def subclasses_of(self, name: str) -> frozenset[str]:
        """Classes listing ``name`` as a direct superclass."""
        self.get(name)
        return frozenset(
            c.name for c in self._classes.values()
            if name in c.superclasses
        )

    def ancestors_of(self, name: str) -> frozenset[str]:
        """All classes reachable upward from ``name`` (excluded)."""
        seen: set[str] = set()
        stack = list(self.get(name).superclasses)
        while stack:
            s = stack.pop()
            if s in seen or s not in self._classes:
                continue
            seen.add(s)
            stack.extend(self._classes[s].superclasses)
        return frozenset(seen)

    def is_dag(self) -> bool:
        """Whether the superclass graph is acyclic."""
        try:
            for name in self._classes:
                if name in self.ancestors_of(name):
                    return False
        except RecursionError:  # pragma: no cover - defensive
            return False
        return True

    # -- structural mutation (used by the OP1-OP8 layer) ------------------

    def add_class(self, name: str, superclasses: list[str] | None = None) -> OrionClass:
        if name in self._classes:
            raise DuplicateTypeError(name)
        supers = list(superclasses) if superclasses else [ROOT_CLASS]
        for s in supers:
            if s not in self._classes:
                raise UnknownTypeError(s)
        cls = OrionClass(name, supers)
        self._classes[name] = cls
        return cls

    def remove_class(self, name: str) -> OrionClass:
        if name == ROOT_CLASS:
            raise ValueError("OBJECT cannot be removed")
        return self._classes.pop(name)

    def add_edge(self, subclass: str, superclass: str) -> None:
        """Append ``superclass`` at the end of the ordered list.

        "OP3: Add S to the end of ordered Pe(C) ... If the Axiom of
        Acyclicity is violated, the operation is rejected."
        """
        cls = self.get(subclass)
        self.get(superclass)
        if superclass == subclass or subclass in (
            self.ancestors_of(superclass) | {superclass}
        ):
            raise CycleError(subclass, superclass)
        if superclass in cls.superclasses:
            return
        cls.superclasses.append(superclass)

    def rename_class(self, old: str, new: str) -> None:
        """OP8 support: rename a class everywhere it occurs."""
        if new in self._classes:
            raise DuplicateTypeError(new)
        cls = self._classes.pop(old) if old in self._classes else None
        if cls is None:
            raise UnknownTypeError(old)
        cls.name = new
        # Re-originate local properties: in Orion the origin is the class
        # name, which just changed.
        cls.local = {
            n: replace(p, origin=new) for n, p in cls.local.items()
        }
        self._classes[new] = cls
        for other in self._classes.values():
            other.superclasses = [
                new if s == old else s for s in other.superclasses
            ]
            # Inherited-origin bookkeeping for redefinitions pointing at
            # the old name.
            other.local = {
                n: (replace(p, domain=new) if p.domain == old else p)
                for n, p in other.local.items()
            }

    def copy(self) -> "OrionDatabase":
        clone = OrionDatabase()
        clone._classes = {n: c.copy() for n, c in self._classes.items()}
        return clone

    def fingerprint(self) -> tuple:
        """Canonical digest of the class structure (for the differential
        and order-dependence experiments).  Superclass *order* matters in
        Orion, so it is part of the digest."""
        return tuple(
            (
                name,
                tuple(cls.superclasses),
                tuple(sorted(str(p) for p in cls.local.values())),
            )
            for name, cls in sorted(self._classes.items())
        )

    def __repr__(self) -> str:
        return f"OrionDatabase(classes={len(self._classes)})"
