"""Orion's invariants and rules (Banerjee et al. 1987) as checkers.

"Orion defines a complete set of invariants and a set of twelve
accompanying rules for maintaining the invariants over schema changes"
(paper Section 4).  The invariants are implemented as predicates over an
:class:`~repro.orion.model.OrionDatabase`; the twelve rules are encoded
as a documented registry mapping each rule to the code location that
enforces it, so the "invariants and rules" approach can be compared
side-by-side with the axiomatic approach (which replaces all of this
with Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .conflict import resolve_interface
from .model import ROOT_CLASS, OrionDatabase

__all__ = [
    "OrionViolation",
    "check_invariants",
    "ORION_INVARIANTS",
    "ORION_RULES",
]


@dataclass(frozen=True)
class OrionViolation:
    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


def _check_class_lattice(db: OrionDatabase) -> list[OrionViolation]:
    """Class lattice invariant: a rooted, connected DAG.

    Every class other than OBJECT has at least one superclass, OBJECT is
    reachable from everywhere, and there are no cycles.
    """
    out: list[OrionViolation] = []
    if not db.is_dag():
        out.append(
            OrionViolation("class-lattice", "*", "superclass graph has a cycle")
        )
        return out
    for name in db.classes():
        if name == ROOT_CLASS:
            continue
        cls = db.get(name)
        if not cls.superclasses:
            out.append(
                OrionViolation(
                    "class-lattice", name, "class has no superclass"
                )
            )
        elif ROOT_CLASS not in db.ancestors_of(name):
            out.append(
                OrionViolation(
                    "class-lattice", name, "OBJECT is not an ancestor"
                )
            )
    return out


def _check_distinct_names(db: OrionDatabase) -> list[OrionViolation]:
    """Distinct name invariant.

    Class names are unique (structurally guaranteed by the dict) and the
    *resolved* interface of a class maps each name to exactly one
    property — i.e. conflict resolution actually resolved everything.
    """
    out: list[OrionViolation] = []
    for name in db.classes():
        try:
            resolve_interface(db, name)
        except Exception as exc:  # pragma: no cover - defensive
            out.append(OrionViolation("distinct-name", name, str(exc)))
    return out


def _check_distinct_origin(db: OrionDatabase) -> list[OrionViolation]:
    """Distinct identity (origin) invariant: within one class's local
    definitions, each property has that class as origin (redefinition
    re-originates)."""
    out: list[OrionViolation] = []
    for name in db.classes():
        for prop in db.get(name).local.values():
            if prop.origin != name:
                out.append(
                    OrionViolation(
                        "distinct-origin", name,
                        f"local property {prop.name!r} has foreign origin "
                        f"{prop.origin!r}",
                    )
                )
    return out


def _check_full_inheritance(db: OrionDatabase) -> list[OrionViolation]:
    """Full inheritance invariant: a class inherits every superclass
    property except those lost to name conflicts (a winner with that name
    must still be visible)."""
    out: list[OrionViolation] = []
    for name in db.classes():
        visible = resolve_interface(db, name)
        for s in db.get(name).superclasses:
            for prop_name in resolve_interface(db, s):
                if prop_name not in visible:
                    out.append(
                        OrionViolation(
                            "full-inheritance", name,
                            f"property {prop_name!r} of superclass {s!r} "
                            f"is not visible",
                        )
                    )
    return out


ORION_INVARIANTS = {
    "class-lattice": _check_class_lattice,
    "distinct-name": _check_distinct_names,
    "distinct-origin": _check_distinct_origin,
    "full-inheritance": _check_full_inheritance,
}


def check_invariants(db: OrionDatabase) -> list[OrionViolation]:
    """Check every Orion invariant; empty list when all hold.

    A broken class lattice (cycle/disconnection) is reported alone —
    the property invariants presuppose a well-formed lattice and would
    only cascade noise (or fail to terminate) on top of it.
    """
    structural = _check_class_lattice(db)
    if structural:
        return structural
    out: list[OrionViolation] = []
    for name, checker in ORION_INVARIANTS.items():
        if name == "class-lattice":
            continue
        out.extend(checker(db))
    return out


#: The twelve rules of Banerjee et al., with where this implementation
#: enforces each.  The registry is what the Section 4/5 comparison tables
#: render: the axiomatic model replaces the entire right-hand column with
#: the nine axioms of Table 2.
ORION_RULES: tuple[tuple[str, str, str], ...] = (
    ("R1", "default conflict resolution: local definition wins",
     "conflict.resolve_interface (locals update last)"),
    ("R2", "conflict among superclasses resolved by superclass order",
     "conflict.resolve_interface (setdefault in order)"),
    ("R3", "a property inherited along several paths from one origin is "
     "inherited once", "OrionProperty identity is (name, origin)"),
    ("R4", "redefinition re-originates the property in the subclass",
     "OrionClass.define / OrionProperty.redefined_by"),
    ("R5", "domain of a redefined attribute may only specialize",
     "operations.OrionOps.op1 (domain check)"),
    ("R6", "property additions propagate to all subclasses unless shadowed",
     "conflict.resolve_interface (recursive)"),
    ("R7", "property drops propagate to all subclasses unless redefined",
     "conflict.resolve_interface (recursive)"),
    ("R8", "no cycles may be introduced in the class lattice",
     "model.OrionDatabase.add_edge"),
    ("R9", "a class whose last superclass edge is dropped is connected to "
     "the superclasses of the dropped superclass",
     "operations.OrionOps.op4"),
    ("R10", "the edge to OBJECT of a class with no other superclass cannot "
     "be dropped", "operations.OrionOps.op4 (REJECT branch)"),
    ("R11", "dropping a class drops its edges via the edge-drop rule",
     "operations.OrionOps.op7"),
    ("R12", "class renaming must keep class names unique",
     "model.OrionDatabase.rename_class"),
)
