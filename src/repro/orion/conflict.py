"""Orion conflict resolution over ordered superclass lists.

The Orion rules the paper relies on ("Perform Orion conflict resolution
as necessary"), from Banerjee et al. 1987:

* **Rule of local precedence** — a property (re)defined locally in a
  class shadows any same-named inherited property.
* **Rule of superclass order** — among same-named properties inherited
  from several superclasses, the one coming through the *earliest*
  superclass in the ordered list wins.
* **Single-origin rule** — a property reaching a class along several
  paths from the same origin is inherited once (no self-conflict).

The resolver works both on the native :class:`OrionDatabase` and on the
reduced axiomatic lattice (given an ordered ``Pe``), which is how the
Section 5 claim — "to resolve property naming conflicts in a type, it
would only be necessary to iterate through the minimal supertypes" — is
exercised in :mod:`benchmarks`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from .model import OrionDatabase, OrionProperty

if TYPE_CHECKING:  # pragma: no cover
    from ..core.lattice import TypeLattice

__all__ = [
    "resolve_interface",
    "visible_property",
    "resolve_on_lattice",
    "find_name_conflicts_minimal",
    "find_name_conflicts_full",
]


def resolve_interface(db: OrionDatabase, name: str) -> dict[str, OrionProperty]:
    """The full resolved interface of a class: ``property name → winner``.

    Resolution is recursive: each superclass contributes its *own*
    resolved interface (so shadowing composes down the lattice), and the
    contributions merge left-to-right in superclass order, locals last
    and strongest.  A cyclic class structure (only reachable by direct
    corruption — OP3 rejects cycles) raises :class:`CycleError`.
    """
    return _resolve(db, name, (), {})


def _resolve(
    db: OrionDatabase,
    name: str,
    visiting: tuple[str, ...],
    memo: dict[str, dict[str, OrionProperty]],
) -> dict[str, OrionProperty]:
    from ..core.errors import CycleError

    if name in memo:
        return memo[name]
    if name in visiting:
        raise CycleError(visiting[-1], name)
    cls = db.get(name)
    resolved: dict[str, OrionProperty] = {}
    # Superclass-order precedence: earliest superclass wins, so later
    # contributions must not overwrite earlier ones.
    for superclass in cls.superclasses:
        contribution = _resolve(db, superclass, visiting + (name,), memo)
        for prop_name, prop in contribution.items():
            resolved.setdefault(prop_name, prop)
    # Local precedence: locally (re)defined properties shadow everything.
    resolved.update(cls.local)
    memo[name] = resolved
    return resolved


def visible_property(
    db: OrionDatabase, class_name: str, prop_name: str
) -> OrionProperty | None:
    """The winner for one property name in one class, or None."""
    return resolve_interface(db, class_name).get(prop_name)


def inherited_of(db: OrionDatabase, name: str) -> dict[str, OrionProperty]:
    """Orion's inherited properties: "Inherited properties of a class C in
    Orion is equivalent to I(C) − Ne(C) in the axiomatic model." """
    cls = db.get(name)
    return {
        n: p for n, p in resolve_interface(db, name).items()
        if n not in cls.local
    }


# ----------------------------------------------------------------------
# The same resolution over a reduced axiomatic lattice
# ----------------------------------------------------------------------


def resolve_on_lattice(
    lattice: "TypeLattice",
    ordered_pe: Mapping[str, list[str]],
    class_name: str,
    _memo: dict[str, dict[str, str]] | None = None,
) -> dict[str, str]:
    """Orion resolution replayed on the axiomatic reduction.

    ``ordered_pe`` carries the superclass order the reduction preserves
    ("The Pe set can easily be ordered for this purpose").  Returns
    ``property name → winning semantics key``; the differential tests
    check this equals the native resolver's answer.
    """
    memo = _memo if _memo is not None else {}
    if class_name in memo:
        return memo[class_name]
    resolved: dict[str, str] = {}
    for superclass in ordered_pe.get(class_name, []):
        if superclass not in lattice:
            continue
        for prop_name, semantics in resolve_on_lattice(
            lattice, ordered_pe, superclass, memo
        ).items():
            resolved.setdefault(prop_name, semantics)
    for p in lattice.ne(class_name):
        resolved[p.name] = p.semantics
    memo[class_name] = resolved
    return resolved


# ----------------------------------------------------------------------
# Section 5: conflict detection via minimal vs. full supertypes
# ----------------------------------------------------------------------


def find_name_conflicts_minimal(
    lattice: "TypeLattice", type_name: str
) -> dict[str, frozenset[str]]:
    """Detect name conflicts scanning only ``P(t)`` interfaces.

    The paper: "to resolve property naming conflicts in a type, it would
    only be necessary to iterate through the minimal supertypes of that
    type because any conflicts would be detectable in these supertypes
    alone."  Returns ``name → conflicting semantics keys``.
    """
    by_name: dict[str, set[str]] = {}
    for p in lattice.n(type_name):
        by_name.setdefault(p.name, set()).add(p.semantics)
    for s in lattice.p(type_name):
        for p in lattice.interface(s):
            by_name.setdefault(p.name, set()).add(p.semantics)
    return {
        name: frozenset(keys)
        for name, keys in by_name.items()
        if len(keys) > 1
    }


def find_name_conflicts_full(
    lattice: "TypeLattice", type_name: str
) -> dict[str, frozenset[str]]:
    """The naive alternative: scan every type in ``PL(t)``.

    Produces the same answer as the minimal scan (the equivalence is a
    test and the cost difference a benchmark), touching ``|PL(t)|``
    interfaces instead of ``|P(t)|+1``.
    """
    by_name: dict[str, set[str]] = {}
    for s in lattice.pl(type_name):
        for p in lattice.interface(s):
            by_name.setdefault(p.name, set()).add(p.semantics)
    return {
        name: frozenset(keys)
        for name, keys in by_name.items()
        if len(keys) > 1
    }
