"""The type lattice ``T`` with designer inputs ``Pe`` and ``Ne``.

:class:`TypeLattice` is the central data structure of the axiomatic model
(Section 2 of the paper).  Its *state* is exactly the two designer-managed
terms — the essential supertypes ``Pe(t)`` and essential properties
``Ne(t)`` of every type — plus a :class:`~repro.core.config.LatticePolicy`
selecting which of the relaxable axioms (rootedness, pointedness) are in
force.  Everything else (``P``, ``PL``, ``N``, ``H``, ``I``) is *derived*
through the axioms, cached, and maintained **incrementally**: every
mutation records the touched types in a dirty set, and the next derived
-term access propagates only through the affected cone (the touched types
plus their descendants in the inverse ``Pe`` graph), reusing every clean
entry live.  Consecutive mutations coalesce — a batch of operations costs
one propagation pass, not one per operation.

To make the cone walk O(cone) instead of O(schema), the lattice maintains
an inverse essential-supertype index (``supertype -> types listing it``)
alongside ``Pe`` itself; :meth:`essential_subtypes` is a dictionary lookup
rather than a scan, and :meth:`copy` carries the derived-term cache into
the clone (snapshots are immutable, so sharing is safe) — which is what
lets dry-run engines (impact analysis, the symbolic plan evaluator) ride
the same incremental kernel instead of re-deriving per step.

The mutation API enforces at change time exactly the rejections the paper
specifies: cycle-introducing supertype additions (Axiom of Acyclicity),
dropping the link to the root (Axiom of Rootedness), and destructive
changes to frozen (primitive) types.
"""

from __future__ import annotations

import logging
from bisect import bisect_left
from time import perf_counter
from typing import Iterable, Iterator

from ..obs.metrics import REGISTRY, SIZE_BUCKETS
from .config import EssentialityDefault, LatticePolicy
from .derivation import Derivation, derive, derive_incremental
from .errors import (
    CycleError,
    DuplicateTypeError,
    FrozenTypeError,
    PointednessViolationError,
    RootViolationError,
    UnknownTypeError,
)
from .properties import Property, PropertyUniverse

__all__ = ["TypeLattice", "build_figure1_lattice"]

logger = logging.getLogger(__name__)

_DERIVATIONS = REGISTRY.counter(
    "repro_derivations_total",
    "Derivation passes by mode (full re-derivation vs incremental cone)",
    ("mode",),
)
_FULL_PASSES = _DERIVATIONS.labels(mode="full")
_INCREMENTAL_PASSES = _DERIVATIONS.labels(mode="incremental")
_DERIVATION_SECONDS = REGISTRY.histogram(
    "repro_derivation_seconds",
    "Wall time of one derivation pass",
    ("mode",),
)
_FULL_SECONDS = _DERIVATION_SECONDS.labels(mode="full")
_INCREMENTAL_SECONDS = _DERIVATION_SECONDS.labels(mode="incremental")
_CONE_TYPES = REGISTRY.counter(
    "repro_derivation_cone_types_total",
    "Types recomputed across all derivation passes",
)
_CONE_SIZE = REGISTRY.histogram(
    "repro_derivation_cone_size_types",
    "Dirty-cone size (types recomputed) per derivation pass",
    buckets=SIZE_BUCKETS,
)
_SCHEMA_TYPES = REGISTRY.gauge(
    "repro_schema_types",
    "Types in the most recently derived lattice",
)
# Raw sample handles for the incremental branch's inlined updates (the
# unlabeled families above proxy through a default child per call).
_CONE_TYPES_SAMPLE = _CONE_TYPES._require_default()
_CONE_SIZE_SAMPLE = _CONE_SIZE._require_default()
_SCHEMA_TYPES_SAMPLE = _SCHEMA_TYPES._require_default()


class TypeLattice:
    """A lattice of types driven by essential supertypes and properties.

    Parameters
    ----------
    policy:
        The :class:`LatticePolicy` in force.  Defaults to the TIGUKAT
        policy (rooted at ``T_object``, pointed at ``T_null``).  When the
        policy is rooted and/or pointed, the root/base types are created
        automatically.

    Examples
    --------
    >>> lat = TypeLattice()
    >>> _ = lat.add_type("T_person")
    >>> _ = lat.add_type("T_student", supertypes=["T_person"])
    >>> sorted(lat.p("T_student"))
    ['T_person']
    """

    def __init__(self, policy: LatticePolicy | None = None) -> None:
        self._policy = policy if policy is not None else LatticePolicy.tigukat()
        self._pe: dict[str, set[str]] = {}
        self._ne: dict[str, set[Property]] = {}
        #: inverse Pe index: supertype -> types listing it as essential.
        self._subs: dict[str, set[str]] = {}
        self._frozen: set[str] = set()
        self._universe = PropertyUniverse()
        self._derivation: Derivation | None = None
        self._dirty: set[str] = set()
        self._full_recompute = True
        self._generation = 0
        self.stats = {
            "full_derivations": 0,
            "incremental_derivations": 0,
            "types_recomputed": 0,
        }

        if self._policy.rooted:
            self._install_type(self._policy.root_name, frozen=True)
        if self._policy.pointed:
            self._install_type(self._policy.base_name, frozen=True)
            if self._policy.rooted:
                self._link(self._policy.base_name, self._policy.root_name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def policy(self) -> LatticePolicy:
        return self._policy

    @property
    def universe(self) -> PropertyUniverse:
        """Every property known to the schema (interned)."""
        return self._universe

    def types(self) -> frozenset[str]:
        """The set ``T`` of all types in the system."""
        return frozenset(self._pe)

    def __contains__(self, name: str) -> bool:
        return name in self._pe

    def __len__(self) -> int:
        return len(self._pe)

    def __iter__(self) -> Iterator[str]:
        return iter(self._pe)

    @property
    def root(self) -> str | None:
        return self._policy.root_name if self._policy.rooted else None

    @property
    def base(self) -> str | None:
        return self._policy.base_name if self._policy.pointed else None

    def is_frozen(self, name: str) -> bool:
        """Whether ``name`` is a primitive type protected from changes."""
        self._require(name)
        return name in self._frozen

    # -- designer-managed terms ----------------------------------------

    def pe(self, name: str) -> frozenset[str]:
        """``Pe(t)``: the essential supertypes of ``t``."""
        self._require(name)
        return frozenset(self._pe[name])

    def ne(self, name: str) -> frozenset[Property]:
        """``Ne(t)``: the essential properties of ``t``."""
        self._require(name)
        return frozenset(self._ne[name])

    # -- derived terms (the axioms) ------------------------------------

    @property
    def derivation(self) -> Derivation:
        """The current instantiation of all derived terms.

        Cached and maintained incrementally: a full pass only ever runs on
        first access or after :meth:`invalidate_cache`; mutations mark
        their cone dirty and this accessor propagates the accumulated
        delta.  The returned snapshot is immutable and survives later
        mutation (each propagation builds a new snapshot).
        """
        if self._derivation is None or self._full_recompute:
            self._resync_subs()
            obs = _FULL_PASSES.enabled
            started = perf_counter() if obs else 0.0
            self._derivation = derive(self._pe, self._ne)
            self.stats["full_derivations"] += 1
            self.stats["types_recomputed"] += len(self._pe)
            self._full_recompute = False
            self._dirty.clear()
            if obs:
                _FULL_SECONDS.observe(perf_counter() - started)
                _FULL_PASSES.inc()
                _CONE_TYPES.inc(len(self._pe))
                _CONE_SIZE.observe(len(self._pe))
                _SCHEMA_TYPES.set(len(self._pe))
                logger.debug(
                    "full derivation pass over %d types", len(self._pe)
                )
        elif self._dirty:
            obs = _INCREMENTAL_PASSES.enabled
            started = perf_counter() if obs else 0.0
            self._derivation = derive_incremental(
                self._derivation, self._pe, self._ne, self._dirty,
                inverse=self._subs,
            )
            self.stats["incremental_derivations"] += 1
            cone = len(self._derivation.recomputed)
            self.stats["types_recomputed"] += cone
            self._dirty.clear()
            if obs:
                # Hot path: inlined sample updates (the Histogram.observe /
                # Counter.inc bodies, minus the call overhead — six method
                # calls here are measurable against a two-type cone) and no
                # per-pass logging.  ``obs`` already carries the enabled
                # check; reset() zeroes samples in place so these handles
                # stay valid.
                elapsed = perf_counter() - started
                _INCREMENTAL_SECONDS._counts[
                    bisect_left(_INCREMENTAL_SECONDS.bounds, elapsed)
                ] += 1
                _INCREMENTAL_SECONDS._sum += elapsed
                _INCREMENTAL_PASSES._value += 1
                _CONE_TYPES_SAMPLE._value += cone
                _CONE_SIZE_SAMPLE._counts[
                    bisect_left(_CONE_SIZE_SAMPLE.bounds, cone)
                ] += 1
                _CONE_SIZE_SAMPLE._sum += cone
                _SCHEMA_TYPES_SAMPLE._value = len(self._pe)
        return self._derivation

    def p(self, name: str) -> frozenset[str]:
        """``P(t)``: the immediate (minimal) supertypes of ``t`` (Axiom 5)."""
        self._require(name)
        return self.derivation.p[name]

    def pl(self, name: str) -> frozenset[str]:
        """``PL(t)``: the supertype lattice of ``t``, including ``t`` (Axiom 6)."""
        self._require(name)
        return self.derivation.pl[name]

    def n(self, name: str) -> frozenset[Property]:
        """``N(t)``: the native properties of ``t`` (Axiom 8)."""
        self._require(name)
        return self.derivation.n[name]

    def h(self, name: str) -> frozenset[Property]:
        """``H(t)``: the inherited properties of ``t`` (Axiom 9)."""
        self._require(name)
        return self.derivation.h[name]

    def interface(self, name: str) -> frozenset[Property]:
        """``I(t)``: the full interface of ``t`` (Axiom 7)."""
        self._require(name)
        return self.derivation.i[name]

    def subtypes(self, name: str) -> frozenset[str]:
        """Immediate subtypes of ``name`` — the inverse of ``P``."""
        self._require(name)
        return self.derivation.subtypes(name)

    def all_subtypes(self, name: str) -> frozenset[str]:
        """All (transitive) subtypes of ``name``, excluding itself."""
        self._require(name)
        return self.derivation.all_subtypes(name)

    def essential_subtypes(self, name: str) -> frozenset[str]:
        """Types that list ``name`` among their essential supertypes.

        O(1): served from the maintained inverse index, not a scan.
        """
        self._require(name)
        return frozenset(self._subs.get(name, ()))

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Whether ``sub ⊑ sup`` in the derived lattice (reflexive)."""
        return sup in self.pl(sub)

    def defining_types(self, p: Property) -> frozenset[str]:
        """Types that define ``p`` natively in the derived lattice."""
        deriv = self.derivation
        return frozenset(t for t in deriv.n if p in deriv.n[t])

    def essential_in(self, p: Property) -> frozenset[str]:
        """Types that list ``p`` among their essential properties."""
        return frozenset(t for t, props in self._ne.items() if p in props)

    # ------------------------------------------------------------------
    # Mutation (the designer-facing evolution primitives)
    # ------------------------------------------------------------------

    def add_type(
        self,
        name: str,
        supertypes: Iterable[str] = (),
        properties: Iterable[Property] = (),
        frozen: bool = False,
    ) -> str:
        """Create a new type with the given essential supertypes/properties.

        Implements the paper's AT semantics: "The result of creating a new
        type t as the subtype of types s1..sn with essential behaviors
        b1..bm adds s1..sn to Pe(t), b1..bm to Ne(t), and the axioms are
        recomputed.  If no supertypes are specified, T_object is assumed.
        Due to the axiom of pointedness ... the new type t is added to
        Pe(T_null)."
        """
        if name in self._pe:
            raise DuplicateTypeError(name)
        supertypes = list(supertypes)
        for s in supertypes:
            self._require(s)
            if self._policy.pointed and s == self._policy.base_name:
                raise PointednessViolationError(
                    f"the base type {s!r} cannot be a supertype"
                )
        self._install_type(name, frozen=frozen)
        for s in supertypes:
            self._link(name, s)
        if self._policy.rooted and name != self._policy.root_name:
            self._link(name, self._policy.root_name)
        if self._policy.essentiality is EssentialityDefault.ALL_INHERITED:
            # Everything reachable at declaration time becomes essential.
            reachable: set[str] = set()
            for s in list(self._pe[name]):
                reachable.update(self._pe_closure(s))
            for s in reachable - {name}:
                self._link(name, s)
        for p in properties:
            self._ne[name].add(self._universe.intern(p))
        if self._policy.essentiality is EssentialityDefault.ALL_INHERITED:
            # Inherited properties present at declaration time become
            # essential too ("all supertypes and properties (including
            # inherited properties) are essential").  Rides the incremental
            # cache: only the new type's cone is derived, not the schema.
            self._dirty.add(name)
            inherited = self.derivation
            for s in self._pe[name]:
                self._ne[name].update(inherited.i[s])
        if self._policy.pointed and name != self._policy.base_name:
            self._link(self._policy.base_name, name)
        self._invalidate(name, self._policy.base_name if self._policy.pointed else None)
        return name

    def drop_type(self, name: str) -> frozenset[str]:
        """Drop ``name`` from ``T`` and from every ``Pe`` that lists it.

        Returns the set of types whose ``Pe`` was touched.  Implements the
        paper's DT semantics ("the type is removed from C_type and from
        the Pe of all subtypes of t").  Frozen (primitive) types and the
        root/base of an enforced policy cannot be dropped.
        """
        self._require(name)
        if name in self._frozen:
            raise FrozenTypeError(name)
        if self._policy.rooted and name == self._policy.root_name:
            raise RootViolationError("the root type cannot be dropped")
        if self._policy.pointed and name == self._policy.base_name:
            raise PointednessViolationError("the base type cannot be dropped")
        dependents = self.essential_subtypes(name)
        for t in dependents:
            self._unlink(t, name)
        for s in self._pe[name]:
            self._subs.get(s, set()).discard(name)
        del self._pe[name]
        del self._ne[name]
        self._subs.pop(name, None)
        self._frozen.discard(name)
        self._invalidate(*dependents)
        return dependents

    def add_essential_supertype(self, name: str, supertype: str) -> bool:
        """Add ``supertype`` to ``Pe(name)`` (the paper's MT-ASR).

        Returns ``True`` when ``Pe`` changed.  Rejects cycle-introducing
        additions per the Axiom of Acyclicity, and any edge involving the
        base type on the supertype side.
        """
        self._require(name)
        self._require(supertype)
        if self._policy.pointed and supertype == self._policy.base_name:
            raise PointednessViolationError(
                f"the base type {supertype!r} cannot be a supertype"
            )
        if self._policy.rooted and name == self._policy.root_name:
            raise RootViolationError("the root type cannot gain supertypes")
        if name in self._frozen:
            raise FrozenTypeError(name)
        if supertype == name or name in self._pe_closure(supertype):
            raise CycleError(name, supertype)
        if supertype in self._pe[name]:
            return False
        self._link(name, supertype)
        self._invalidate(name)
        return True

    def drop_essential_supertype(self, name: str, supertype: str) -> bool:
        """Remove ``supertype`` from ``Pe(name)`` (the paper's MT-DSR).

        Returns ``True`` when ``Pe`` changed.  "Due to the axiom of
        rootedness, which TIGUKAT obeys, a subtype relationship to
        T_object cannot be dropped."
        """
        self._require(name)
        self._require(supertype)
        if name in self._frozen:
            raise FrozenTypeError(name)
        if self._policy.rooted and supertype == self._policy.root_name:
            raise RootViolationError(
                "the subtype relationship to the root cannot be dropped"
            )
        if self._policy.pointed and name == self._policy.base_name:
            raise PointednessViolationError(
                "the base type keeps every type as an essential supertype"
            )
        if supertype not in self._pe[name]:
            return False
        self._unlink(name, supertype)
        self._invalidate(name)
        return True

    def add_essential_property(self, name: str, p: Property) -> bool:
        """Add ``p`` to ``Ne(name)`` (the paper's MT-AB).

        "Defining an already inherited property on a type would not include
        the property in N, but would include it in Ne."  Returns ``True``
        when ``Ne`` changed.
        """
        self._require(name)
        if name in self._frozen:
            raise FrozenTypeError(name)
        p = self._universe.intern(p)
        if p in self._ne[name]:
            return False
        self._ne[name].add(p)
        self._invalidate(name)
        return True

    def drop_essential_property(self, name: str, p: Property) -> bool:
        """Remove ``p`` from ``Ne(name)`` (the paper's MT-DB).

        "Note that this may not actually remove b from the interface of t
        because b may be inherited from one or more supertypes of t."
        Returns ``True`` when ``Ne`` changed.
        """
        self._require(name)
        if name in self._frozen:
            raise FrozenTypeError(name)
        if p not in self._ne[name]:
            return False
        self._ne[name].discard(p)
        self._invalidate(name)
        return True

    def drop_property_everywhere(self, p: Property) -> frozenset[str]:
        """Drop ``p`` from every ``Ne`` that lists it (the paper's DB).

        "A dropped behavior is dropped from all types that define the
        behavior as essential."  Returns the set of touched types.
        """
        touched = frozenset(
            t for t, props in self._ne.items()
            if p in props and t not in self._frozen
        )
        for t in touched:
            self._ne[t].discard(p)
        if not self.essential_in(p):
            self._universe.discard(p.semantics)
        self._invalidate(*touched)
        return touched

    def freeze(self, name: str) -> None:
        """Mark ``name`` as primitive (immutable and undroppable)."""
        self._require(name)
        self._frozen.add(name)

    # ------------------------------------------------------------------
    # Whole-lattice utilities
    # ------------------------------------------------------------------

    def copy(self) -> "TypeLattice":
        """An independent deep copy with the same state and policy.

        The derived-term cache travels with the clone: snapshots are
        immutable, so the clone shares the current :class:`Derivation`
        (and the pending dirty set) and its first derived-term access
        after further mutation is an incremental cone pass, not a full
        re-derivation.  This is what makes dry-run engines (impact
        analysis, symbolic plan execution) O(cone) per step.
        """
        clone = TypeLattice.__new__(TypeLattice)
        clone._policy = self._policy
        clone._pe = {t: set(s) for t, s in self._pe.items()}
        clone._ne = {t: set(p) for t, p in self._ne.items()}
        clone._subs = {t: set(s) for t, s in self._subs.items()}
        clone._frozen = set(self._frozen)
        clone._universe = PropertyUniverse(self._universe)
        clone._derivation = self._derivation
        clone._dirty = set(self._dirty)
        clone._full_recompute = self._full_recompute
        clone._generation = self._generation
        clone.stats = {
            "full_derivations": 0,
            "incremental_derivations": 0,
            "types_recomputed": 0,
        }
        return clone

    def state_fingerprint(self) -> tuple:
        """Canonical digest of the designer-managed state (``Pe``/``Ne``)."""
        return tuple(
            (
                t,
                tuple(sorted(self._pe[t])),
                tuple(sorted(p.semantics for p in self._ne[t])),
            )
            for t in sorted(self._pe)
        )

    def derived_fingerprint(self) -> tuple:
        """Canonical digest of the derived lattice (``P``/``N``/``I``)."""
        return self.derivation.fingerprint()

    @property
    def generation(self) -> int:
        """Monotonic mutation counter.

        Increments on every designer-state change (including explicit
        cache invalidation); callers caching anything derived from the
        lattice key their caches on this.
        """
        return self._generation

    def invalidate_cache(self) -> None:
        """Force the next derived-term access to recompute from scratch.

        This is the escape hatch for callers that mutate ``_pe``/``_ne``
        behind the lattice's back (corruption tests, snapshot loaders):
        it also resynchronizes the inverse index.  Ordinary mutation never
        needs it — use :meth:`invalidate_types` to invalidate a known cone.
        """
        self._generation += 1
        self._full_recompute = True
        self._dirty.clear()
        self._resync_subs()

    def invalidate_types(self, *names: str) -> None:
        """Targeted invalidation: mark ``names`` (and implicitly their
        descendant cones) for incremental recomputation.

        The cheap counterpart of :meth:`invalidate_cache` for callers that
        rewrite declarations in place and know exactly which types they
        touched (e.g. :func:`repro.core.normalize.normalize`): the next
        derived-term access propagates through the named cones only.
        """
        self._invalidate(*names)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _install_type(self, name: str, frozen: bool = False) -> None:
        if not name:
            raise ValueError("type names must be non-empty")
        self._pe[name] = set()
        self._ne[name] = set()
        self._subs.setdefault(name, set())
        if frozen:
            self._frozen.add(name)

    def _link(self, t: str, s: str) -> None:
        """Add ``s`` to ``Pe(t)``, maintaining the inverse index."""
        self._pe[t].add(s)
        self._subs.setdefault(s, set()).add(t)

    def _unlink(self, t: str, s: str) -> None:
        """Remove ``s`` from ``Pe(t)``, maintaining the inverse index."""
        self._pe[t].discard(s)
        self._subs.get(s, set()).discard(t)

    def _resync_subs(self) -> None:
        """Rebuild the inverse index from ``Pe`` (after direct mutation)."""
        subs: dict[str, set[str]] = {t: set() for t in self._pe}
        for t, supers in self._pe.items():
            for s in supers:
                if s in subs:
                    subs[s].add(t)
        self._subs = subs

    def _require(self, name: str) -> None:
        if name not in self._pe:
            raise UnknownTypeError(name)

    def _pe_closure(self, start: str) -> set[str]:
        """Everything reachable upward from ``start`` via Pe edges."""
        seen: set[str] = set()
        stack = [start]
        while stack:
            t = stack.pop()
            for s in self._pe.get(t, ()):
                if s not in seen and s in self._pe:
                    seen.add(s)
                    stack.append(s)
        return seen

    def _pe_view(self) -> dict[str, frozenset[str]]:
        return {t: frozenset(s) for t, s in self._pe.items()}

    def _ne_view(self) -> dict[str, frozenset[Property]]:
        return {t: frozenset(p) for t, p in self._ne.items()}

    def _invalidate(self, *names: str | None) -> None:
        self._generation += 1
        if self._derivation is None:
            self._full_recompute = True
            return
        self._dirty.update(n for n in names if n)

    def __repr__(self) -> str:
        return (
            f"TypeLattice(|T|={len(self._pe)}, "
            f"rooted={self._policy.rooted}, pointed={self._policy.pointed})"
        )


def build_figure1_lattice(policy: LatticePolicy | None = None) -> TypeLattice:
    """The simple type lattice of Figure 1, with the paper's essentials.

    Builds the seven-type university lattice::

                      T_object
                      /      \\
               T_person      T_taxSource
                /     \\       /
         T_student    T_employee
                \\      /
          T_teachingAssistant
                   |
                 T_null

    with the worked-example essential declarations of Section 2:
    ``Pe(T_teachingAssistant) = {T_student, T_employee, T_person,
    T_object}`` (``T_taxSource`` deliberately *not* essential) and the
    native ``name``/``salary``/``taxBracket`` properties, ``taxBracket``
    being declared essential in ``T_employee``.
    """
    from .properties import prop

    lat = TypeLattice(policy)
    person_name = prop("person.name", "name")
    tax_name = prop("taxSource.name", "name")
    tax_bracket = prop("taxSource.taxBracket", "taxBracket")
    salary = prop("employee.salary", "salary")

    lat.add_type("T_person", properties=[person_name])
    lat.add_type("T_taxSource", properties=[tax_name, tax_bracket])
    lat.add_type("T_student", supertypes=["T_person"])
    lat.add_type(
        "T_employee",
        supertypes=["T_person", "T_taxSource"],
        properties=[salary, tax_bracket],  # taxBracket essential in employee
    )
    lat.add_type(
        "T_teachingAssistant",
        supertypes=["T_student", "T_employee", "T_person"],
    )
    return lat
