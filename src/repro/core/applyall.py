"""The apply-all operation ``α`` of the axiomatic model.

Section 2: "We assume the availability of an apply-all operation ...
denoted α_x(f, T'), [which] applies the unary function f to the elements of
a set of types T' ⊆ T.  ... let x range over the elements of T' and for
each binding of x, evaluate f and include the result in the final result
set.  If T' is empty, the empty set is returned."

The paper's axioms always combine ``α`` with an *extended union* over the
resulting set of sets ("the large union operator preceding each apply-all"),
with the extended union of the empty set defined as the empty set.  Both
operations are provided here so :mod:`repro.core.axioms` can be written in
a form that visibly matches Table 2.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, TypeVar

__all__ = ["apply_all", "extended_union", "union_apply_all"]

T = TypeVar("T")
R = TypeVar("R")


def apply_all(
    f: Callable[[T], R], elements: Iterable[T]
) -> frozenset[R]:
    """``α_x(f, T')``: evaluate ``f`` at each element, collect the results.

    The result is a *set* (as in the paper): duplicate results collapse.
    ``f`` results must therefore be hashable; in the axioms they are
    (frozen) sets of types or properties.

    >>> sorted(apply_all(lambda x: x * 2, {1, 2, 3}))
    [2, 4, 6]
    >>> apply_all(lambda x: x, set())
    frozenset()
    """
    return frozenset(f(x) for x in elements)


def extended_union(sets: Iterable[FrozenSet[R]]) -> frozenset[R]:
    """The extended (big) union ``⋃`` over a set of sets.

    "We define the extended union of the empty set as the empty set."

    >>> sorted(extended_union([frozenset({1, 2}), frozenset({2, 3})]))
    [1, 2, 3]
    >>> extended_union([])
    frozenset()
    """
    result: set[R] = set()
    for s in sets:
        result.update(s)
    return frozenset(result)


def union_apply_all(
    f: Callable[[T], FrozenSet[R]], elements: Iterable[T]
) -> frozenset[R]:
    """``⋃ α_x(f, T')`` — the composite form used by Axioms 2, 5, 6, 9.

    >>> sorted(union_apply_all(lambda x: frozenset(range(x)), {2, 3}))
    [0, 1, 2]
    """
    return extended_union(apply_all(f, elements))
