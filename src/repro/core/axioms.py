"""The nine axioms of Table 2 as independently checkable predicates.

Each axiom is represented by an :class:`Axiom` object whose ``check``
inspects a :class:`~repro.core.lattice.TypeLattice` and returns the list of
:class:`Violation` it finds.  The checks are written against the *literal*
Table-2 formulas (using the apply-all operator ``α`` and extended union),
independently of the derivation engine, so they double as a verification
oracle for :mod:`repro.core.derivation`: an engine bug that produced a set
disagreeing with its axiom would be reported here.

The numbering follows the paper:

1. Closure            ``∀t∈T, Pe(t) ⊆ T``
2. Acyclicity         ``∀t∈T, t ∉ ⋃ α_x(PL(x), Pe(t))``
3. Rootedness         ``∃!⊤∈T ∀t∈T · ⊤ ∈ PL(t) ∧ P(⊤) = {}``
4. Pointedness        ``∃!⊥∈T ∀t∈T · t ∈ PL(⊥)``
5. Supertypes         ``∀t∈T, P(t) = Pe(t) − ⋃ α_x(PL(x) ∩ Pe(t) − {x}, Pe(t))``
6. Supertype Lattice  ``∀t∈T, PL(t) = ⋃ α_x(PL(x), P(t)) ∪ {t}``
7. Interface          ``∀t∈T, I(t) = N(t) ∪ H(t)``
8. Nativeness         ``∀t∈T, N(t) = Ne(t) − H(t)``
9. Inheritance        ``∀t∈T, H(t) = ⋃ α_x(I(x), P(t))``

Axioms 3 and 4 are *relaxable*; their checks consult the lattice policy and
pass vacuously when relaxed (forest / multi-leaf lattices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, TYPE_CHECKING

from .applyall import union_apply_all
from .errors import AxiomViolationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .lattice import TypeLattice

__all__ = [
    "Violation",
    "Axiom",
    "ALL_AXIOMS",
    "AXIOMS_BY_NAME",
    "check_axiom",
    "check_all",
    "assert_all",
]


@dataclass(frozen=True)
class Violation:
    """A single axiom violation, attributable to a type (or the lattice)."""

    axiom: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.axiom}] {self.subject}: {self.detail}"


@dataclass(frozen=True)
class Axiom:
    """A named, numbered axiom with a formula string and a checker."""

    number: int
    name: str
    formula: str
    relaxable: bool
    _checker: Callable[["TypeLattice"], list[Violation]]

    def check(self, lattice: "TypeLattice") -> list[Violation]:
        """All violations of this axiom in ``lattice`` (empty when it holds)."""
        return self._checker(lattice)

    def holds(self, lattice: "TypeLattice") -> bool:
        return not self.check(lattice)

    def __str__(self) -> str:
        return f"Axiom {self.number} ({self.name}): {self.formula}"


# ----------------------------------------------------------------------
# Individual checkers
# ----------------------------------------------------------------------


def _check_closure(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    universe = lat.types()
    for t in universe:
        stray = lat.pe(t) - universe
        if stray:
            out.append(
                Violation(
                    "Closure", t,
                    f"Pe({t}) mentions types outside T: {sorted(stray)}",
                )
            )
    return out


def _check_acyclicity(lat: "TypeLattice") -> list[Violation]:
    # t ∉ ⋃ α_x(PL(x), Pe(t)): no type appears in the supertype lattice of
    # any of its (essential) supertypes.
    out: list[Violation] = []
    universe = lat.types()
    try:
        deriv = lat.derivation
    except Exception:
        # The derivation itself refuses cyclic graphs: report the cycle by
        # a direct reachability walk over raw Pe edges.
        for t in sorted(universe):
            if _reaches_itself(lat, t):
                out.append(
                    Violation("Acyclicity", t, "type reaches itself via Pe")
                )
        return out
    for t in universe:
        above = union_apply_all(
            lambda x: deriv.pl[x], (s for s in lat.pe(t) if s in universe)
        )
        if t in above:
            out.append(
                Violation(
                    "Acyclicity", t,
                    "type appears in the supertype lattice of its supertypes",
                )
            )
    return out


def _reaches_itself(lat: "TypeLattice", start: str) -> bool:
    seen: set[str] = set()
    stack = list(lat.pe(start))
    while stack:
        s = stack.pop()
        if s == start:
            return True
        if s in seen or s not in lat:
            continue
        seen.add(s)
        stack.extend(lat.pe(s))
    return False


def _check_rootedness(lat: "TypeLattice") -> list[Violation]:
    if not lat.policy.rooted:
        return []
    out: list[Violation] = []
    root = lat.policy.root_name
    if root not in lat:
        return [Violation("Rootedness", root, "declared root is not in T")]
    if lat.p(root):
        out.append(
            Violation("Rootedness", root, f"P(⊤) must be empty, got {sorted(lat.p(root))}")
        )
    for t in lat.types():
        if root not in lat.pl(t):
            out.append(
                Violation("Rootedness", t, f"⊤ ∉ PL({t})")
            )
    # Uniqueness: no other type may have an empty supertype set.
    for t in lat.types():
        if t != root and not lat.p(t):
            out.append(
                Violation("Rootedness", t, "second root: P(t) is empty")
            )
    return out


def _check_pointedness(lat: "TypeLattice") -> list[Violation]:
    if not lat.policy.pointed:
        return []
    out: list[Violation] = []
    base = lat.policy.base_name
    if base not in lat:
        return [Violation("Pointedness", base, "declared base is not in T")]
    missing = lat.types() - lat.pl(base)
    if missing:
        out.append(
            Violation(
                "Pointedness", base,
                f"types missing from PL(⊥): {sorted(missing)}",
            )
        )
    return out


def _check_supertypes(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    deriv = lat.derivation
    universe = lat.types()
    for t in universe:
        pe_t = frozenset(s for s in lat.pe(t) if s in universe)
        dominated = union_apply_all(
            lambda x: (deriv.pl[x] & pe_t) - {x}, pe_t
        )
        expected = pe_t - dominated
        if deriv.p[t] != expected:
            out.append(
                Violation(
                    "Supertypes", t,
                    f"P({t}) = {sorted(deriv.p[t])}, axiom requires {sorted(expected)}",
                )
            )
    return out


def _check_supertype_lattice(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    deriv = lat.derivation
    for t in lat.types():
        expected = union_apply_all(lambda x: deriv.pl[x], deriv.p[t]) | {t}
        if deriv.pl[t] != expected:
            out.append(
                Violation(
                    "Supertype Lattice", t,
                    f"PL({t}) = {sorted(deriv.pl[t])}, axiom requires {sorted(expected)}",
                )
            )
    return out


def _check_interface(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    deriv = lat.derivation
    for t in lat.types():
        expected = deriv.n[t] | deriv.h[t]
        if deriv.i[t] != expected:
            out.append(
                Violation("Interface", t, "I(t) ≠ N(t) ∪ H(t)")
            )
    return out


def _check_nativeness(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    deriv = lat.derivation
    for t in lat.types():
        expected = lat.ne(t) - deriv.h[t]
        if deriv.n[t] != expected:
            out.append(
                Violation("Nativeness", t, "N(t) ≠ Ne(t) − H(t)")
            )
    return out


def _check_inheritance(lat: "TypeLattice") -> list[Violation]:
    out: list[Violation] = []
    deriv = lat.derivation
    for t in lat.types():
        expected = union_apply_all(lambda x: deriv.i[x], deriv.p[t])
        if deriv.h[t] != expected:
            out.append(
                Violation("Inheritance", t, "H(t) ≠ ⋃ α_x(I(x), P(t))")
            )
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

ALL_AXIOMS: tuple[Axiom, ...] = (
    Axiom(1, "Closure", "∀t∈T, Pe(t) ⊆ T", False, _check_closure),
    Axiom(2, "Acyclicity", "∀t∈T, t ∉ ⋃ α_x(PL(x), Pe(t))", False, _check_acyclicity),
    Axiom(3, "Rootedness", "∃!⊤∈T ∀t∈T · ⊤ ∈ PL(t) ∧ P(⊤) = {}", True, _check_rootedness),
    Axiom(4, "Pointedness", "∃!⊥∈T ∀t∈T · t ∈ PL(⊥)", True, _check_pointedness),
    Axiom(5, "Supertypes", "∀t∈T, P(t) = Pe(t) − ⋃ α_x(PL(x) ∩ Pe(t) − {x}, Pe(t))", False, _check_supertypes),
    Axiom(6, "Supertype Lattice", "∀t∈T, PL(t) = ⋃ α_x(PL(x), P(t)) ∪ {t}", False, _check_supertype_lattice),
    Axiom(7, "Interface", "∀t∈T, I(t) = N(t) ∪ H(t)", False, _check_interface),
    Axiom(8, "Nativeness", "∀t∈T, N(t) = Ne(t) − H(t)", False, _check_nativeness),
    Axiom(9, "Inheritance", "∀t∈T, H(t) = ⋃ α_x(I(x), P(t))", False, _check_inheritance),
)

AXIOMS_BY_NAME: dict[str, Axiom] = {a.name: a for a in ALL_AXIOMS}


def check_axiom(lattice: "TypeLattice", which: int | str) -> list[Violation]:
    """Check a single axiom by number (1-9) or name."""
    if isinstance(which, int):
        for a in ALL_AXIOMS:
            if a.number == which:
                return a.check(lattice)
        raise KeyError(f"no axiom numbered {which}")
    return AXIOMS_BY_NAME[which].check(lattice)


def check_all(
    lattice: "TypeLattice", axioms: Iterable[Axiom] = ALL_AXIOMS
) -> list[Violation]:
    """Check every axiom; returns the concatenated violation list."""
    out: list[Violation] = []
    for axiom in axioms:
        out.extend(axiom.check(lattice))
    return out


def assert_all(lattice: "TypeLattice") -> None:
    """Raise :class:`AxiomViolationError` unless all nine axioms hold."""
    violations = check_all(lattice)
    if violations:
        raise AxiomViolationError(violations)
