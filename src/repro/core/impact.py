"""Impact analysis: what a schema change *would* do, before doing it.

The schema designer's half of "the timely change and management of the
schema": before an operation is applied to a live objectbase, preview
exactly which types' derived terms change and how.  The analysis runs
the operation on a throwaway copy of the lattice and diffs the derived
structure — so it is exact by construction (same engine, same axioms),
and the live lattice is untouched.

Used by :class:`repro.core.transactions.SchemaTransaction` callers as a
dry-run, and by the TIGUKAT layer (`repro.tigukat.impact`) to extend the
preview to instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .errors import SchemaError, error_code
from .minimality import diff_lattices
from .operations import SchemaOperation

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["ImpactReport", "analyze_impact"]


@dataclass
class ImpactReport:
    """The projected effect of one operation on the derived schema."""

    operation: SchemaOperation
    accepted: bool
    rejection: str = ""
    #: machine-readable code of the rejection (see ``core.errors``), empty
    #: when accepted.
    rejection_code: str = ""
    types_added: frozenset[str] = frozenset()
    types_removed: frozenset[str] = frozenset()
    #: type -> (P before, P after)
    supertype_changes: dict[str, tuple[frozenset[str], frozenset[str]]] = field(
        default_factory=dict
    )
    #: type -> (properties entering I(t), properties leaving I(t))
    interface_changes: dict[str, tuple[frozenset, frozenset]] = field(
        default_factory=dict
    )

    @property
    def affected_types(self) -> frozenset[str]:
        """Every type whose derived structure would change."""
        return frozenset(
            set(self.supertype_changes)
            | set(self.interface_changes)
            | self.types_added
            | self.types_removed
        )

    @property
    def is_noop(self) -> bool:
        return self.accepted and not self.affected_types

    def summary(self) -> str:
        if not self.accepted:
            return f"REJECTED: {self.rejection}"
        if self.is_noop:
            return "no derived change"
        lines: list[str] = []
        if self.types_added:
            lines.append(f"adds types: {sorted(self.types_added)}")
        if self.types_removed:
            lines.append(f"removes types: {sorted(self.types_removed)}")
        for t, (before, after) in sorted(self.supertype_changes.items()):
            lines.append(
                f"P({t}): {sorted(before)} -> {sorted(after)}"
            )
        for t, (gained, lost) in sorted(self.interface_changes.items()):
            bits = []
            if gained:
                bits.append(f"+{sorted(str(p) for p in gained)}")
            if lost:
                bits.append(f"-{sorted(str(p) for p in lost)}")
            lines.append(f"I({t}): {' '.join(bits)}")
        return "\n".join(lines)


def analyze_impact(
    lattice: "TypeLattice", operation: SchemaOperation
) -> ImpactReport:
    """Dry-run ``operation`` and report the projected derived changes.

    Never mutates ``lattice``.  A rejected operation reports
    ``accepted=False`` with the rejection reason instead of raising.
    """
    trial = lattice.copy()
    try:
        operation.apply(trial)
    except SchemaError as exc:
        return ImpactReport(
            operation,
            accepted=False,
            rejection=str(exc),
            rejection_code=error_code(exc),
        )

    diff = diff_lattices(lattice, trial)
    interface_changes: dict[str, tuple[frozenset, frozenset]] = {}
    for t, (before, after) in diff.interface_changes.items():
        interface_changes[t] = (
            frozenset(after - before),   # gained
            frozenset(before - after),   # lost
        )
    return ImpactReport(
        operation,
        accepted=True,
        types_added=diff.only_right,
        types_removed=diff.only_left,
        supertype_changes=dict(diff.edge_changes),
        interface_changes=interface_changes,
    )
