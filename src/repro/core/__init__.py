"""The axiomatic model of dynamic schema evolution (paper Section 2).

Public surface:

* :class:`TypeLattice` — the lattice ``T`` driven by ``Pe``/``Ne``;
* :class:`LatticePolicy` — rootedness/pointedness/essentiality policies;
* :class:`Property` — semantics-identified generic properties;
* the nine axioms (:data:`ALL_AXIOMS`, :func:`check_all`, ...);
* the soundness/completeness oracle (:func:`verify`);
* schema-evolution operations and the :class:`EvolutionJournal`;
* the apply-all operator ``α`` and minimality utilities.
"""

from .applyall import apply_all, extended_union, union_apply_all
from .axioms import (
    ALL_AXIOMS,
    AXIOMS_BY_NAME,
    Axiom,
    Violation,
    assert_all,
    check_all,
    check_axiom,
)
from .config import EssentialityDefault, LatticePolicy
from .algebra import (
    comparable,
    join,
    join_unique,
    lower_bounds,
    meet,
    meet_unique,
    upper_bounds,
)
from .derivation import (
    Derivation,
    affected_downset,
    derive,
    derive_incremental,
    local_topological_order,
    topological_order,
)
from .fixpoint import derive_fixpoint
from .transactions import SchemaTransaction, TransactionError
from .errors import (
    ERROR_CODES,
    AxiomViolationError,
    CorruptRecordError,
    CycleError,
    DuplicateTypeError,
    EvolutionError,
    FrozenTypeError,
    JournalError,
    OperationRejected,
    PlanError,
    PointednessViolationError,
    RootViolationError,
    SchemaError,
    UnknownPropertyError,
    UnknownTypeError,
    error_code,
    exit_code_for,
)
from .history import EvolutionJournal, JournalEntry
from .impact import ImpactReport, analyze_impact
from .identity import Oid, OidGenerator, ReferenceMap
from .lattice import TypeLattice, build_figure1_lattice
from .lint import LINT_RULES, LintFinding, lint_lattice
from .normalize import (
    NormalizationReport,
    is_normalized,
    normalize,
    normalized_copy,
)
from .minimality import (
    LatticeDiff,
    diff_lattices,
    essential_edge_count,
    is_reduced,
    minimal_edge_count,
    transitive_closure,
    transitive_reduction,
)
from .operations import (
    OPERATION_CODES,
    AddEssentialProperty,
    AddEssentialSupertype,
    AddType,
    DropEssentialProperty,
    DropEssentialSupertype,
    DropPropertyEverywhere,
    DropType,
    OperationResult,
    SchemaOperation,
    operation_from_dict,
)
from .proofs import Obligation, ProofTrace, prove
from .properties import Property, PropertyUniverse, prop
from .subschema import extract_subschema, upward_closure
from .soundness import (
    Discrepancy,
    Oracle,
    SoundnessReport,
    assert_sound_and_complete,
    verify,
)

__all__ = [
    # lattice
    "TypeLattice",
    "build_figure1_lattice",
    "LatticePolicy",
    "EssentialityDefault",
    "Derivation",
    "derive",
    "derive_incremental",
    "topological_order",
    "local_topological_order",
    "affected_downset",
    # properties & identity
    "Property",
    "PropertyUniverse",
    "prop",
    "Oid",
    "OidGenerator",
    "ReferenceMap",
    # axioms
    "ALL_AXIOMS",
    "AXIOMS_BY_NAME",
    "Axiom",
    "Violation",
    "check_all",
    "check_axiom",
    "assert_all",
    # soundness
    "Oracle",
    "SoundnessReport",
    "Discrepancy",
    "verify",
    "assert_sound_and_complete",
    "prove",
    "ProofTrace",
    "Obligation",
    # operations
    "SchemaOperation",
    "OperationResult",
    "AddType",
    "DropType",
    "AddEssentialSupertype",
    "DropEssentialSupertype",
    "AddEssentialProperty",
    "DropEssentialProperty",
    "DropPropertyEverywhere",
    "OPERATION_CODES",
    "operation_from_dict",
    # history & transactions
    "EvolutionJournal",
    "JournalEntry",
    "SchemaTransaction",
    "TransactionError",
    "ImpactReport",
    "analyze_impact",
    "LintFinding",
    "lint_lattice",
    "LINT_RULES",
    # algebra & engines
    "derive_fixpoint",
    "comparable",
    "upper_bounds",
    "lower_bounds",
    "join",
    "meet",
    "join_unique",
    "meet_unique",
    # apply-all & minimality
    "apply_all",
    "extended_union",
    "union_apply_all",
    "transitive_closure",
    "transitive_reduction",
    "is_reduced",
    "minimal_edge_count",
    "essential_edge_count",
    "LatticeDiff",
    "diff_lattices",
    "normalize",
    "normalized_copy",
    "is_normalized",
    "NormalizationReport",
    "extract_subschema",
    "upward_closure",
    # errors
    "EvolutionError",
    "ERROR_CODES",
    "error_code",
    "exit_code_for",
    "SchemaError",
    "UnknownTypeError",
    "DuplicateTypeError",
    "CycleError",
    "RootViolationError",
    "PointednessViolationError",
    "AxiomViolationError",
    "PlanError",
    "OperationRejected",
    "UnknownPropertyError",
    "FrozenTypeError",
    "JournalError",
    "CorruptRecordError",
]
