"""Properties in the generic sense of the axiomatic model.

The paper uses *property* "in the generic sense as encompassing" attributes,
methods, and behaviors.  Crucially (Section 3.1/3.2), the axiomatic model
identifies a property by its *semantics*: "the semantics of a property is a
unique description ... therefore, simple set operations can be used to
resolve conflicts."  Names and domains may be *part of* the semantics
(Section 4, Orion mapping) but are not the identity.

:class:`Property` is therefore an immutable value identified by a semantics
key; two properties with the same semantics key are the same property no
matter what they are called, and two same-named properties with different
semantics keys are distinct (the two native "name" properties of
``T_person`` and ``T_taxSource`` in the paper's Figure-1 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Property", "PropertyUniverse", "prop"]


@dataclass(frozen=True, order=True)
class Property:
    """An immutable schema property identified by its semantics.

    Parameters
    ----------
    semantics:
        The unique semantic description.  Set membership, hashing, and
        equality all use only this field.
    name:
        The human-facing name used to apply the property.  Several distinct
        properties may share a name (a *name conflict*, resolved by the
        host system's policy, not by the axiomatic model).
    domain:
        Optional value-domain annotation (Orion attaches name+domain to
        properties; the axiomatic model carries it as opaque payload).
    """

    semantics: str
    name: str = ""
    domain: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.semantics:
            raise ValueError("a property must have a non-empty semantics key")
        if not self.name:
            # Default the display name to the semantics key itself.
            object.__setattr__(self, "name", self.semantics)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Property):
            return self.semantics == other.semantics
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.semantics)

    def renamed(self, name: str) -> "Property":
        """A view of the same property under a different reference name."""
        return Property(self.semantics, name, self.domain)

    def __str__(self) -> str:
        if self.name != self.semantics:
            return f"{self.name}<{self.semantics}>"
        return self.semantics


def prop(semantics: str, name: str = "", domain: str | None = None) -> Property:
    """Convenience constructor mirroring the paper's ``B_`` references."""
    return Property(semantics, name, domain)


class PropertyUniverse:
    """An interning registry of every property known to a schema.

    The universe corresponds to ``I(⊥)`` in the paper's terms when the
    lattice is pointed: the base type inherits from everything, so its
    interface enumerates all properties of all types.  Keeping an explicit
    registry lets the library answer "which property does this semantics key
    denote" without scanning the lattice, and keeps ``domain``/``name``
    payloads stable across re-derivations.
    """

    def __init__(self, properties: Iterable[Property] = ()) -> None:
        self._by_semantics: dict[str, Property] = {}
        for p in properties:
            self.intern(p)

    def intern(self, p: Property) -> Property:
        """Register ``p`` (or return the existing equal property)."""
        existing = self._by_semantics.get(p.semantics)
        if existing is None:
            self._by_semantics[p.semantics] = p
            return p
        return existing

    def get(self, semantics: str) -> Property | None:
        return self._by_semantics.get(semantics)

    def require(self, semantics: str) -> Property:
        p = self._by_semantics.get(semantics)
        if p is None:
            from .errors import UnknownPropertyError

            raise UnknownPropertyError(semantics)
        return p

    def discard(self, semantics: str) -> None:
        self._by_semantics.pop(semantics, None)

    def by_name(self, name: str) -> frozenset[Property]:
        """All distinct properties sharing a display name."""
        return frozenset(
            p for p in self._by_semantics.values() if p.name == name
        )

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Property):
            return item.semantics in self._by_semantics
        return item in self._by_semantics

    def __iter__(self) -> Iterator[Property]:
        return iter(self._by_semantics.values())

    def __len__(self) -> int:
        return len(self._by_semantics)
