"""Lattice algebra: meets and joins over the derived subtype order.

The paper's structure ``(T, ⊑)`` with ``s ⊑ t ⟺ t ∈ PL(s)`` is a genuine
lattice when both relaxable axioms hold (⊤ and ⊥ bound every pair).
This module provides the order-theoretic operations downstream tooling
needs — e.g. the static result type of a conditional expression is the
*join* of the branch types, and the most general receiver able to answer
two interfaces is their *meet*.

* ``join(a, b)`` — least upper bound candidates: the minimal common
  supertypes (unique when the lattice is a true lattice for the pair);
* ``meet(a, b)`` — greatest lower bound candidates: the maximal common
  subtypes;
* ``comparable`` / ``partial_order`` helpers used by the query layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import UnknownTypeError

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = [
    "is_subtype",
    "comparable",
    "upper_bounds",
    "lower_bounds",
    "join",
    "meet",
    "join_unique",
    "meet_unique",
]


def _require(lattice: "TypeLattice", *names: str) -> None:
    for name in names:
        if name not in lattice:
            raise UnknownTypeError(name)


def is_subtype(lattice: "TypeLattice", sub: str, sup: str) -> bool:
    """``sub ⊑ sup`` (reflexive): ``sup ∈ PL(sub)``."""
    _require(lattice, sub, sup)
    return sup in lattice.pl(sub)


def comparable(lattice: "TypeLattice", a: str, b: str) -> bool:
    """Whether ``a`` and ``b`` are ordered either way."""
    return is_subtype(lattice, a, b) or is_subtype(lattice, b, a)


def upper_bounds(lattice: "TypeLattice", *names: str) -> frozenset[str]:
    """All common supertypes: the intersection of the ``PL`` sets."""
    if not names:
        return frozenset()
    _require(lattice, *names)
    result = lattice.pl(names[0])
    for name in names[1:]:
        result &= lattice.pl(name)
    return result


def lower_bounds(lattice: "TypeLattice", *names: str) -> frozenset[str]:
    """All common subtypes: types whose ``PL`` contains every argument."""
    if not names:
        return frozenset()
    _require(lattice, *names)
    return frozenset(
        t for t in lattice.types()
        if all(n in lattice.pl(t) for n in names)
    )


def join(lattice: "TypeLattice", *names: str) -> frozenset[str]:
    """Least upper bound candidates: minimal elements of the common
    supertypes.  On a rooted lattice this is never empty (⊤ bounds all);
    multiple candidates mean the pair has no unique join (the order is
    only a partial lattice there)."""
    bounds = upper_bounds(lattice, *names)
    return frozenset(
        t for t in bounds
        if not any(t in lattice.pl(u) and u != t for u in bounds)
    )


def meet(lattice: "TypeLattice", *names: str) -> frozenset[str]:
    """Greatest lower bound candidates: maximal elements of the common
    subtypes.  On a pointed lattice never empty (⊥ is below all)."""
    bounds = lower_bounds(lattice, *names)
    return frozenset(
        t for t in bounds
        if not any(u in lattice.pl(t) and u != t for u in bounds)
    )


def join_unique(lattice: "TypeLattice", *names: str) -> str | None:
    """The join when it is unique, else ``None``."""
    candidates = join(lattice, *names)
    if len(candidates) == 1:
        return next(iter(candidates))
    return None


def meet_unique(lattice: "TypeLattice", *names: str) -> str | None:
    """The meet when it is unique, else ``None``."""
    candidates = meet(lattice, *names)
    if len(candidates) == 1:
        return next(iter(candidates))
    return None
