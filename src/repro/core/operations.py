"""Schema-evolution operations as first-class command objects.

Section 2: "Changes to these two components [``Pe`` and ``Ne``] are
fundamental to schema evolution and the axiomatic model can handle
variations of the other type and property arrangements."  Every operation
here therefore mutates only ``Pe``/``Ne`` (plus type existence) and lets
the axioms re-instantiate the rest.

The operation codes follow the paper's Section 3.3 naming (MT-AB, MT-DB,
MT-ASR, MT-DSR, AT, DT, DB); the TIGUKAT-specific class/function/collection
operations (AC, DC, MB-CA, DF, AL, DL) live in
:mod:`repro.tigukat.evolution` since they involve constructs beyond the
axiomatic core.

Each operation knows how to

* ``validate`` its preconditions against a lattice (without mutating),
* ``apply`` itself, returning an :class:`OperationResult` that carries the
  exact *inverse* operations (enabling undo and journal replay), and
* round-trip through plain dictionaries (``to_dict``/``from_dict``) for
  the persistence layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, TYPE_CHECKING

from .errors import (
    DuplicateTypeError,
    OperationRejected,
    UnknownTypeError,
)
from .properties import Property

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = [
    "SchemaOperation",
    "OperationResult",
    "AddType",
    "DropType",
    "AddEssentialSupertype",
    "DropEssentialSupertype",
    "AddEssentialProperty",
    "DropEssentialProperty",
    "DropPropertyEverywhere",
    "operation_from_dict",
    "OPERATION_CODES",
]


def _prop_to_dict(p: Property) -> dict[str, Any]:
    return {"semantics": p.semantics, "name": p.name, "domain": p.domain}


def _prop_from_dict(d: dict[str, Any]) -> Property:
    return Property(d["semantics"], d.get("name", ""), d.get("domain"))


@dataclass
class OperationResult:
    """Outcome of applying a :class:`SchemaOperation`.

    ``inverse`` is the (ordered) list of operations that restores the
    pre-application designer state when applied in sequence.
    """

    operation: "SchemaOperation"
    changed: bool
    detail: str = ""
    inverse: list["SchemaOperation"] = field(default_factory=list)


class SchemaOperation:
    """Abstract schema-evolution command over a :class:`TypeLattice`."""

    code: ClassVar[str] = "?"

    def validate(self, lattice: "TypeLattice") -> None:
        """Raise a :class:`~repro.core.errors.SchemaError` on precondition
        failure; a successful return guarantees ``apply`` will not raise."""
        raise NotImplementedError

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.code} {self.describe()}>"


@dataclass(repr=False)
class AddType(SchemaOperation):
    """AT: create a type with essential supertypes and properties."""

    name: str
    supertypes: tuple[str, ...] = ()
    properties: tuple[Property, ...] = ()

    code: ClassVar[str] = "AT"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.name in lattice:
            raise DuplicateTypeError(self.name)
        for s in self.supertypes:
            if s not in lattice:
                raise UnknownTypeError(s)
            if lattice.base is not None and s == lattice.base:
                raise OperationRejected(
                    self.code, f"the base type {s!r} cannot be a supertype"
                )

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        self.validate(lattice)
        lattice.add_type(
            self.name, supertypes=self.supertypes, properties=self.properties
        )
        return OperationResult(
            self, True,
            detail=f"added type {self.name!r}",
            inverse=[DropType(self.name)],
        )

    def describe(self) -> str:
        return (
            f"add type {self.name!r} under {list(self.supertypes)} "
            f"with {len(self.properties)} essential properties"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "name": self.name,
            "supertypes": list(self.supertypes),
            "properties": [_prop_to_dict(p) for p in self.properties],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AddType":
        return cls(
            d["name"],
            tuple(d.get("supertypes", ())),
            tuple(_prop_from_dict(p) for p in d.get("properties", ())),
        )


@dataclass(repr=False)
class DropType(SchemaOperation):
    """DT: drop a type and remove it from every ``Pe`` that lists it."""

    name: str

    code: ClassVar[str] = "DT"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.name not in lattice:
            raise UnknownTypeError(self.name)
        if lattice.is_frozen(self.name):
            raise OperationRejected(
                self.code, f"{self.name!r} is a primitive type"
            )

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        self.validate(lattice)
        # Capture the designer state before destruction, for the inverse.
        pe = sorted(
            s for s in lattice.pe(self.name)
            if lattice.root is None or s != lattice.root
        )
        ne = tuple(sorted(lattice.ne(self.name)))
        dependents = lattice.drop_type(self.name)
        inverse: list[SchemaOperation] = [
            AddType(self.name, tuple(pe), ne)
        ]
        base = lattice.base
        for dep in sorted(dependents):
            if dep == base:
                continue  # re-established automatically by AddType
            inverse.append(AddEssentialSupertype(dep, self.name))
        return OperationResult(
            self, True,
            detail=(
                f"dropped type {self.name!r}; "
                f"removed from Pe of {sorted(dependents)}"
            ),
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"drop type {self.name!r}"

    def to_dict(self) -> dict[str, Any]:
        return {"code": self.code, "name": self.name}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DropType":
        return cls(d["name"])


@dataclass(repr=False)
class AddEssentialSupertype(SchemaOperation):
    """MT-ASR: add ``supertype`` to ``Pe(subject)``."""

    subject: str
    supertype: str

    code: ClassVar[str] = "MT-ASR"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.subject not in lattice:
            raise UnknownTypeError(self.subject)
        if self.supertype not in lattice:
            raise UnknownTypeError(self.supertype)
        trial = lattice.copy()
        trial.add_essential_supertype(self.subject, self.supertype)

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        changed = lattice.add_essential_supertype(self.subject, self.supertype)
        inverse: list[SchemaOperation] = []
        if changed:
            inverse.append(DropEssentialSupertype(self.subject, self.supertype))
        return OperationResult(
            self, changed,
            detail=(
                f"Pe({self.subject}) now includes {self.supertype!r}"
                if changed else "no change (already essential)"
            ),
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"add {self.supertype!r} as essential supertype of {self.subject!r}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "subject": self.subject,
            "supertype": self.supertype,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AddEssentialSupertype":
        return cls(d["subject"], d["supertype"])


@dataclass(repr=False)
class DropEssentialSupertype(SchemaOperation):
    """MT-DSR: remove ``supertype`` from ``Pe(subject)``."""

    subject: str
    supertype: str

    code: ClassVar[str] = "MT-DSR"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.subject not in lattice:
            raise UnknownTypeError(self.subject)
        if self.supertype not in lattice:
            raise UnknownTypeError(self.supertype)
        trial = lattice.copy()
        trial.drop_essential_supertype(self.subject, self.supertype)

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        changed = lattice.drop_essential_supertype(self.subject, self.supertype)
        inverse: list[SchemaOperation] = []
        if changed:
            inverse.append(AddEssentialSupertype(self.subject, self.supertype))
        return OperationResult(
            self, changed,
            detail=(
                f"Pe({self.subject}) no longer includes {self.supertype!r}"
                if changed else "no change (was not essential)"
            ),
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"drop {self.supertype!r} as essential supertype of {self.subject!r}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "subject": self.subject,
            "supertype": self.supertype,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DropEssentialSupertype":
        return cls(d["subject"], d["supertype"])


@dataclass(repr=False)
class AddEssentialProperty(SchemaOperation):
    """MT-AB: add a property to ``Ne(subject)``."""

    subject: str
    prop: Property

    code: ClassVar[str] = "MT-AB"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.subject not in lattice:
            raise UnknownTypeError(self.subject)
        if lattice.is_frozen(self.subject):
            raise OperationRejected(
                self.code, f"{self.subject!r} is a primitive type"
            )

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        self.validate(lattice)
        changed = lattice.add_essential_property(self.subject, self.prop)
        inverse: list[SchemaOperation] = []
        if changed:
            inverse.append(DropEssentialProperty(self.subject, self.prop))
        return OperationResult(
            self, changed,
            detail=(
                f"Ne({self.subject}) now includes {self.prop}"
                if changed else "no change (already essential)"
            ),
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"add essential property {self.prop} to {self.subject!r}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "subject": self.subject,
            "prop": _prop_to_dict(self.prop),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AddEssentialProperty":
        return cls(d["subject"], _prop_from_dict(d["prop"]))


@dataclass(repr=False)
class DropEssentialProperty(SchemaOperation):
    """MT-DB: remove a property from ``Ne(subject)``."""

    subject: str
    prop: Property

    code: ClassVar[str] = "MT-DB"

    def validate(self, lattice: "TypeLattice") -> None:
        if self.subject not in lattice:
            raise UnknownTypeError(self.subject)
        if lattice.is_frozen(self.subject):
            raise OperationRejected(
                self.code, f"{self.subject!r} is a primitive type"
            )

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        self.validate(lattice)
        changed = lattice.drop_essential_property(self.subject, self.prop)
        inverse: list[SchemaOperation] = []
        if changed:
            inverse.append(AddEssentialProperty(self.subject, self.prop))
        return OperationResult(
            self, changed,
            detail=(
                f"Ne({self.subject}) no longer includes {self.prop}"
                if changed else "no change (was not essential)"
            ),
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"drop essential property {self.prop} from {self.subject!r}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "subject": self.subject,
            "prop": _prop_to_dict(self.prop),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DropEssentialProperty":
        return cls(d["subject"], _prop_from_dict(d["prop"]))


@dataclass(repr=False)
class DropPropertyEverywhere(SchemaOperation):
    """DB: drop a property from every ``Ne`` that lists it."""

    prop: Property

    code: ClassVar[str] = "DB"

    def validate(self, lattice: "TypeLattice") -> None:
        pass  # always applicable; touching zero types is a valid no-op

    def apply(self, lattice: "TypeLattice") -> OperationResult:
        touched = lattice.drop_property_everywhere(self.prop)
        inverse: list[SchemaOperation] = [
            AddEssentialProperty(t, self.prop) for t in sorted(touched)
        ]
        return OperationResult(
            self, bool(touched),
            detail=f"dropped {self.prop} from {sorted(touched)}",
            inverse=inverse,
        )

    def describe(self) -> str:
        return f"drop property {self.prop} from every type"

    def to_dict(self) -> dict[str, Any]:
        return {"code": self.code, "prop": _prop_to_dict(self.prop)}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DropPropertyEverywhere":
        return cls(_prop_from_dict(d["prop"]))


OPERATION_CODES: dict[str, type[SchemaOperation]] = {
    cls.code: cls
    for cls in (
        AddType,
        DropType,
        AddEssentialSupertype,
        DropEssentialSupertype,
        AddEssentialProperty,
        DropEssentialProperty,
        DropPropertyEverywhere,
    )
}


def operation_from_dict(d: dict[str, Any]) -> SchemaOperation:
    """Reconstruct an operation from its ``to_dict`` representation."""
    code = d.get("code")
    cls = OPERATION_CODES.get(code)
    if cls is None:
        raise ValueError(f"unknown operation code: {code!r}")
    return cls.from_dict(d)
