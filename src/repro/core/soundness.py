"""Mechanical verification of Theorems 2.1 (soundness) and 2.2 (completeness).

The paper proves both theorems "through subset inclusion and induction on
maximal path lengths to root type T_object", assuming ``Pe(t)`` and
``Ne(t)`` are sound/complete.  This module re-implements the derived terms
with an *independent oracle* that never uses the axioms' recursive
formulas:

* ``PL*(t)`` is plain graph reachability over the raw ``Pe`` edges
  (plus ``t`` itself);
* ``P*(t)`` is the set of minimal elements of ``Pe(t)`` under the
  reachability order;
* ``H*(t)`` is the flattened union ``⋃_{a ∈ PL*(t) − {t}} N*(a)``, with
  ``N*(t) = Ne(t) − H*(t)`` resolved in stratified order of maximal path
  length to the top — exactly the induction of the proof sketch.

Soundness of a derived term means it is a subset of the oracle's set (the
axioms produce nothing spurious); completeness means it is a superset (the
axioms produce everything).  A sound *and* complete engine therefore
matches the oracle exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .properties import Property

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["Oracle", "Discrepancy", "SoundnessReport", "verify", "assert_sound_and_complete"]


@dataclass(frozen=True)
class Discrepancy:
    """One derived set disagreeing with the oracle."""

    term: str           # "P", "PL", "N", "H", or "I"
    type_name: str
    missing: frozenset  # oracle − derived  (completeness failure)
    spurious: frozenset  # derived − oracle (soundness failure)

    def __str__(self) -> str:
        parts = []
        if self.spurious:
            parts.append(f"spurious={sorted(map(str, self.spurious))}")
        if self.missing:
            parts.append(f"missing={sorted(map(str, self.missing))}")
        return f"{self.term}({self.type_name}): " + ", ".join(parts)


@dataclass
class SoundnessReport:
    """The outcome of verifying a lattice against the oracle."""

    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def is_sound(self) -> bool:
        """No derived set contains an element the oracle rejects."""
        return all(not d.spurious for d in self.discrepancies)

    @property
    def is_complete(self) -> bool:
        """No derived set misses an element the oracle requires."""
        return all(not d.missing for d in self.discrepancies)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def __str__(self) -> str:
        if self.ok:
            return "sound and complete (derived terms match the oracle exactly)"
        return "\n".join(str(d) for d in self.discrepancies)


class Oracle:
    """Ground-truth derived terms computed without the axioms.

    Uses only raw ``Pe``/``Ne`` state, reachability, and the stratification
    by maximal path length to the top of the lattice used in the paper's
    proof sketch.
    """

    def __init__(self, lattice: "TypeLattice") -> None:
        self._types = lattice.types()
        self._pe = {
            t: frozenset(s for s in lattice.pe(t) if s in self._types)
            for t in self._types
        }
        self._ne = {t: lattice.ne(t) for t in self._types}
        self._pl = {t: self._reachable(t) | {t} for t in self._types}
        self._strata = self._stratify()
        self._n: dict[str, frozenset[Property]] = {}
        self._h: dict[str, frozenset[Property]] = {}
        self._resolve_properties()

    # -- construction ---------------------------------------------------

    def _reachable(self, start: str) -> frozenset[str]:
        seen: set[str] = set()
        stack = list(self._pe[start])
        while stack:
            s = stack.pop()
            if s in seen:
                continue
            seen.add(s)
            stack.extend(self._pe[s])
        return frozenset(seen)

    def _stratify(self) -> list[list[str]]:
        """Group types by maximal Pe-path length to a top (no-supertype) type.

        This is the induction variable in the paper's proofs.  Stratum 0
        holds the roots; stratum ``k`` holds types whose longest upward
        path has ``k`` edges.
        """
        depth: dict[str, int] = {}

        def depth_of(t: str) -> int:
            if t in depth:
                return depth[t]
            supers = self._pe[t]
            d = 0 if not supers else 1 + max(depth_of(s) for s in supers)
            depth[t] = d
            return d

        for t in self._types:
            depth_of(t)
        strata: list[list[str]] = []
        for t, d in depth.items():
            while len(strata) <= d:
                strata.append([])
            strata[d].append(t)
        return strata

    def _resolve_properties(self) -> None:
        # Stratified (inductive) resolution: a type's H*/N* depend only on
        # strictly shallower types, since every proper ancestor has a
        # strictly smaller maximal path length to the top.
        for stratum in self._strata:
            for t in stratum:
                inherited: set[Property] = set()
                for a in self._pl[t] - {t}:
                    inherited.update(self._n[a])
                self._h[t] = frozenset(inherited)
                self._n[t] = self._ne[t] - self._h[t]

    # -- oracle terms ----------------------------------------------------

    def pl(self, t: str) -> frozenset[str]:
        return self._pl[t]

    def p(self, t: str) -> frozenset[str]:
        pe_t = self._pe[t]
        return frozenset(
            s for s in pe_t
            if not any(s in self._pl[x] for x in pe_t if x != s)
        )

    def n(self, t: str) -> frozenset[Property]:
        return self._n[t]

    def h(self, t: str) -> frozenset[Property]:
        return self._h[t]

    def i(self, t: str) -> frozenset[Property]:
        return self._n[t] | self._h[t]

    def strata(self) -> list[list[str]]:
        """The path-length strata (exposed for the inductive check)."""
        return [list(s) for s in self._strata]


def verify(lattice: "TypeLattice") -> SoundnessReport:
    """Compare every derived term of ``lattice`` against the oracle.

    Returns a :class:`SoundnessReport`; ``report.ok`` means the engine is
    sound and complete on this lattice (Theorems 2.1 and 2.2 hold).
    """
    oracle = Oracle(lattice)
    deriv = lattice.derivation
    report = SoundnessReport()

    def compare(term: str, t: str, derived: frozenset, truth: frozenset) -> None:
        if derived != truth:
            report.discrepancies.append(
                Discrepancy(
                    term, t,
                    missing=frozenset(truth - derived),
                    spurious=frozenset(derived - truth),
                )
            )

    for t in lattice.types():
        compare("P", t, deriv.p[t], oracle.p(t))
        compare("PL", t, deriv.pl[t], oracle.pl(t))
        compare("N", t, deriv.n[t], oracle.n(t))
        compare("H", t, deriv.h[t], oracle.h(t))
        compare("I", t, deriv.i[t], oracle.i(t))
    return report


def assert_sound_and_complete(lattice: "TypeLattice") -> None:
    """Raise ``AssertionError`` with the discrepancy list unless both hold."""
    report = verify(lattice)
    if not report.ok:
        raise AssertionError(str(report))
