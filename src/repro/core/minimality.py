"""Minimality utilities: transitive reduction and lattice comparison.

Section 5 of the paper argues that maintaining *minimal* supertypes and
native properties "can be useful for the efficiency of the system": name
conflicts are detectable by scanning only ``P(t)``, and "a user would only
need to see the minimal subtype relationships in order to understand the
complete functionality of a type".

This module provides the graph-theoretic backing for those claims:
transitive reduction of an arbitrary DAG, minimality verification of a
derived lattice, and a structured diff between two lattices (used by the
order-independence experiments of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = [
    "transitive_closure",
    "transitive_reduction",
    "is_reduced",
    "minimal_edge_count",
    "essential_edge_count",
    "LatticeDiff",
    "diff_lattices",
]

EdgeMap = Mapping[str, frozenset[str]]


def transitive_closure(edges: EdgeMap) -> dict[str, frozenset[str]]:
    """Reachability sets (excluding the node itself) of a DAG.

    ``edges[u]`` is the set of direct successors of ``u``.  Nodes
    referenced but not present as keys are treated as sinks.
    """
    closure: dict[str, frozenset[str]] = {}

    def visit(u: str) -> frozenset[str]:
        if u in closure:
            return closure[u]
        closure[u] = frozenset()  # cycle guard; DAG expected
        reach: set[str] = set()
        for v in edges.get(u, frozenset()):
            reach.add(v)
            reach.update(visit(v))
        closure[u] = frozenset(reach)
        return closure[u]

    for u in edges:
        visit(u)
    return closure


def transitive_reduction(edges: EdgeMap) -> dict[str, frozenset[str]]:
    """The unique minimal edge set with the same reachability (DAG only).

    An edge ``u → v`` is redundant exactly when ``v`` is reachable from
    ``u`` through some *other* direct successor.  This mirrors Axiom 5:
    ``P(t)`` is the transitive reduction of ``Pe(t)`` restricted to the
    edges out of ``t``.
    """
    closure = transitive_closure(edges)
    reduced: dict[str, frozenset[str]] = {}
    for u, direct in edges.items():
        kept = frozenset(
            v for v in direct
            if not any(v in closure.get(w, frozenset())
                       for w in direct if w != v)
        )
        reduced[u] = kept
    return reduced


def is_reduced(edges: EdgeMap) -> bool:
    """Whether no edge of the DAG is implied by the others."""
    return transitive_reduction(edges) == {
        u: frozenset(vs) for u, vs in edges.items()
    }


def essential_edge_count(lattice: "TypeLattice") -> int:
    """Total number of essential supertype declarations (``Σ |Pe(t)|``)."""
    return sum(len(lattice.pe(t)) for t in lattice.types())


def minimal_edge_count(lattice: "TypeLattice") -> int:
    """Total number of immediate supertype edges (``Σ |P(t)|``).

    The Section-5 display claim quantified: this is the number of edges a
    graphical lattice browser must draw, always ≤ the essential count.
    """
    return sum(len(lattice.p(t)) for t in lattice.types())


@dataclass
class LatticeDiff:
    """A structured difference between two derived lattices."""

    only_left: frozenset[str] = frozenset()
    only_right: frozenset[str] = frozenset()
    edge_changes: dict[str, tuple[frozenset[str], frozenset[str]]] = field(
        default_factory=dict
    )
    interface_changes: dict[str, tuple[frozenset, frozenset]] = field(
        default_factory=dict
    )

    @property
    def identical(self) -> bool:
        return (
            not self.only_left
            and not self.only_right
            and not self.edge_changes
            and not self.interface_changes
        )

    def __str__(self) -> str:
        if self.identical:
            return "lattices are identical"
        lines: list[str] = []
        if self.only_left:
            lines.append(f"only in left: {sorted(self.only_left)}")
        if self.only_right:
            lines.append(f"only in right: {sorted(self.only_right)}")
        for t, (l, r) in sorted(self.edge_changes.items()):
            lines.append(f"P({t}): {sorted(l)} vs {sorted(r)}")
        for t, (l, r) in sorted(self.interface_changes.items()):
            lines.append(
                f"I({t}): {sorted(map(str, l))} vs {sorted(map(str, r))}"
            )
        return "\n".join(lines)


def diff_lattices(left: "TypeLattice", right: "TypeLattice") -> LatticeDiff:
    """Compare the derived structure (``P`` and ``I``) of two lattices.

    Used by the Section-5 experiments: after applying the same edge drops
    in different orders, TIGUKAT lattices diff as identical while Orion
    lattices may not.
    """
    lt, rt = left.types(), right.types()
    diff = LatticeDiff(
        only_left=frozenset(lt - rt), only_right=frozenset(rt - lt)
    )
    for t in lt & rt:
        lp, rp = left.p(t), right.p(t)
        if lp != rp:
            diff.edge_changes[t] = (lp, rp)
        li, ri = left.interface(t), right.interface(t)
        if li != ri:
            diff.interface_changes[t] = (li, ri)
    return diff
