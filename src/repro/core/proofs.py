"""Executable proof traces for Theorems 2.1 and 2.2.

The paper sketches both proofs as induction "on maximal path lengths to
root type T_object": assuming ``Pe``/``Ne`` are sound (resp. complete),
each stratum's derived sets are shown sound (resp. complete) given the
strata above it.  :func:`prove` replays that induction *as computation*:
it walks the strata in order and discharges, for every type, the five
per-term obligations against the ground-truth oracle, recording each as
a :class:`Obligation` in a :class:`ProofTrace`.

This is stronger diagnostics than :func:`repro.core.soundness.verify`
(which only reports end-state discrepancies): a failing trace shows the
*first* stratum where the induction breaks, which localizes engine bugs
to the exact derivation step, and a passing trace is a machine-checked
instantiation of the paper's proof on the given lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .soundness import Oracle

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["Obligation", "ProofTrace", "prove"]


@dataclass(frozen=True)
class Obligation:
    """One discharged (or failed) proof obligation."""

    stratum: int
    type_name: str
    term: str         # "P" | "PL" | "N" | "H" | "I"
    sound: bool       # derived ⊆ truth
    complete: bool    # truth ⊆ derived

    @property
    def holds(self) -> bool:
        return self.sound and self.complete

    def __str__(self) -> str:
        status = "ok" if self.holds else (
            ("UNSOUND " if not self.sound else "")
            + ("INCOMPLETE" if not self.complete else "")
        ).strip()
        return f"[stratum {self.stratum}] {self.term}({self.type_name}): {status}"


@dataclass
class ProofTrace:
    """The full induction transcript over one lattice."""

    obligations: list[Obligation] = field(default_factory=list)
    strata_sizes: list[int] = field(default_factory=list)

    @property
    def qed(self) -> bool:
        """Both theorems hold on this lattice."""
        return all(o.holds for o in self.obligations)

    @property
    def first_failure(self) -> Obligation | None:
        for o in self.obligations:
            if not o.holds:
                return o
        return None

    def failures(self) -> list[Obligation]:
        return [o for o in self.obligations if not o.holds]

    def summary(self) -> str:
        n = len(self.obligations)
        if self.qed:
            return (
                f"QED: {n} obligations discharged over "
                f"{len(self.strata_sizes)} strata "
                f"(induction on maximal path length to ⊤)"
            )
        failed = self.failures()
        head = failed[0]
        return (
            f"FAILED: {len(failed)}/{n} obligations; induction breaks at "
            f"{head}"
        )


def prove(lattice: "TypeLattice") -> ProofTrace:
    """Replay the Theorem 2.1/2.2 induction over ``lattice``.

    Base case: stratum 0 (the roots) — ``P = {}``, ``PL = {t}``,
    ``H = {}``, ``N = Ne``, ``I = N``.  Inductive step: stratum ``k``
    assuming strata ``< k`` — each derived set must coincide with the
    oracle's, whose own computation only consults shallower strata.
    """
    oracle = Oracle(lattice)
    deriv = lattice.derivation
    trace = ProofTrace()
    for k, stratum in enumerate(oracle.strata()):
        trace.strata_sizes.append(len(stratum))
        for t in sorted(stratum):
            for term, derived, truth in (
                ("P", deriv.p[t], oracle.p(t)),
                ("PL", deriv.pl[t], oracle.pl(t)),
                ("N", deriv.n[t], oracle.n(t)),
                ("H", deriv.h[t], oracle.h(t)),
                ("I", deriv.i[t], oracle.i(t)),
            ):
                trace.obligations.append(
                    Obligation(
                        stratum=k,
                        type_name=t,
                        term=term,
                        sound=derived <= truth,
                        complete=truth <= derived,
                    )
                )
    return trace
