"""Object identity for the uniform object model.

TIGUKAT objects "are created with a unique, immutable object identity"
(Section 5).  References (names) are separate from identity: two different
references may denote the same object, and renaming never exists at the
identity level.  This module provides the OID allocator and the
reference-to-identity indirection used by both the axiomatic core and the
TIGUKAT substrate.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

__all__ = ["Oid", "OidGenerator", "ReferenceMap"]


@dataclass(frozen=True, order=True)
class Oid:
    """An immutable object identity.

    Ordering and hashing are by the ``(space, serial)`` pair so OIDs are
    usable as dictionary keys and can be deterministically sorted for
    reproducible output.
    """

    space: str
    serial: int

    def __str__(self) -> str:
        return f"{self.space}#{self.serial}"


class OidGenerator:
    """Thread-safe allocator of :class:`Oid` values within a named space."""

    def __init__(self, space: str = "obj") -> None:
        self._space = space
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    @property
    def space(self) -> str:
        return self._space

    def allocate(self) -> Oid:
        """Return a fresh, never-before-issued identity."""
        with self._lock:
            return Oid(self._space, next(self._counter))

    def allocate_many(self, count: int) -> list[Oid]:
        """Allocate ``count`` identities in one lock acquisition."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            return [Oid(self._space, next(self._counter)) for _ in range(count)]


@dataclass
class ReferenceMap:
    """A many-to-one mapping of human references onto identities.

    The paper: "the act of adding s to Pe(t) does not mean 'add the name s'
    ... it means 'add a reference to the object identified by s'.  There may
    be two different references (with different names) that refer to the
    same object."
    """

    _by_name: dict[str, Oid] = field(default_factory=dict)
    _names: dict[Oid, set[str]] = field(default_factory=dict)

    def bind(self, name: str, oid: Oid) -> None:
        """Bind ``name`` to ``oid``; rebinding an existing name is an error."""
        if name in self._by_name:
            raise ValueError(f"reference already bound: {name!r}")
        self._by_name[name] = oid
        self._names.setdefault(oid, set()).add(name)

    def rebind(self, name: str, oid: Oid) -> None:
        """Point an existing (or new) ``name`` at ``oid``."""
        old = self._by_name.get(name)
        if old is not None:
            self._names[old].discard(name)
            if not self._names[old]:
                del self._names[old]
        self._by_name[name] = oid
        self._names.setdefault(oid, set()).add(name)

    def unbind(self, name: str) -> Oid:
        """Remove a reference; the object itself is untouched."""
        oid = self._by_name.pop(name, None)
        if oid is None:
            raise KeyError(name)
        self._names[oid].discard(name)
        if not self._names[oid]:
            del self._names[oid]
        return oid

    def resolve(self, name: str) -> Oid:
        """Return the identity a reference denotes."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unresolved reference: {name!r}") from None

    def names_of(self, oid: Oid) -> frozenset[str]:
        """All references currently denoting ``oid`` (possibly several)."""
        return frozenset(self._names.get(oid, ()))

    def drop_object(self, oid: Oid) -> frozenset[str]:
        """Remove every reference to ``oid``; returns the removed names."""
        names = self.names_of(oid)
        for name in names:
            del self._by_name[name]
        self._names.pop(oid, None)
        return names

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)
