"""Derivation engine: instantiating P, PL, N, H, I from Pe and Ne.

Section 2 of the paper: "All schema evolution operations can be handled
through these two terms [Pe and Ne] ... The axiomatic model takes care of
rearranging the schema to conform to these two inputs."

The five derived terms are mutually recursive (Axioms 5, 6, 7, 8, 9), but
because the Pe-graph is acyclic (Axiom 2) and every derived term of ``t``
depends only on terms of types *above* ``t``, a single topological pass
from the root(s) down instantiates everything.  This is one of the
"simplifications ... to reduce the amount of mutual recursion among [the
axioms]" the paper alludes to.

Two entry points are provided:

* :func:`derive` — full derivation from scratch;
* :func:`derive_incremental` — after a change to ``Pe``/``Ne`` of a known
  set of types, recompute only the affected downset and reuse the previous
  derivation for the rest (one of the "optimizations ... to the way in
  which the axioms generate their results").

The incremental path is a true *delta propagation*: it never walks the
whole lattice.  The affected cone is discovered by BFS over the inverse
``Pe`` graph (callers that maintain an inverse index — see
``TypeLattice._subs`` — pass it in, making discovery O(cone)), the cone
is ordered by a Kahn pass restricted to the cone, and the new topological
order is spliced as ``[surviving unaffected types, in their previous
relative order] + [cone, in local order]`` — valid because no unaffected
type can depend on an affected one (it would be in the cone).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..obs.metrics import REGISTRY
from .applyall import union_apply_all
from .errors import CycleError
from .properties import Property

_FAST_PATH = REGISTRY.counter(
    "repro_delta_fast_path_total",
    "Cone members served by the delta fast path (hit) vs fully "
    "recomputed (recompute) during incremental derivation",
    ("result",),
)
_FAST_PATH_HIT = _FAST_PATH.labels(result="hit")
_FAST_PATH_RECOMPUTE = _FAST_PATH.labels(result="recompute")

__all__ = [
    "Derivation",
    "derive",
    "derive_incremental",
    "topological_order",
    "local_topological_order",
    "affected_downset",
]

# Values may be any set type: the engine reads, never retains, them (the
# lattice passes its raw mutable sets to avoid per-access view rebuilds).
PeMap = Mapping[str, "frozenset[str] | set[str]"]
NeMap = Mapping[str, "frozenset[Property] | set[Property]"]


@dataclass(frozen=True)
class Derivation:
    """The instantiated derived terms of an entire lattice.

    All five per-type maps cover exactly the same key set (the lattice
    ``T``), and every value is a frozen set, so a :class:`Derivation` is an
    immutable snapshot that survives later lattice mutation.
    """

    p: dict[str, frozenset[str]]
    pl: dict[str, frozenset[str]]
    n: dict[str, frozenset[Property]]
    h: dict[str, frozenset[Property]]
    i: dict[str, frozenset[Property]]
    order: tuple[str, ...] = field(default=())
    #: the types actually recomputed by the pass that built this snapshot
    #: (everything, for a full derivation) — the observable cost of the
    #: incremental engine, asserted on by tests and benchmarks.
    recomputed: frozenset[str] = field(default=frozenset(), compare=False)

    def types(self) -> frozenset[str]:
        return frozenset(self.p)

    def subtypes(self, t: str) -> frozenset[str]:
        """Immediate subtypes: the inverse of ``P`` (paper, DT operation:
        "this can be defined as the inverse operation of the supertypes
        property")."""
        return frozenset(s for s, supers in self.p.items() if t in supers)

    def all_subtypes(self, t: str) -> frozenset[str]:
        """Every type whose supertype lattice contains ``t`` (minus ``t``)."""
        return frozenset(
            s for s, lat in self.pl.items() if t in lat and s != t
        )

    def fingerprint(self) -> tuple:
        """A canonical, hashable digest of the derived structure.

        Two derivations with equal fingerprints describe the same lattice
        shape and property placement; used by the comparison framework and
        the order-independence experiments.
        """
        return tuple(
            (
                t,
                tuple(sorted(self.p[t])),
                tuple(sorted(pr.semantics for pr in self.n[t])),
                tuple(sorted(pr.semantics for pr in self.i[t])),
            )
            for t in sorted(self.p)
        )


def topological_order(pe: PeMap) -> tuple[str, ...]:
    """Order the types so every type follows all of its essential supertypes.

    Raises :class:`CycleError` when the Pe-graph has a cycle (Axiom of
    Acyclicity violated), naming one edge on the offending cycle.
    """
    # Kahn's algorithm on edges t -> s for s in Pe(t): we need supertypes
    # first, so a type becomes ready when all of its Pe members are emitted.
    remaining: dict[str, set[str]] = {
        t: {s for s in supers if s in pe} for t, supers in pe.items()
    }
    dependents: dict[str, list[str]] = {t: [] for t in pe}
    for t, supers in remaining.items():
        for s in supers:
            dependents[s].append(t)

    ready = deque(sorted(t for t, supers in remaining.items() if not supers))
    order: list[str] = []
    while ready:
        s = ready.popleft()
        order.append(s)
        for t in dependents[s]:
            deps = remaining[t]
            deps.discard(s)
            if not deps:
                ready.append(t)
    if len(order) != len(pe):
        stuck = sorted(t for t, deps in remaining.items() if deps)
        t = stuck[0]
        s = sorted(remaining[t])[0]
        raise CycleError(t, s)
    return tuple(order)


def _derive_one(
    t: str,
    pe: PeMap,
    ne: NeMap,
    pl: dict[str, frozenset[str]],
    i: dict[str, frozenset[Property]],
) -> tuple[
    frozenset[str],
    frozenset[str],
    frozenset[Property],
    frozenset[Property],
    frozenset[Property],
]:
    """Instantiate the derived terms of a single type.

    ``pl`` and ``i`` must already hold the values for every member of
    ``Pe(t)`` (guaranteed by topological order).  The formulas are literal
    transcriptions of Table 2, using the apply-all operator.
    """
    pe_t = frozenset(s for s in pe[t] if s in pe)

    # Axiom of Supertypes (5):
    #   P(t) = Pe(t) − ⋃ α_x(PL(x) ∩ Pe(t) − {x}, Pe(t))
    dominated = union_apply_all(
        lambda x: (pl[x] & pe_t) - {x}, pe_t
    )
    p_t = pe_t - dominated

    # Axiom of Supertype Lattice (6):
    #   PL(t) = ⋃ α_x(PL(x), P(t)) ∪ {t}
    pl_t = union_apply_all(lambda x: pl[x], p_t) | {t}

    # Axiom of Inheritance (9):
    #   H(t) = ⋃ α_x(I(x), P(t))
    h_t = union_apply_all(lambda x: i[x], p_t)

    # Axiom of Nativeness (8):  N(t) = Ne(t) − H(t)
    n_t = frozenset(ne[t]) - h_t

    # Axiom of Interface (7):  I(t) = N(t) ∪ H(t)
    i_t = n_t | h_t

    return p_t, pl_t, n_t, h_t, i_t


def derive(pe: PeMap, ne: NeMap) -> Derivation:
    """Instantiate every derived term of the lattice from ``Pe`` and ``Ne``.

    The inputs must cover the same key set; dangling supertype references
    (names not in ``T``) are ignored, which lets callers derive mid-way
    through a multi-step operation.
    """
    order = topological_order(pe)
    p: dict[str, frozenset[str]] = {}
    pl: dict[str, frozenset[str]] = {}
    n: dict[str, frozenset[Property]] = {}
    h: dict[str, frozenset[Property]] = {}
    i: dict[str, frozenset[Property]] = {}
    for t in order:
        p[t], pl[t], n[t], h[t], i[t] = _derive_one(t, pe, ne, pl, i)
    return Derivation(
        p=p, pl=pl, n=n, h=h, i=i, order=order, recomputed=frozenset(order)
    )


def affected_downset(
    pe: PeMap,
    dirty: Iterable[str],
    inverse: Mapping[str, Iterable[str]] | None = None,
) -> set[str]:
    """All types whose derived terms may change after ``dirty`` changed.

    A type is affected when it *is* dirty or can reach a dirty type through
    essential-supertype edges (its derivation reads the dirty type's
    ``PL``/``I``).  Computed by BFS over the inverse Pe-graph.

    ``inverse`` is an optional prebuilt inverse index (supertype -> types
    listing it in their ``Pe``).  With it, the BFS only ever touches the
    cone — O(cone edges); without it, the inverse graph is rebuilt from
    ``pe`` first — O(all edges).
    """
    if inverse is None:
        built: dict[str, list[str]] = {t: [] for t in pe}
        for t, supers in pe.items():
            for s in supers:
                if s in built:
                    built[s].append(t)
        inverse = built
    affected: set[str] = set(t for t in dirty if t in pe)
    frontier = deque(affected)
    while frontier:
        s = frontier.popleft()
        for t in inverse.get(s, ()):
            if t not in affected and t in pe:
                affected.add(t)
                frontier.append(t)
    return affected


def local_topological_order(pe: PeMap, affected: set[str]) -> tuple[str, ...]:
    """Topological order of ``affected`` under ``pe`` restricted to it.

    Dependencies outside the cone are already satisfied (their derived
    terms are reused from the previous snapshot), so only intra-cone edges
    constrain the order.  An unsatisfiable cone means the Pe-graph gained a
    cycle — and any new cycle is *entirely* inside the cone, because every
    node on it both reaches and is reached from the touched edge — reported
    as :class:`CycleError` exactly like the full pass would.
    """
    remaining: dict[str, set[str]] = {
        t: {s for s in pe[t] if s in affected} for t in affected
    }
    dependents: dict[str, list[str]] = {t: [] for t in affected}
    for t, supers in remaining.items():
        for s in supers:
            dependents[s].append(t)
    ready = deque(sorted(t for t, supers in remaining.items() if not supers))
    order: list[str] = []
    while ready:
        s = ready.popleft()
        order.append(s)
        for t in dependents[s]:
            deps = remaining[t]
            deps.discard(s)
            if not deps:
                ready.append(t)
    if len(order) != len(affected):
        stuck = sorted(t for t, deps in remaining.items() if deps)
        t = stuck[0]
        raise CycleError(t, sorted(remaining[t])[0])
    return tuple(order)


def derive_incremental(
    previous: Derivation,
    pe: PeMap,
    ne: NeMap,
    dirty: Iterable[str],
    inverse: Mapping[str, Iterable[str]] | None = None,
) -> Derivation:
    """Re-derive only the downset affected by ``dirty``; reuse the rest.

    ``previous`` must be a derivation of the same lattice before the
    change.  Types present in ``previous`` but no longer in ``pe`` are
    dropped; new types are treated as dirty automatically.  The result is
    a fresh snapshot — ``previous`` (and every frozenset it holds) is
    never mutated, so snapshots taken before the change stay valid.

    Cost: O(cone) set work plus O(|T|) pointer copies for the reused maps
    — never a full re-derivation, never a full topological sort.
    """
    dirty_set = {t for t in dirty if t in pe}
    dirty_set.update(t for t in pe if t not in previous.p)
    affected = affected_downset(pe, dirty_set, inverse)
    removed = [t for t in previous.p if t not in pe]
    if not affected and not removed:
        return Derivation(
            p=previous.p, pl=previous.pl, n=previous.n, h=previous.h,
            i=previous.i, order=previous.order, recomputed=frozenset(),
        )

    local_order = local_topological_order(pe, affected)
    p = dict(previous.p)
    pl = dict(previous.pl)
    n = dict(previous.n)
    h = dict(previous.h)
    i = dict(previous.i)
    removed_set = set(removed)
    for t in removed:
        del p[t], pl[t], n[t], h[t], i[t]

    # Types whose PL / I rows differ from ``previous`` after this pass.
    # Supertypes outside the cone are untouched, and intra-cone edges are
    # processed in topological order, so when a type is reached every
    # change among its supertypes is already recorded here.
    pl_changed: set[str] = set()
    i_changed: set[str] = set()
    pass_changed: set[str] = set()
    full_recomputes = 0
    fast_hits = 0
    for t in local_order:
        has_prev = t in previous.p
        full = (
            t in dirty_set
            or not has_prev
            or bool(removed_set) and not removed_set.isdisjoint(pe[t])
        )
        touched: list[str] = []
        if not full:
            pe_t_raw = pe[t]
            touched = [x for x in pass_changed if x in pe_t_raw]
            full = any(x in pl_changed for x in touched)
        if full:
            full_recomputes += 1
            p[t], pl[t], n[t], h[t], i[t] = _derive_one(t, pe, ne, pl, i)
            if not has_prev or pl[t] != previous.pl[t]:
                pl_changed.add(t)
                pass_changed.add(t)
            if not has_prev or i[t] != previous.i[t]:
                i_changed.add(t)
                pass_changed.add(t)
            continue
        # Delta fast path.  ``Pe(t)``/``Ne(t)`` are unchanged (t is not
        # dirty) and every changed supertype kept its PL row, so the
        # domination structure is intact: P(t) and PL(t) carry over
        # (Axioms 5, 6).  Only the inherited behaviour H(t) = ⋃ I(x)
        # over P(t) needs reconciling (Axioms 9, 8, 7) — and only the
        # contributions of the supertypes that changed this pass.  This
        # keeps high-fan-in sinks (the base type lists every type in its
        # Pe) out of the O(|Pe|) recomputation on behavioural changes.
        fast_hits += 1
        p_t = previous.p[t]
        contributors = [x for x in touched if x in p_t]
        if not contributors:
            continue  # rows identical to previous; nothing propagates
        added: set = set()
        lost: set = set()
        for x in contributors:
            new_i, old_i = i[x], previous.i[x]
            added.update(new_i - old_i)
            lost.update(old_i - new_i)
        lost -= added
        if lost:
            # A property one contributor dropped may still be inherited
            # through another supertype — re-verify before evicting.
            lost = {q for q in lost if not any(q in i[y] for y in p_t)}
        h_t = frozenset((previous.h[t] | added) - lost)
        if h_t == previous.h[t]:
            continue
        h[t] = h_t
        n[t] = frozenset(ne[t]) - h_t
        i[t] = n[t] | h_t
        if i[t] != previous.i[t]:
            i_changed.add(t)
            pass_changed.add(t)

    if _FAST_PATH.enabled:
        # Inlined Counter.inc bodies: this flush runs once per incremental
        # pass, on the engine's hottest path.
        if fast_hits:
            _FAST_PATH_HIT._value += fast_hits
        if full_recomputes:
            _FAST_PATH_RECOMPUTE._value += full_recomputes

    # Splice the order: surviving unaffected types keep their previous
    # relative order (their edges did not change), then the cone in local
    # order.  No unaffected type depends on an affected one, so the result
    # is a valid topological order of the new graph.
    order = (
        tuple(t for t in previous.order if t in pe and t not in affected)
        + local_order
    )
    return Derivation(
        p=p, pl=pl, n=n, h=h, i=i, order=order, recomputed=frozenset(local_order)
    )
