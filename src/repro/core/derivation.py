"""Derivation engine: instantiating P, PL, N, H, I from Pe and Ne.

Section 2 of the paper: "All schema evolution operations can be handled
through these two terms [Pe and Ne] ... The axiomatic model takes care of
rearranging the schema to conform to these two inputs."

The five derived terms are mutually recursive (Axioms 5, 6, 7, 8, 9), but
because the Pe-graph is acyclic (Axiom 2) and every derived term of ``t``
depends only on terms of types *above* ``t``, a single topological pass
from the root(s) down instantiates everything.  This is one of the
"simplifications ... to reduce the amount of mutual recursion among [the
axioms]" the paper alludes to.

Two entry points are provided:

* :func:`derive` — full derivation from scratch;
* :func:`derive_incremental` — after a change to ``Pe``/``Ne`` of a known
  set of types, recompute only the affected downset and reuse the previous
  derivation for the rest (one of the "optimizations ... to the way in
  which the axioms generate their results").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .applyall import union_apply_all
from .errors import CycleError
from .properties import Property

__all__ = ["Derivation", "derive", "derive_incremental", "topological_order"]

PeMap = Mapping[str, frozenset[str]]
NeMap = Mapping[str, frozenset[Property]]


@dataclass(frozen=True)
class Derivation:
    """The instantiated derived terms of an entire lattice.

    All five per-type maps cover exactly the same key set (the lattice
    ``T``), and every value is a frozen set, so a :class:`Derivation` is an
    immutable snapshot that survives later lattice mutation.
    """

    p: dict[str, frozenset[str]]
    pl: dict[str, frozenset[str]]
    n: dict[str, frozenset[Property]]
    h: dict[str, frozenset[Property]]
    i: dict[str, frozenset[Property]]
    order: tuple[str, ...] = field(default=())

    def types(self) -> frozenset[str]:
        return frozenset(self.p)

    def subtypes(self, t: str) -> frozenset[str]:
        """Immediate subtypes: the inverse of ``P`` (paper, DT operation:
        "this can be defined as the inverse operation of the supertypes
        property")."""
        return frozenset(s for s, supers in self.p.items() if t in supers)

    def all_subtypes(self, t: str) -> frozenset[str]:
        """Every type whose supertype lattice contains ``t`` (minus ``t``)."""
        return frozenset(
            s for s, lat in self.pl.items() if t in lat and s != t
        )

    def fingerprint(self) -> tuple:
        """A canonical, hashable digest of the derived structure.

        Two derivations with equal fingerprints describe the same lattice
        shape and property placement; used by the comparison framework and
        the order-independence experiments.
        """
        return tuple(
            (
                t,
                tuple(sorted(self.p[t])),
                tuple(sorted(pr.semantics for pr in self.n[t])),
                tuple(sorted(pr.semantics for pr in self.i[t])),
            )
            for t in sorted(self.p)
        )


def topological_order(pe: PeMap) -> tuple[str, ...]:
    """Order the types so every type follows all of its essential supertypes.

    Raises :class:`CycleError` when the Pe-graph has a cycle (Axiom of
    Acyclicity violated), naming one edge on the offending cycle.
    """
    # Kahn's algorithm on edges t -> s for s in Pe(t): we need supertypes
    # first, so a type becomes ready when all of its Pe members are emitted.
    remaining: dict[str, set[str]] = {
        t: {s for s in supers if s in pe} for t, supers in pe.items()
    }
    dependents: dict[str, list[str]] = {t: [] for t in pe}
    for t, supers in remaining.items():
        for s in supers:
            dependents[s].append(t)

    ready = deque(sorted(t for t, supers in remaining.items() if not supers))
    order: list[str] = []
    while ready:
        s = ready.popleft()
        order.append(s)
        for t in dependents[s]:
            deps = remaining[t]
            deps.discard(s)
            if not deps:
                ready.append(t)
    if len(order) != len(pe):
        stuck = sorted(t for t, deps in remaining.items() if deps)
        t = stuck[0]
        s = sorted(remaining[t])[0]
        raise CycleError(t, s)
    return tuple(order)


def _derive_one(
    t: str,
    pe: PeMap,
    ne: NeMap,
    pl: dict[str, frozenset[str]],
    i: dict[str, frozenset[Property]],
) -> tuple[
    frozenset[str],
    frozenset[str],
    frozenset[Property],
    frozenset[Property],
    frozenset[Property],
]:
    """Instantiate the derived terms of a single type.

    ``pl`` and ``i`` must already hold the values for every member of
    ``Pe(t)`` (guaranteed by topological order).  The formulas are literal
    transcriptions of Table 2, using the apply-all operator.
    """
    pe_t = frozenset(s for s in pe[t] if s in pe)

    # Axiom of Supertypes (5):
    #   P(t) = Pe(t) − ⋃ α_x(PL(x) ∩ Pe(t) − {x}, Pe(t))
    dominated = union_apply_all(
        lambda x: (pl[x] & pe_t) - {x}, pe_t
    )
    p_t = pe_t - dominated

    # Axiom of Supertype Lattice (6):
    #   PL(t) = ⋃ α_x(PL(x), P(t)) ∪ {t}
    pl_t = union_apply_all(lambda x: pl[x], p_t) | {t}

    # Axiom of Inheritance (9):
    #   H(t) = ⋃ α_x(I(x), P(t))
    h_t = union_apply_all(lambda x: i[x], p_t)

    # Axiom of Nativeness (8):  N(t) = Ne(t) − H(t)
    n_t = frozenset(ne[t]) - h_t

    # Axiom of Interface (7):  I(t) = N(t) ∪ H(t)
    i_t = n_t | h_t

    return p_t, pl_t, n_t, h_t, i_t


def derive(pe: PeMap, ne: NeMap) -> Derivation:
    """Instantiate every derived term of the lattice from ``Pe`` and ``Ne``.

    The inputs must cover the same key set; dangling supertype references
    (names not in ``T``) are ignored, which lets callers derive mid-way
    through a multi-step operation.
    """
    order = topological_order(pe)
    p: dict[str, frozenset[str]] = {}
    pl: dict[str, frozenset[str]] = {}
    n: dict[str, frozenset[Property]] = {}
    h: dict[str, frozenset[Property]] = {}
    i: dict[str, frozenset[Property]] = {}
    for t in order:
        p[t], pl[t], n[t], h[t], i[t] = _derive_one(t, pe, ne, pl, i)
    return Derivation(p=p, pl=pl, n=n, h=h, i=i, order=order)


def affected_downset(pe: PeMap, dirty: Iterable[str]) -> set[str]:
    """All types whose derived terms may change after ``dirty`` changed.

    A type is affected when it *is* dirty or can reach a dirty type through
    essential-supertype edges (its derivation reads the dirty type's
    ``PL``/``I``).  Computed by BFS over the inverse Pe-graph.
    """
    inverse: dict[str, list[str]] = {t: [] for t in pe}
    for t, supers in pe.items():
        for s in supers:
            if s in inverse:
                inverse[s].append(t)
    affected: set[str] = set()
    frontier = deque(t for t in dirty if t in pe)
    affected.update(frontier)
    while frontier:
        s = frontier.popleft()
        for t in inverse[s]:
            if t not in affected:
                affected.add(t)
                frontier.append(t)
    return affected


def derive_incremental(
    previous: Derivation, pe: PeMap, ne: NeMap, dirty: Iterable[str]
) -> Derivation:
    """Re-derive only the downset affected by ``dirty``; reuse the rest.

    ``previous`` must be a derivation of the same lattice before the
    change.  Types present in ``previous`` but no longer in ``pe`` are
    dropped; new types are treated as dirty automatically.
    """
    dirty_set = set(dirty)
    dirty_set.update(t for t in pe if t not in previous.p)
    affected = affected_downset(pe, dirty_set)

    order = topological_order(pe)
    p: dict[str, frozenset[str]] = {}
    pl: dict[str, frozenset[str]] = {}
    n: dict[str, frozenset[Property]] = {}
    h: dict[str, frozenset[Property]] = {}
    i: dict[str, frozenset[Property]] = {}
    for t in order:
        if t not in affected:
            p[t] = previous.p[t]
            pl[t] = previous.pl[t]
            n[t] = previous.n[t]
            h[t] = previous.h[t]
            i[t] = previous.i[t]
        else:
            p[t], pl[t], n[t], h[t], i[t] = _derive_one(t, pe, ne, pl, i)
    return Derivation(p=p, pl=pl, n=n, h=h, i=i, order=order)
