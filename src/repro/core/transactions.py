"""Atomic schema-change transactions.

Dynamic schema evolution happens "while the system is in operation"
(Section 1), and realistic changes are *compound*: the engineering-design
motivation routinely needs several MT-* operations that only make sense
together (drop an aspect, adopt its essential behaviors, re-point
subtypes).  A :class:`SchemaTransaction` groups operations so that either
all apply or none do:

* operations inside the transaction see the effects of earlier ones;
* any rejection (or an axiom violation, when ``verify_on_commit`` is set)
  rolls the lattice back to the pre-transaction state via the recorded
  inverses;
* a committed transaction lands in the journal as its individual
  operations (replay/undo keep working), bracketed for auditability.

Use it as a context manager::

    with SchemaTransaction(journal) as txn:
        txn.apply(DropEssentialSupertype("T_ta", "T_employee"))
        txn.apply(AddEssentialSupertype("T_ta", "T_person"))
    # atomically applied, or fully rolled back on error
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from typing import ClassVar, Iterable

from ..obs.metrics import REGISTRY, SIZE_BUCKETS
from .axioms import check_all
from .errors import AxiomViolationError, SchemaError, register_error
from .history import EvolutionJournal
from .operations import OperationResult, SchemaOperation

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["TransactionError", "SchemaTransaction"]

logger = logging.getLogger(__name__)

_TXN_COMMITS = REGISTRY.counter(
    "repro_txn_commits_total", "Committed schema transactions"
)
_TXN_ROLLBACKS = REGISTRY.counter(
    "repro_txn_rollbacks_total", "Rolled-back schema transactions"
)
_TXN_OPS = REGISTRY.histogram(
    "repro_txn_operations",
    "Operations per committed transaction (the coalescing batch size)",
    buckets=SIZE_BUCKETS,
)
_REJECTIONS = REGISTRY.counter(
    "repro_rejections_total",
    "Operations the engine rejected, by operation and error code",
    ("op", "code"),
)


@register_error
class TransactionError(SchemaError):
    """The transaction is not in a state that allows the request."""

    code: ClassVar[str] = "transaction-state"


class SchemaTransaction:
    """An atomic group of schema-evolution operations over a journal."""

    def __init__(
        self,
        journal: EvolutionJournal,
        verify_on_commit: bool = True,
    ) -> None:
        self._journal = journal
        self._verify = verify_on_commit
        self._applied: list[OperationResult] = []
        self._state: str = "pending"  # pending | active | committed | rolled-back
        self._before_fingerprint: tuple | None = None
        self._journal_len_before = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def lattice(self) -> "TypeLattice":
        return self._journal.lattice

    def begin(self) -> "SchemaTransaction":
        if self._state != "pending":
            raise TransactionError(f"cannot begin a {self._state} transaction")
        self._before_fingerprint = self.lattice.state_fingerprint()
        self._journal_len_before = len(self._journal)
        self._state = "active"
        return self

    def apply(self, operation: SchemaOperation) -> OperationResult:
        """Apply one operation inside the transaction.

        A rejected operation raises and leaves the transaction *active*
        with its earlier effects intact — the caller decides whether to
        continue, commit, or roll back.
        """
        if self._state != "active":
            raise TransactionError(
                f"cannot apply to a {self._state} transaction"
            )
        result = self._journal.apply(operation)
        self._applied.append(result)
        return result

    def apply_all(self, operations: Iterable[SchemaOperation]) -> list[OperationResult]:
        """Apply a sequence of operations inside the transaction.

        This is the batched-replay workhorse: the operations mutate only
        the designer state (``Pe``/``Ne``), their invalidations coalesce
        in the lattice's dirty set, and the first derived-term access
        after the batch (commit-time verification, or the caller's next
        query) pays a single delta-propagation pass instead of one per
        operation.
        """
        return [self.apply(op) for op in operations]

    def commit(self) -> None:
        """Make the group permanent (optionally verifying the axioms)."""
        if self._state != "active":
            raise TransactionError(f"cannot commit a {self._state} transaction")
        if self._verify:
            violations = check_all(self.lattice)
            if violations:
                self.rollback()
                _REJECTIONS.labels(
                    op="commit", code=AxiomViolationError.code
                ).inc()
                logger.info(
                    "commit rejected: %d axiom violation(s)", len(violations)
                )
                raise AxiomViolationError(violations)
        self._state = "committed"
        _TXN_COMMITS.inc()
        _TXN_OPS.observe(len(self._applied))
        logger.debug(
            "committed transaction of %d operation(s)", len(self._applied)
        )

    def rollback(self) -> None:
        """Undo everything applied inside this transaction."""
        if self._state != "active":
            raise TransactionError(
                f"cannot roll back a {self._state} transaction"
            )
        while len(self._journal) > self._journal_len_before:
            self._journal.undo()
        self._state = "rolled-back"
        _TXN_ROLLBACKS.inc()
        logger.info(
            "rolled back transaction of %d operation(s)", len(self._applied)
        )
        after = self.lattice.state_fingerprint()
        if after != self._before_fingerprint:  # pragma: no cover - guard
            raise TransactionError(
                "rollback failed to restore the pre-transaction state"
            )

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "SchemaTransaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state != "active":
            return False  # already resolved explicitly
        if exc_type is None:
            self.commit()
            return False
        self.rollback()
        return False  # propagate the original error

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._applied)

    def operations(self) -> list[SchemaOperation]:
        return [r.operation for r in self._applied]
