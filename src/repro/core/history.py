"""Evolution history: a journal of applied operations with undo and replay.

Dynamic schema evolution happens "while the system is in operation"
(Section 1), so a production objectbase needs an auditable record of every
schema change.  :class:`EvolutionJournal` wraps a
:class:`~repro.core.lattice.TypeLattice` and

* records every applied operation together with its inverse,
* supports ``undo``/``redo`` through the recorded inverses,
* can ``replay`` the whole history onto a fresh lattice (the recovery path
  used by :mod:`repro.storage.journal`), and
* optionally verifies all nine axioms after every step
  (``verify_each_step=True``), turning the journal into a self-checking
  evolution executor.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable

from ..obs.metrics import REGISTRY
from .axioms import assert_all
from .config import LatticePolicy
from .errors import EvolutionError, JournalError, error_code
from .lattice import TypeLattice
from .operations import (
    OperationResult,
    SchemaOperation,
    operation_from_dict,
)

__all__ = ["JournalEntry", "EvolutionJournal"]

logger = logging.getLogger(__name__)

_OPS_APPLIED = REGISTRY.counter(
    "repro_ops_applied_total",
    "Schema-evolution operations applied, by paper operation code",
    ("op",),
)
_OP_SECONDS = REGISTRY.histogram(
    "repro_op_latency_seconds",
    "Latency of one applied operation (designer-term mutation only; "
    "derivation is lazy and accounted separately)",
    ("op",),
)
_REJECTIONS = REGISTRY.counter(
    "repro_rejections_total",
    "Operations the engine rejected, by operation and error code",
    ("op", "code"),
)
_UNDOS = REGISTRY.counter(
    "repro_undos_total", "Operations reverted through recorded inverses"
)


@dataclass
class JournalEntry:
    """One applied operation, its outcome, and its inverse."""

    seq: int
    operation: SchemaOperation
    changed: bool
    detail: str
    inverse: list[SchemaOperation] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "operation": self.operation.to_dict(),
            "changed": self.changed,
            "detail": self.detail,
            "inverse": [op.to_dict() for op in self.inverse],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JournalEntry":
        return cls(
            seq=d["seq"],
            operation=operation_from_dict(d["operation"]),
            changed=d["changed"],
            detail=d.get("detail", ""),
            inverse=[operation_from_dict(o) for o in d.get("inverse", ())],
        )


class EvolutionJournal:
    """An executing journal over a lattice.

    Parameters
    ----------
    lattice:
        The lattice to evolve; created from ``policy`` when omitted.
    verify_each_step:
        When true, every applied operation is followed by a full check of
        the nine axioms; a violation raises immediately (and indicates an
        engine bug, since operations are supposed to preserve the axioms).
    listeners:
        Callables invoked with each new :class:`JournalEntry` — the hook
        used by the change-propagation layer.
    """

    def __init__(
        self,
        lattice: TypeLattice | None = None,
        policy: LatticePolicy | None = None,
        verify_each_step: bool = False,
    ) -> None:
        self._lattice = lattice if lattice is not None else TypeLattice(policy)
        self._entries: list[JournalEntry] = []
        self._redo_stack: list[SchemaOperation] = []
        self._verify = verify_each_step
        self._listeners: list[Callable[[JournalEntry], None]] = []

    @property
    def lattice(self) -> TypeLattice:
        return self._lattice

    @property
    def entries(self) -> tuple[JournalEntry, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def subscribe(self, listener: Callable[[JournalEntry], None]) -> None:
        """Register a listener called after every applied operation."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------

    def apply(self, operation: SchemaOperation) -> OperationResult:
        """Apply one operation, record it, and clear the redo stack."""
        started = perf_counter()
        try:
            result = operation.apply(self._lattice)
            if self._verify:
                assert_all(self._lattice)
        except EvolutionError as exc:
            _REJECTIONS.labels(op=operation.code, code=error_code(exc)).inc()
            logger.info(
                "rejected %s [%s]: %s",
                operation.describe(), error_code(exc), exc,
            )
            raise
        _OPS_APPLIED.labels(op=operation.code).inc()
        _OP_SECONDS.labels(op=operation.code).observe(
            perf_counter() - started
        )
        logger.debug("applied %s", operation.describe())
        entry = JournalEntry(
            seq=len(self._entries),
            operation=operation,
            changed=result.changed,
            detail=result.detail,
            inverse=list(result.inverse),
        )
        self._entries.append(entry)
        self._redo_stack.clear()
        for listener in self._listeners:
            listener(entry)
        return result

    def apply_all(
        self, operations: Iterable[SchemaOperation]
    ) -> list[OperationResult]:
        return [self.apply(op) for op in operations]

    def undo(self) -> JournalEntry:
        """Revert the most recent operation via its recorded inverse.

        The undone entry is removed from the history and pushed on the
        redo stack.  Undoing past the beginning raises
        :class:`JournalError`.
        """
        if not self._entries:
            raise JournalError("nothing to undo")
        entry = self._entries.pop()
        for op in entry.inverse:
            op.apply(self._lattice)
        if self._verify:
            assert_all(self._lattice)
        self._redo_stack.append(entry.operation)
        _UNDOS.inc()
        logger.debug("undid %s", entry.operation.describe())
        return entry

    def redo(self) -> OperationResult:
        """Re-apply the most recently undone operation."""
        if not self._redo_stack:
            raise JournalError("nothing to redo")
        operation = self._redo_stack.pop()
        result = operation.apply(self._lattice)
        if self._verify:
            assert_all(self._lattice)
        self._entries.append(
            JournalEntry(
                seq=len(self._entries),
                operation=operation,
                changed=result.changed,
                detail=result.detail,
                inverse=list(result.inverse),
            )
        )
        return result

    # ------------------------------------------------------------------

    def replay(
        self, policy: LatticePolicy | None = None
    ) -> TypeLattice:
        """Re-execute the recorded history onto a fresh lattice.

        The resulting lattice must match the live one state-for-state;
        a mismatch raises :class:`JournalError` (a corrupt journal).
        """
        target_policy = policy if policy is not None else self._lattice.policy
        fresh = TypeLattice(target_policy)
        for entry in self._entries:
            entry.operation.apply(fresh)
        if fresh.state_fingerprint() != self._lattice.state_fingerprint():
            raise JournalError(
                "replayed lattice does not match the live lattice"
            )
        return fresh

    def to_dicts(self) -> list[dict]:
        """The serializable journal (for :mod:`repro.storage.journal`)."""
        return [entry.to_dict() for entry in self._entries]

    @classmethod
    def from_dicts(
        cls,
        records: Iterable[dict],
        policy: LatticePolicy | None = None,
        verify_each_step: bool = False,
    ) -> "EvolutionJournal":
        """Reconstruct a journal (and its lattice) by replaying records."""
        journal = cls(policy=policy, verify_each_step=verify_each_step)
        for record in records:
            entry = JournalEntry.from_dict(record)
            journal.apply(entry.operation)
        return journal
