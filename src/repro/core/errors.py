"""Exception hierarchy for the axiomatic schema-evolution model.

Every error raised by :mod:`repro.core` derives from
:class:`EvolutionError`, so callers can catch the whole family with a
single ``except`` clause while still being able to discriminate the
individual failure modes the paper calls out (cycle introduction,
dropping the root link, unknown types, ...).

Machine-readable codes
----------------------
Every class carries a stable kebab-case ``code`` (mirroring the
:mod:`repro.staticcheck` rule-id convention: the static analyzer's
``doomed-operation`` findings cite the same codes the live engine would
raise).  ``ERROR_CODES`` maps code -> class, and :func:`error_code`
extracts the code of any caught exception.  The CLI maps codes to exit
status through :func:`exit_code_for`:

=============  =============================================
exit status    meaning
=============  =============================================
0              success
1              the engine rejected the request (any
               :class:`EvolutionError`: cycle, root-violation,
               frozen-type, corrupt journal, malformed plan,
               ...) or a check/lint gate failed
2              the invocation itself is unusable (unknown
               rule id, bad arguments) — errors *about the
               request*, not about the schema
=============  =============================================

:class:`SchemaError` remains as the historic family name (it *is*
:class:`EvolutionError`'s immediate subclass and the ancestor of every
concrete error), so existing ``except SchemaError`` call sites keep
working unchanged.
"""

from __future__ import annotations

from typing import ClassVar

__all__ = [
    "EvolutionError",
    "SchemaError",
    "UnknownTypeError",
    "DuplicateTypeError",
    "CycleError",
    "RootViolationError",
    "PointednessViolationError",
    "AxiomViolationError",
    "OperationRejected",
    "UnknownPropertyError",
    "FrozenTypeError",
    "JournalError",
    "CorruptRecordError",
    "PlanError",
    "PlanFormatError",
    "DDLError",
    "DDLValidationError",
    "LockTimeoutError",
    "DegradedModeError",
    "LintRejectedError",
    "PlanInterferenceError",
    "ReplicationError",
    "ReplicaDivergedError",
    "StaleEpochError",
    "LeaseError",
    "LeaseHeldError",
    "LeaseLostError",
    "ReadOnlyReplicaError",
    "ERROR_CODES",
    "error_code",
    "exit_code_for",
]

#: CLI exit statuses (see module docstring).
EXIT_OK = 0
EXIT_REJECTED = 1
EXIT_UNUSABLE = 2


class EvolutionError(Exception):
    """Base class for every schema-evolution error.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (kebab-case, shared naming
        convention with the staticcheck rule ids).
    exit_code:
        The CLI exit status this error maps to.
    """

    code: ClassVar[str] = "evolution-error"
    exit_code: ClassVar[int] = EXIT_REJECTED

    def as_dict(self) -> dict:
        """Structured form for JSON surfaces (CLI, SARIF, logs)."""
        return {"code": self.code, "message": str(self)}


class SchemaError(EvolutionError):
    """Historic family name: every concrete error derives from it."""

    code: ClassVar[str] = "schema-error"


class UnknownTypeError(SchemaError, KeyError):
    """A referenced type is not a member of the lattice ``T``."""

    code: ClassVar[str] = "unknown-type"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError would quote the repr otherwise
        return f"unknown type: {self.name!r}"


class DuplicateTypeError(SchemaError):
    """A type with the same identity already exists in the lattice."""

    code: ClassVar[str] = "duplicate-type"

    def __init__(self, name: str) -> None:
        super().__init__(f"type already exists: {name!r}")
        self.name = name


class CycleError(SchemaError):
    """Axiom of Acyclicity: the requested change would introduce a cycle.

    The paper (Section 3.3, MT-ASR): "Due to the axiom of acyclicity, the
    addition of a type as a supertype of another type is rejected if it
    introduces a cycle into the lattice."
    """

    code: ClassVar[str] = "cycle"

    def __init__(self, subtype: str, supertype: str) -> None:
        super().__init__(
            f"adding {supertype!r} as a supertype of {subtype!r} "
            f"would create a cycle"
        )
        self.subtype = subtype
        self.supertype = supertype


class RootViolationError(SchemaError):
    """Axiom of Rootedness: the change would disconnect a type from the root.

    TIGUKAT obeys rootedness, so "a subtype relationship to T_object cannot
    be dropped" and the root type itself cannot be dropped.
    """

    code: ClassVar[str] = "root-violation"


class PointednessViolationError(SchemaError):
    """Axiom of Pointedness: the change would break the base type ``⊥``."""

    code: ClassVar[str] = "pointedness-violation"


class AxiomViolationError(SchemaError):
    """An axiom check failed; carries the structured violation list."""

    code: ClassVar[str] = "axiom-violation"

    def __init__(self, violations: list) -> None:
        lines = "; ".join(str(v) for v in violations)
        super().__init__(f"axiom violations: {lines}")
        self.violations = list(violations)


class OperationRejected(SchemaError):
    """A schema-evolution operation was rejected by its precondition.

    Mirrors the paper's REJECT outcomes (e.g. Orion OP4 on the last
    superclass being OBJECT, or TIGUKAT DF on a function still implementing
    a behavior of a type with an associated class).
    """

    code: ClassVar[str] = "operation-rejected"

    def __init__(self, operation: str, reason: str) -> None:
        super().__init__(f"{operation} rejected: {reason}")
        self.operation = operation
        self.reason = reason


class UnknownPropertyError(SchemaError, KeyError):
    """A referenced property is not known to the schema."""

    code: ClassVar[str] = "unknown-property"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown property: {self.name!r}"


class FrozenTypeError(SchemaError):
    """A primitive (frozen) type was the target of a destructive change.

    TIGUKAT restricts the primitive types of the model (Figure 2) from
    being dropped.
    """

    code: ClassVar[str] = "frozen-type"

    def __init__(self, name: str) -> None:
        super().__init__(f"primitive type cannot be modified or dropped: {name!r}")
        self.name = name


class JournalError(SchemaError):
    """The operation journal is corrupt or a replay failed."""

    code: ClassVar[str] = "journal-corrupt"


class CorruptRecordError(JournalError):
    """A WAL record is structurally damaged (bad frame, length, or CRC).

    Raised by strict-mode recovery when damage cannot be explained by a
    torn trailing write — a bit flip, an interior truncation, a record
    that passes its checksum but decodes to no known operation.  Salvage
    mode (``repro recover --mode salvage``) turns the same damage into a
    quarantined ``.corrupt`` sidecar instead.
    """

    code: ClassVar[str] = "wal-corrupt-record"


class PlanError(SchemaError):
    """An evolution plan file is unreadable or malformed."""

    code: ClassVar[str] = "plan-malformed"


class PlanFormatError(PlanError):
    """The file is not an evolution plan at all.

    Raised by :func:`repro.staticcheck.load_plan` when the on-disk shape
    is not one of the accepted plan formats (JSON object/array, JSONL,
    framed WAL) — a schema DDL file, prose, or binary handed to
    ``repro lint --plan`` by mistake.  Distinct from the parent
    ``plan-malformed``, which covers files that *are* plans but carry a
    broken operation.
    """

    code: ClassVar[str] = "plan-bad-format"


class DDLError(SchemaError):
    """A schema DDL text could not be tokenized or parsed.

    Carries the 1-based ``line``/``column`` of the offending source when
    known; the HTTP service maps this (and its subclass) to **400** —
    the request text itself is unusable, unlike a well-formed schema the
    engine rejects.
    """

    code: ClassVar[str] = "ddl-syntax"

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
    ) -> None:
        where = ""
        if line is not None:
            where = f"line {line}"
            if column is not None:
                where += f", column {column}"
            where = f" ({where})"
        super().__init__(f"{message}{where}")
        self.line = line
        self.column = column


class DDLValidationError(DDLError):
    """A parsed schema declaration is semantically unusable.

    The text tokenized and parsed, but the declared schema cannot be
    diffed or applied: duplicate or policy-managed type declarations,
    references to undeclared types, a declared supertype cycle, or
    conflicting property payloads under one semantics key.
    """

    code: ClassVar[str] = "ddl-invalid"


class LockTimeoutError(SchemaError):
    """The single-writer lock could not be acquired within the timeout.

    Raised by the concurrency layer (:mod:`repro.concurrent`) when a
    writer waits longer than its configured bound.  The request was never
    admitted — no partial effect exists — so the caller can safely retry;
    the HTTP service maps this to ``503`` with a ``Retry-After`` hint.
    """

    code: ClassVar[str] = "lock-timeout"

    def __init__(self, timeout: float, waiters: int = 0) -> None:
        super().__init__(
            f"write lock not acquired within {timeout:.3f}s "
            f"({waiters} writer(s) queued ahead)"
        )
        self.timeout = timeout
        self.waiters = waiters


class DegradedModeError(SchemaError):
    """The store is read-only because durable appends stopped working.

    After a WAL append exhausts its retry budget the store latches into
    degraded mode rather than risk a corrupt or silently truncated log:
    reads keep serving from the last consistent state, every write is
    rejected with this error, and the ``repro_degraded_mode`` gauge is
    raised.  ``repro recover`` (or the service's recover endpoint) heals
    the log and clears the latch.
    """

    code: ClassVar[str] = "degraded-mode"

    def __init__(self, reason: str) -> None:
        super().__init__(
            f"store is in read-only degraded mode: {reason} "
            f"(run `repro recover` to restore service)"
        )
        self.reason = reason


class LintRejectedError(SchemaError):
    """A write was vetoed by the service's admission-time lint gate.

    The offending plan is well-formed and might even execute, but the
    static analyzer found findings at or above the service's configured
    threshold (``repro serve --lint warn|error``).  Carries the
    diagnostics (as plain dictionaries) so the HTTP layer can return
    them in the 409 response body.
    """

    code: ClassVar[str] = "lint-rejected"

    def __init__(self, message: str, diagnostics: list | tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)

    def as_dict(self) -> dict:
        doc = super().as_dict()
        doc["diagnostics"] = self.diagnostics
        return doc


class PlanInterferenceError(LintRejectedError):
    """A write conflicts with a plan committed since the client's read.

    Raised by the service's interference check when a batch declares the
    schema generation it was planned against (``expect_generation``) and
    the effect summaries of operations committed since then overlap with
    the incoming batch — the optimistic-concurrency counterpart of the
    static ``cross-plan-interference`` rule.
    """

    code: ClassVar[str] = "plan-interference"


class ReplicationError(SchemaError):
    """A replication stream violated the wire protocol or its checksums.

    Covers truncated envelopes, checksum mismatches, out-of-order record
    batches, and messages that do not decode — damage introduced by the
    *channel*, not the WAL.  The replica's reaction is always the same:
    quarantine the stream (drop the connection), re-handshake from its
    last durable position, and keep serving the snapshot it already has.
    """

    code: ClassVar[str] = "replication-protocol"


class ReplicaDivergedError(ReplicationError):
    """A shipped record does not apply cleanly to the replica's state.

    Every shipped record is a committed prefix of the primary's history,
    so a record that the replica's engine rejects means the replica's
    local state is not the prefix it claims to be (bit rot, operator
    edit, mixed-up data directories).  The replica must discard its WAL
    tail and resynchronize from a full checkpoint ship rather than apply
    anything further.
    """

    code: ClassVar[str] = "replica-diverged"


class StaleEpochError(ReplicationError):
    """A primary presented a lease epoch older than one already seen.

    Replicas remember the highest lease epoch they have ever synced from;
    a handshake or heartbeat carrying a *lower* epoch identifies a
    paused-and-resumed ex-primary that does not yet know it lost its
    lease.  The connection is refused so the fenced node cannot roll the
    replica back.
    """

    code: ClassVar[str] = "stale-epoch"

    def __init__(self, seen: int, offered: int) -> None:
        super().__init__(
            f"refusing primary with lease epoch {offered}; "
            f"already replicated from epoch {seen}"
        )
        self.seen = seen
        self.offered = offered


class LeaseError(SchemaError):
    """Base class for write-lease protocol failures."""

    code: ClassVar[str] = "lease-error"


class LeaseHeldError(LeaseError):
    """The primary lease is currently held by another live owner."""

    code: ClassVar[str] = "lease-held"

    def __init__(self, owner: str, expires_in: float) -> None:
        super().__init__(
            f"lease is held by {owner!r} for another {expires_in:.3f}s"
        )
        self.owner = owner
        self.expires_in = expires_in


class LeaseLostError(LeaseError):
    """This node's write lease expired or was taken by a higher epoch.

    Raised by the lease's write fence *before* a WAL append or a
    replication handshake proceeds, so a paused-and-resumed ex-primary
    can never extend the history a new primary has already diverged
    from.  Latched: once lost, every subsequent check fails until the
    lease is explicitly re-acquired (under a new, higher epoch).
    """

    code: ClassVar[str] = "lease-lost"

    def __init__(self, reason: str) -> None:
        super().__init__(
            f"write lease lost: {reason} (writes are fenced; "
            f"re-acquire the lease to resume)"
        )
        self.reason = reason


class ReadOnlyReplicaError(SchemaError):
    """A write reached a node serving as a read-only replica.

    The HTTP service maps this to ``503`` with a ``Retry-After`` hint;
    the message names the primary so clients (and operators reading
    logs) know where writes belong.
    """

    code: ClassVar[str] = "read-only-replica"

    def __init__(self, primary: str) -> None:
        super().__init__(
            f"this node is a read-only replica; send writes to the "
            f"primary at {primary}"
        )
        self.primary = primary


def _collect_codes() -> dict[str, type]:
    registry: dict[str, type] = {}
    stack: list[type] = [EvolutionError]
    while stack:
        cls = stack.pop()
        registry.setdefault(cls.code, cls)
        stack.extend(cls.__subclasses__())
    return registry


#: code -> exception class, for every error defined in this module.  Late
#: subclasses (e.g. ``TransactionError``) register themselves on import via
#: :func:`register_error`.
ERROR_CODES: dict[str, type] = _collect_codes()


def register_error(cls: type) -> type:
    """Class decorator: add an :class:`EvolutionError` subclass defined
    outside this module (e.g. ``TransactionError``) to ``ERROR_CODES``."""
    ERROR_CODES.setdefault(cls.code, cls)
    return cls


def error_code(exc: BaseException) -> str:
    """The machine-readable code of any exception (``"internal"`` when it
    is not part of the evolution taxonomy)."""
    return getattr(exc, "code", "internal")


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit status for ``exc`` (see the module docstring table)."""
    return getattr(exc, "exit_code", EXIT_REJECTED)
