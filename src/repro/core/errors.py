"""Exception hierarchy for the axiomatic schema-evolution model.

Every error raised by :mod:`repro.core` derives from :class:`SchemaError`,
so callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the individual failure modes the paper
calls out (cycle introduction, dropping the root link, unknown types, ...).
"""

from __future__ import annotations

__all__ = [
    "SchemaError",
    "UnknownTypeError",
    "DuplicateTypeError",
    "CycleError",
    "RootViolationError",
    "PointednessViolationError",
    "AxiomViolationError",
    "OperationRejected",
    "UnknownPropertyError",
    "FrozenTypeError",
    "JournalError",
    "PlanError",
]


class SchemaError(Exception):
    """Base class for all schema-evolution errors."""


class UnknownTypeError(SchemaError, KeyError):
    """A referenced type is not a member of the lattice ``T``."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError would quote the repr otherwise
        return f"unknown type: {self.name!r}"


class DuplicateTypeError(SchemaError):
    """A type with the same identity already exists in the lattice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"type already exists: {name!r}")
        self.name = name


class CycleError(SchemaError):
    """Axiom of Acyclicity: the requested change would introduce a cycle.

    The paper (Section 3.3, MT-ASR): "Due to the axiom of acyclicity, the
    addition of a type as a supertype of another type is rejected if it
    introduces a cycle into the lattice."
    """

    def __init__(self, subtype: str, supertype: str) -> None:
        super().__init__(
            f"adding {supertype!r} as a supertype of {subtype!r} "
            f"would create a cycle"
        )
        self.subtype = subtype
        self.supertype = supertype


class RootViolationError(SchemaError):
    """Axiom of Rootedness: the change would disconnect a type from the root.

    TIGUKAT obeys rootedness, so "a subtype relationship to T_object cannot
    be dropped" and the root type itself cannot be dropped.
    """


class PointednessViolationError(SchemaError):
    """Axiom of Pointedness: the change would break the base type ``⊥``."""


class AxiomViolationError(SchemaError):
    """An axiom check failed; carries the structured violation list."""

    def __init__(self, violations: list) -> None:
        lines = "; ".join(str(v) for v in violations)
        super().__init__(f"axiom violations: {lines}")
        self.violations = list(violations)


class OperationRejected(SchemaError):
    """A schema-evolution operation was rejected by its precondition.

    Mirrors the paper's REJECT outcomes (e.g. Orion OP4 on the last
    superclass being OBJECT, or TIGUKAT DF on a function still implementing
    a behavior of a type with an associated class).
    """

    def __init__(self, operation: str, reason: str) -> None:
        super().__init__(f"{operation} rejected: {reason}")
        self.operation = operation
        self.reason = reason


class UnknownPropertyError(SchemaError, KeyError):
    """A referenced property is not known to the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown property: {self.name!r}"


class FrozenTypeError(SchemaError):
    """A primitive (frozen) type was the target of a destructive change.

    TIGUKAT restricts the primitive types of the model (Figure 2) from
    being dropped.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"primitive type cannot be modified or dropped: {name!r}")
        self.name = name


class JournalError(SchemaError):
    """The operation journal is corrupt or a replay failed."""


class PlanError(SchemaError):
    """An evolution plan file is unreadable or malformed."""
