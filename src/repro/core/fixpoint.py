"""Naive fixpoint derivation: Table 2 as literal simultaneous equations.

Section 2: "There are several simplifications that can be made to the
axioms in order to reduce the amount of mutual recursion among them.
Furthermore, several optimizations can be made to the way in which the
axioms generate their results."

The production engine (:mod:`repro.core.derivation`) *is* the simplified
form: one topological pass.  This module keeps the *unsimplified* form
alive: treat Axioms 5-9 as a system of simultaneous set equations and
iterate them from empty sets until a fixpoint.  On an acyclic ``Pe``
graph the least fixpoint equals the topological derivation — asserted by
the test suite on random lattices, and quantified as an ablation
benchmark (the fixpoint engine re-evaluates every equation each round;
the topological pass touches each type once).
"""

from __future__ import annotations

from typing import Mapping

from .applyall import union_apply_all
from .derivation import Derivation, NeMap, PeMap
from .errors import CycleError
from .properties import Property

__all__ = ["derive_fixpoint"]


def derive_fixpoint(
    pe: PeMap,
    ne: NeMap,
    max_rounds: int | None = None,
    initial: Derivation | None = None,
) -> Derivation:
    """Iterate Axioms 5-9 to their least fixpoint.

    ``max_rounds`` defaults to ``|T| + 2`` — on an acyclic graph the
    fixpoint is reached within ``depth + 1 ≤ |T|`` rounds; exceeding the
    bound means the Pe graph is cyclic and derivation cannot converge
    (reported as :class:`CycleError`, mirroring Axiom 2).

    ``initial`` warm-starts the iteration from a previous derivation
    (semi-naive style): after a small ``Pe``/``Ne`` change, most equations
    are already satisfied and the loop converges in a couple of rounds
    instead of ``depth + 1``.  Correct for *any* seed on an acyclic graph:
    the system has a unique fixpoint (each type's equations read only
    strictly-higher types, so every assignment is forced top-down by
    induction on depth), hence a change-free round certifies the answer
    regardless of where the iteration started.
    """
    types = [t for t in pe]
    pe_clean: dict[str, frozenset[str]] = {
        t: frozenset(s for s in pe[t] if s in pe) for t in types
    }
    limit = max_rounds if max_rounds is not None else len(types) + 2

    def seed(term: str, default):
        prior = getattr(initial, term) if initial is not None else {}
        return {
            t: prior[t] if t in prior else default(t) for t in types
        }

    p: dict[str, frozenset[str]] = seed("p", lambda t: frozenset())
    pl: dict[str, frozenset[str]] = seed("pl", lambda t: frozenset({t}))
    n: dict[str, frozenset[Property]] = seed("n", lambda t: frozenset())
    h: dict[str, frozenset[Property]] = seed("h", lambda t: frozenset())
    i: dict[str, frozenset[Property]] = seed("i", lambda t: frozenset())

    for _round in range(limit):
        changed = False
        for t in types:
            pe_t = pe_clean[t]
            # Axiom 5: P(t) = Pe(t) − ⋃ α_x(PL(x) ∩ Pe(t) − {x}, Pe(t))
            dominated = union_apply_all(
                lambda x: (pl[x] & pe_t) - {x}, pe_t
            )
            new_p = pe_t - dominated
            # Axiom 6: PL(t) = ⋃ α_x(PL(x), P(t)) ∪ {t}
            new_pl = union_apply_all(lambda x: pl[x], new_p) | {t}
            # Axiom 9: H(t) = ⋃ α_x(I(x), P(t))
            new_h = union_apply_all(lambda x: i[x], new_p)
            # Axiom 8: N(t) = Ne(t) − H(t)
            new_n = frozenset(ne[t]) - new_h
            # Axiom 7: I(t) = N(t) ∪ H(t)
            new_i = new_n | new_h
            if (
                new_p != p[t] or new_pl != pl[t] or new_h != h[t]
                or new_n != n[t] or new_i != i[t]
            ):
                changed = True
                p[t], pl[t], h[t], n[t], i[t] = (
                    new_p, new_pl, new_h, new_n, new_i
                )
        if not changed:
            break
    else:
        # Never reached a fixpoint inside the acyclicity bound.
        for t in types:
            if t in union_apply_all(lambda x: pl[x], pe_clean[t]):
                raise CycleError(t, sorted(pe_clean[t])[0])
        raise CycleError(types[0] if types else "?", "?")

    # A stable assignment on a cyclic graph can still exist in pathological
    # hand-made inputs; reject any t appearing above itself (Axiom 2).
    for t in types:
        above = union_apply_all(lambda x: pl[x], pe_clean[t])
        if t in above:
            raise CycleError(t, sorted(pe_clean[t])[0])

    order = tuple(sorted(types, key=lambda t: (len(pl[t]), t)))
    return Derivation(p=p, pl=pl, n=n, h=h, i=i, order=order)


def derive_fixpoint_from_views(
    pe: Mapping[str, frozenset[str]], ne: Mapping[str, frozenset[Property]]
) -> Derivation:
    """Alias used by benchmarks; identical to :func:`derive_fixpoint`."""
    return derive_fixpoint(pe, ne)
