"""Normalization: the minimal essential declarations for a derived lattice.

The derived lattice is a function of ``Pe``/``Ne``, but the function is
not injective — many essential declarations produce the same ``P``/``I``
structure (that freedom is what essentiality buys during *future*
evolution).  The **normal form** replaces each type's declarations with
the minimal ones that reproduce the current derived lattice exactly:

* ``Pe'(t) = P(t)`` — only the immediate supertypes are declared;
* ``Ne'(t) = N(t)`` — only the native properties are declared.

Normalizing loses exactly the designer's *insurance*: which dominated
ancestors and inherited properties should survive future drops.  It is
therefore an explicit maintenance action (compare a database ``VACUUM``),
not something the engine ever does implicitly.  The linter's
``redundant-essential-*`` findings enumerate precisely what normalization
would remove.

Theorems (property-tested):

1. ``derived(normalize(L)) == derived(L)`` — normalization preserves the
   derived lattice;
2. ``normalize`` is idempotent;
3. after normalization the lattice has zero redundant-essential lint
   findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = [
    "NormalizationReport",
    "normalize",
    "normalization_operations",
    "normalized_copy",
    "is_normalized",
]


@dataclass(frozen=True)
class NormalizationReport:
    """What normalization removed."""

    dropped_supertype_declarations: int
    dropped_property_declarations: int

    @property
    def changed(self) -> bool:
        return bool(
            self.dropped_supertype_declarations
            or self.dropped_property_declarations
        )


def normalize(lattice: "TypeLattice") -> NormalizationReport:
    """Rewrite ``Pe``/``Ne`` of every type to the minimal form, in place.

    Policy-managed entries are preserved: the implicit root membership of
    every ``Pe`` (rooted lattices) and the total ``Pe(⊥)`` (pointed
    lattices) are infrastructure, not designer declarations.  Frozen
    (primitive) types are left untouched.
    """
    deriv = lattice.derivation  # snapshot before edits
    root, base = lattice.root, lattice.base
    dropped_supers = 0
    dropped_props = 0
    for t in sorted(lattice.types()):
        if lattice.is_frozen(t) or t == base:
            continue
        keep_supers = set(deriv.p[t])
        if root is not None:
            keep_supers.add(root)
        for s in sorted(lattice.pe(t) - keep_supers):
            if lattice.drop_essential_supertype(t, s):
                dropped_supers += 1
        keep_props = deriv.n[t]
        for p in sorted(lattice.ne(t) - keep_props):
            if lattice.drop_essential_property(t, p):
                dropped_props += 1
    return NormalizationReport(dropped_supers, dropped_props)


def normalization_operations(lattice: "TypeLattice") -> list:
    """The normalization rewrite as journalable MT-DSR/MT-DB operations.

    Returns the exact drop operations :func:`normalize` would perform, in
    deterministic order, without mutating anything.  Callers that own a
    journal (the facade, the CLI) execute these through it so the rewrite
    is replayable and undoable instead of bypassing the op log.
    """
    from .operations import DropEssentialProperty, DropEssentialSupertype

    deriv = lattice.derivation
    root, base = lattice.root, lattice.base
    ops: list = []
    for t in sorted(lattice.types()):
        if lattice.is_frozen(t) or t == base:
            continue
        keep_supers = set(deriv.p[t])
        if root is not None:
            keep_supers.add(root)
        for s in sorted(lattice.pe(t) - keep_supers):
            ops.append(DropEssentialSupertype(t, s))
        for p in sorted(lattice.ne(t) - deriv.n[t]):
            ops.append(DropEssentialProperty(t, p))
    return ops


def normalized_copy(lattice: "TypeLattice") -> "TypeLattice":
    """A normalized copy, leaving the original untouched."""
    clone = lattice.copy()
    normalize(clone)
    return clone


def is_normalized(lattice: "TypeLattice") -> bool:
    """Whether every declaration is already minimal."""
    root, base = lattice.root, lattice.base
    for t in lattice.types():
        if lattice.is_frozen(t) or t == base:
            continue
        expected = set(lattice.p(t))
        if root is not None:
            expected.add(root)
        if set(lattice.pe(t)) != expected:
            return False
        if lattice.ne(t) != lattice.n(t):
            return False
    return True
