"""Lattice policies: the relaxable axioms and essentiality defaults.

The paper allows the Axiom of Rootedness and the Axiom of Pointedness to be
relaxed ("in which case the type lattice has many roots and is known as a
forest" / "the lattice has many leaves").  It also leaves the management of
``Pe``/``Ne`` open: "The specification of Pe and Ne can be system or user
managed ... the system may, as default, assume that all supertypes and
properties (including inherited properties) are essential in a given type,
or that none are essential."  :class:`LatticePolicy` captures those knobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EssentialityDefault", "LatticePolicy"]


class EssentialityDefault(enum.Enum):
    """How ``Pe``/``Ne`` are populated when a type is declared.

    ``EXPLICIT``
        Only what the designer states is essential (TIGUKAT's default in the
        paper: "the system may assume that only the initial supertypes and
        properties defined on a type are essential.  By default, none of the
        inherited properties are assumed to be essential").
    ``ALL_INHERITED``
        Everything reachable/inherited at declaration time is recorded as
        essential (the "all essential" extreme the paper mentions).
    """

    EXPLICIT = "explicit"
    ALL_INHERITED = "all-inherited"


@dataclass(frozen=True)
class LatticePolicy:
    """Configuration of the relaxable axioms and naming of ``⊤``/``⊥``.

    Parameters
    ----------
    rooted:
        Enforce the Axiom of Rootedness: a single root ``⊤`` supertype of
        every type.  When set, the root is implicitly in every ``Pe(t)``,
        the link to it cannot be dropped, and the root cannot be dropped.
    pointed:
        Enforce the Axiom of Pointedness: a single base ``⊥`` subtype of
        every type.  When set, every added type automatically joins
        ``Pe(⊥)`` (TIGUKAT: "the new type t is added to Pe(T_null) because
        all types are essential supertypes of this base type").
    root_name / base_name:
        Reference names for ``⊤`` and ``⊥`` (TIGUKAT: ``T_object`` and
        ``T_null``; Orion: ``OBJECT`` with pointedness relaxed).
    essentiality:
        Default population rule for ``Pe``/``Ne`` on type creation.
    """

    rooted: bool = True
    pointed: bool = True
    root_name: str = "T_object"
    base_name: str = "T_null"
    essentiality: EssentialityDefault = EssentialityDefault.EXPLICIT

    def __post_init__(self) -> None:
        if self.rooted and not self.root_name:
            raise ValueError("a rooted lattice needs a root_name")
        if self.pointed and not self.base_name:
            raise ValueError("a pointed lattice needs a base_name")
        if (
            self.rooted
            and self.pointed
            and self.root_name == self.base_name
        ):
            raise ValueError("root and base must be distinct types")

    @classmethod
    def tigukat(cls) -> "LatticePolicy":
        """TIGUKAT obeys both rootedness and pointedness (Section 3)."""
        return cls(rooted=True, pointed=True,
                   root_name="T_object", base_name="T_null")

    @classmethod
    def orion(cls) -> "LatticePolicy":
        """Orion: rooted at OBJECT, pointedness relaxed (Section 4)."""
        return cls(rooted=True, pointed=False,
                   root_name="OBJECT", base_name="")

    @classmethod
    def forest(cls) -> "LatticePolicy":
        """Both axioms relaxed: many roots, many leaves."""
        return cls(rooted=False, pointed=False, root_name="", base_name="")
