"""Schema linting: advisory findings about a lattice's designer state.

.. deprecated-ish:: the linter is now a thin compatibility shim over the
   static-analysis subsystem :mod:`repro.staticcheck`, where these five
   checks live as *schema-scope* rules in the pluggable diagnostics
   registry (alongside the plan-scope rules, severities, fix-its, and
   the SARIF emitter).  Existing callers of :func:`lint_lattice` /
   :data:`LINT_RULES` keep working unchanged.

The five historic findings
--------------------------
``redundant-essential-supertype``
    ``s ∈ Pe(t)`` is dominated (reachable through another essential
    supertype).
``redundant-essential-property``
    ``p ∈ Ne(t)`` is inherited, so it is not native.
``shadowed-name``
    two distinct properties share a display name in one interface.
``empty-interface``
    a non-root type whose interface is empty.
``single-subtype-chain``
    a pass-through type adding nothing to the interface.

See ``docs/staticcheck.md`` for the full (larger) rule catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["LintFinding", "lint_lattice", "LINT_RULES"]

#: The historic rule names, now ids in ``repro.staticcheck.REGISTRY``.
_RULE_IDS = (
    "redundant-essential-supertype",
    "redundant-essential-property",
    "shadowed-name",
    "empty-interface",
    "single-subtype-chain",
)


@dataclass(frozen=True)
class LintFinding:
    rule: str
    type_name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.type_name}: {self.detail}"


def lint_lattice(
    lattice: "TypeLattice", rules: tuple[str, ...] | None = None
) -> list[LintFinding]:
    """Run all (or the named) schema-scope analyzer rules over a lattice."""
    # Imported lazily: staticcheck depends on core, not the reverse.
    from ..staticcheck import analyze_schema

    selected = rules if rules is not None else _RULE_IDS
    for rule in selected:
        if rule not in _RULE_IDS:
            raise KeyError(rule)
    findings: list[LintFinding] = []
    for rule in selected:
        findings.extend(
            LintFinding(d.rule_id, d.subject, d.message)
            for d in analyze_schema(lattice, select=(rule,))
        )
    return findings


def _runner(rule_id: str) -> Callable[["TypeLattice"], list[LintFinding]]:
    def run(lattice: "TypeLattice") -> list[LintFinding]:
        return lint_lattice(lattice, rules=(rule_id,))

    return run


#: name -> callable(lattice) -> findings, kept for API compatibility.
LINT_RULES: dict[str, Callable[["TypeLattice"], list[LintFinding]]] = {
    rule_id: _runner(rule_id) for rule_id in _RULE_IDS
}
