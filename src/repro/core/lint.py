"""Schema linting: advisory findings about a lattice's designer state.

The axioms keep the schema *consistent*; the linter flags state that is
consistent but questionable — exactly the hygiene the paper's minimality
discussion motivates (Section 5).  Findings are advisory: none of them
block operations.

Findings
--------
``redundant-essential-supertype``
    ``s ∈ Pe(t)`` is dominated (reachable through another essential
    supertype).  Perfectly legal — that is what essentiality is *for* —
    but worth knowing: each one is a place where a future drop will
    re-establish a link the designer may have forgotten declaring.
``redundant-essential-property``
    ``p ∈ Ne(t)`` is inherited, so it is not native; dropping the
    defining supertype will silently adopt it.
``shadowed-name``
    two distinct properties share a display name in one interface (the
    conflict the axiomatic model surfaces and Orion resolves by order).
``empty-interface``
    a non-root type whose interface is empty — structurally fine,
    usually a modeling gap.
``single-subtype-chain``
    a type whose only role is to sit between one supertype and one
    subtype while adding nothing to the interface (a candidate for
    collapsing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..orion.conflict import find_name_conflicts_minimal

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["LintFinding", "lint_lattice", "LINT_RULES"]


@dataclass(frozen=True)
class LintFinding:
    rule: str
    type_name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.type_name}: {self.detail}"


def _redundant_supertypes(lattice: "TypeLattice") -> list[LintFinding]:
    out: list[LintFinding] = []
    base = lattice.base
    for t in sorted(lattice.types()):
        if t == base:
            continue  # Pe(⊥) is total by the pointedness policy
        dominated = lattice.pe(t) - lattice.p(t)
        root = lattice.root
        for s in sorted(dominated):
            if s == root:
                continue  # the implicit root declaration is policy
            out.append(
                LintFinding(
                    "redundant-essential-supertype", t,
                    f"{s!r} is reachable through another essential "
                    f"supertype (will be re-established on drops)",
                )
            )
    return out


def _redundant_properties(lattice: "TypeLattice") -> list[LintFinding]:
    out: list[LintFinding] = []
    for t in sorted(lattice.types()):
        inherited_essentials = lattice.ne(t) - lattice.n(t)
        for p in sorted(inherited_essentials):
            out.append(
                LintFinding(
                    "redundant-essential-property", t,
                    f"{p} is inherited; it will be adopted as native if "
                    f"its defining supertype disappears",
                )
            )
    return out


def _shadowed_names(lattice: "TypeLattice") -> list[LintFinding]:
    out: list[LintFinding] = []
    for t in sorted(lattice.types()):
        for name, keys in sorted(
            find_name_conflicts_minimal(lattice, t).items()
        ):
            out.append(
                LintFinding(
                    "shadowed-name", t,
                    f"name {name!r} denotes {sorted(keys)} in I({t})",
                )
            )
    return out


def _empty_interfaces(lattice: "TypeLattice") -> list[LintFinding]:
    out: list[LintFinding] = []
    for t in sorted(lattice.types()):
        if t in (lattice.root, lattice.base):
            continue
        if not lattice.interface(t):
            out.append(
                LintFinding("empty-interface", t, "interface is empty")
            )
    return out


def _single_subtype_chains(lattice: "TypeLattice") -> list[LintFinding]:
    out: list[LintFinding] = []
    base = lattice.base
    for t in sorted(lattice.types()):
        if t in (lattice.root, base):
            continue
        subtypes = lattice.subtypes(t) - ({base} if base else set())
        if (
            len(lattice.p(t)) == 1
            and len(subtypes) == 1
            and not lattice.n(t)
        ):
            out.append(
                LintFinding(
                    "single-subtype-chain", t,
                    "adds nothing to the interface between "
                    f"{next(iter(lattice.p(t)))!r} and "
                    f"{next(iter(subtypes))!r}",
                )
            )
    return out


LINT_RULES = {
    "redundant-essential-supertype": _redundant_supertypes,
    "redundant-essential-property": _redundant_properties,
    "shadowed-name": _shadowed_names,
    "empty-interface": _empty_interfaces,
    "single-subtype-chain": _single_subtype_chains,
}


def lint_lattice(
    lattice: "TypeLattice", rules: tuple[str, ...] | None = None
) -> list[LintFinding]:
    """Run all (or the named) lint rules over a lattice."""
    selected = rules if rules is not None else tuple(LINT_RULES)
    out: list[LintFinding] = []
    for rule in selected:
        out.extend(LINT_RULES[rule](lattice))
    return out
