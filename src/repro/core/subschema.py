"""Subschema extraction: the self-contained fragment around chosen types.

Modular schema management needs to lift a coherent fragment out of a
large lattice — e.g. to ship the "billing" types to another objectbase,
or to reason about one application area in isolation.  The extract of a
set of seed types is the *upward closure* of their essential structure:
every seed, every type reachable from a seed through ``Pe`` edges, the
``Pe`` edges among them, and their ``Ne`` declarations.

Upward closure is exactly what makes the fragment self-contained: the
Axiom of Closure (``Pe(t) ⊆ T``) holds in the extract by construction,
and every derived term of an extracted type is *identical* to its value
in the source lattice (PL/H/N/I only consult ancestors) — the extraction
theorem, property-tested.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from .errors import UnknownTypeError

if TYPE_CHECKING:  # pragma: no cover
    from .lattice import TypeLattice

__all__ = ["upward_closure", "extract_subschema"]


def upward_closure(
    lattice: "TypeLattice", seeds: Iterable[str]
) -> frozenset[str]:
    """The seeds plus everything reachable through ``Pe`` edges."""
    closure: set[str] = set()
    stack = list(seeds)
    for seed in stack:
        if seed not in lattice:
            raise UnknownTypeError(seed)
    while stack:
        t = stack.pop()
        if t in closure:
            continue
        closure.add(t)
        stack.extend(s for s in lattice.pe(t) if s in lattice)
    return frozenset(closure)


def extract_subschema(
    lattice: "TypeLattice", seeds: Iterable[str]
) -> "TypeLattice":
    """A new lattice containing exactly the upward closure of ``seeds``.

    The extract uses the source policy.  The base type (when pointed) is
    re-created by the policy and re-pointed at the extracted types only;
    it is never required as a seed.
    """
    from .lattice import TypeLattice

    members = upward_closure(lattice, seeds)
    extract = TypeLattice(lattice.policy)
    base = lattice.base
    order = [
        t for t in lattice.derivation.order
        if t in members and t not in extract and t != base
    ]
    for t in order:
        root = extract.root
        extract.add_type(
            t,
            supertypes=[
                s for s in lattice.pe(t)
                if s in members and s != root and s != base
            ],
            properties=sorted(lattice.ne(t)),
            frozen=lattice.is_frozen(t),
        )
    return extract
