#!/usr/bin/env python3
"""Schema governance: impact analysis, atomic transactions, and
reflective queries over a live objectbase.

A DBA-style session: inspect the schema reflectively, dry-run a risky
change to see its blast radius, apply a compound change atomically (with
automatic rollback on failure), and query instances behaviorally —
demonstrating the operational tooling built around the axiomatic model.

Run:  python examples/schema_governance.py
"""

from repro.core import (
    DropEssentialSupertype,
    DropType,
    EvolutionJournal,
    SchemaTransaction,
    check_all,
    join_unique,
    meet_unique,
)
from repro.core.operations import AddEssentialSupertype
from repro.query import B, schema_query, select
from repro.tigukat import (
    Objectbase,
    SchemaManager,
    analyze_objectbase_impact,
)


def build_store() -> tuple[Objectbase, SchemaManager]:
    store = Objectbase()
    mgr = SchemaManager(store)
    for semantics, name, rtype in [
        ("asset.id", "id", "T_string"),
        ("asset.value", "value", "T_real"),
        ("vehicle.range", "range", "T_real"),
        ("building.floors", "floors", "T_natural"),
        ("fleet.plate", "plate", "T_string"),
    ]:
        store.define_stored_behavior(semantics, name, rtype)
    mgr.at("T_asset", behaviors=("asset.id", "asset.value"),
           with_class=True)
    mgr.at("T_vehicle", ("T_asset",), ("vehicle.range",), with_class=True)
    mgr.at("T_building", ("T_asset",), ("building.floors",),
           with_class=True)
    mgr.at("T_fleetCar", ("T_vehicle",), ("fleet.plate",), with_class=True)
    for i in range(4):
        store.create_object("T_fleetCar", id=f"CAR-{i}", value=20000.0 + i,
                            range=400.0, plate=f"P{i:03d}")
    store.create_object("T_building", id="HQ", value=9e6, floors=11)
    return store, mgr


def main() -> None:
    store, mgr = build_store()
    q = schema_query(store)

    # --- reflective schema queries -----------------------------------------
    print("types understanding 'value':",
          sorted(t for t in q.types_understanding("value")
                 if t.startswith("T_") and not t.startswith("T_n")))
    print("types without extent:",
          sorted(t for t in q.types_without_extent()
                 if t.startswith("T_asset") or "vehicle" in t))
    print("join(T_fleetCar, T_building) =",
          join_unique(store.lattice, "T_fleetCar", "T_building"))
    print("meet(T_vehicle, T_asset) =",
          meet_unique(store.lattice, "T_vehicle", "T_asset"))

    # --- behavioral instance queries ----------------------------------------
    pricey = select(store, "T_asset").where(B("value") > 20001.0)
    print("\nassets worth > 20001:",
          sorted(store.apply(o, "id") for o in pricey))
    long_range = (B("range") >= 400.0) & ~(B("value") > 25000.0)
    print("affordable long-range vehicles:",
          select(store, "T_vehicle").where(long_range).count())

    # --- impact analysis before a risky change --------------------------------
    print("\n--- dry-run: what would DT(T_vehicle) do? ---")
    impact = analyze_objectbase_impact(store, DropType("T_vehicle"))
    print(impact.summary())
    print("(nothing was changed; the store is intact)")
    assert "T_vehicle" in store.lattice

    print("\n--- dry-run: drop the asset aspect from fleet cars? ---")
    impact = analyze_objectbase_impact(
        store, DropEssentialSupertype("T_fleetCar", "T_vehicle")
    )
    print(impact.summary())

    # --- atomic compound change -------------------------------------------------
    print("\n--- atomic re-parenting of T_fleetCar (transaction) ---")
    journal = EvolutionJournal(lattice=store.lattice)
    with SchemaTransaction(journal) as txn:
        txn.apply(AddEssentialSupertype("T_fleetCar", "T_asset"))
        txn.apply(DropEssentialSupertype("T_fleetCar", "T_vehicle"))
    print("committed:", txn.state,
          "| P(T_fleetCar) =", sorted(store.lattice.p("T_fleetCar")))

    print("\n--- a failing compound change rolls back completely ---")
    before = store.lattice.state_fingerprint()
    try:
        with SchemaTransaction(journal) as txn:
            txn.apply(DropEssentialSupertype("T_fleetCar", "T_asset"))
            txn.apply(DropType("T_object"))  # rejected: primitive root
    except Exception as exc:
        print("rejected as expected:", exc)
    print("state fully restored:",
          store.lattice.state_fingerprint() == before)

    print("\naxiom violations:", check_all(store.lattice))


if __name__ == "__main__":
    main()
