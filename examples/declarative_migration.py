#!/usr/bin/env python3
"""Declarative migration: schema-as-code with the DDL differ.

Declares the university schema as DDL text, lets the differ derive the
minimal evolution plan, applies it through the lint gate, then evolves
the objectbase twice more — a refactor (new supertype spliced into the
lattice) and a lossy change that the gate refuses at the `warn`
threshold. Throughout, migration is idempotent: re-applying a target
is a no-op.

Run:  python examples/declarative_migration.py
"""

from repro import Objectbase
from repro.core.errors import LintRejectedError

V1 = """
schema university;

type T_person {
    ne person.name as name;
    ne person.age as age;
}
type T_student : T_person {
    ne student.gpa as gpa;
}
type T_employee : T_person {
    ne employee.salary as salary;
}
type T_ta : T_student, T_employee;
"""

#: v2 splices T_member between T_person and its subtypes and adds a
#: property — a multi-step refactor declared as the desired end state.
V2 = """
schema university;

type T_person {
    ne person.name as name;
    ne person.age as age;
}
type T_member : T_person {
    ne member.id as id;
}
type T_student : T_member {
    ne student.gpa as gpa;
}
type T_employee : T_member {
    ne employee.salary as salary;
}
type T_ta : T_student, T_employee;
"""

#: v3 drops the gpa property — lossy, so the `warn` gate refuses it.
V3 = V2.replace("    ne student.gpa as gpa;\n", "")


def show_plan(plan) -> None:
    for i, op in enumerate(plan):
        print(f"  {i}  {op.code:<7} {op.describe()}")


def main() -> None:
    print("=" * 70)
    print("Declarative schema migration (repro.ddl)")
    print("=" * 70)

    ob = Objectbase.in_memory()

    print("\n--- v1: empty objectbase -> declared schema ----------------")
    result = ob.migrate_to(V1)
    show_plan(result.plan)
    print(result.summary())
    assert result.applied

    print("\nre-applying the same target is a no-op:")
    again = ob.migrate_to(V1)
    print(" ", again.summary())
    assert not again.applied and len(again.plan) == 0

    print("\n--- the live schema, exported as canonical DDL -------------")
    print(ob.schema_ddl(name="university"), end="")

    print("\n--- v2: splice T_member into the lattice -------------------")
    print("the differ derives the minimal, safely ordered plan:")
    result = ob.migrate_to(V2)
    show_plan(result.plan)
    print(result.summary())
    assert "T_member" in ob.lattice.pe("T_student")
    assert "T_person" not in ob.lattice.pe("T_student")

    print("\n--- v3: lossy drop, refused by the lint gate ---------------")
    try:
        ob.migrate_to(V3, lint="warn")
    except LintRejectedError as exc:
        print(f"rejected [{exc.code}]: nothing was applied")
        for d in exc.diagnostics:
            print(f"  {d['severity']}: {d['rule']}: {d['message']}")
    assert "T_student" in ob  # untouched

    print("\nthe default gate (errors only) lets the lossy plan through:")
    result = ob.migrate_to(V3)
    print(" ", result.summary())
    assert len(ob.diff_to(V3)) == 0  # converged

    print("\nok")


if __name__ == "__main__":
    main()
