#!/usr/bin/env python3
"""Quickstart: the axiomatic model on the paper's Figure 1 lattice.

Builds the university type lattice, shows how every derived term
(P, PL, N, H, I) is instantiated from the two designer inputs (Pe, Ne),
replays the paper's worked example (dropping essential supertypes of
T_teachingAssistant), and verifies soundness/completeness throughout.

Run:  python examples/quickstart.py
"""

from repro.core import (
    build_figure1_lattice,
    check_all,
    prop,
    verify,
)
from repro.viz import render_lattice, render_table2, render_type_card


def main() -> None:
    print("=" * 70)
    print("Axiomatization of Dynamic Schema Evolution — quickstart")
    print("=" * 70)

    # The Figure 1 lattice with the paper's essential declarations.
    lattice = build_figure1_lattice()
    print("\nFigure 1 (minimal P-edge view):\n")
    print(render_lattice(lattice))

    # Every term of Table 1, instantiated for the worked-example type.
    print("\nTable 1 terms at T_teachingAssistant:\n")
    print(render_type_card(lattice, "T_teachingAssistant"))

    # The nine axioms of Table 2, checked live.
    print("\nTable 2 status:\n")
    print(render_table2(lattice))

    # The worked example: schema evolution = changing Pe/Ne, the axioms
    # re-instantiate everything else.
    print("\n--- worked example -------------------------------------------")
    print("P(T_teachingAssistant) =",
          sorted(lattice.p("T_teachingAssistant")))
    lattice.drop_essential_supertype("T_teachingAssistant", "T_student")
    print("after dropping T_student from Pe:  P =",
          sorted(lattice.p("T_teachingAssistant")))
    lattice.drop_essential_supertype("T_teachingAssistant", "T_employee")
    print("after dropping T_employee from Pe: P =",
          sorted(lattice.p("T_teachingAssistant")),
          "(the essential T_person is re-established)")
    print("T_taxSource lost (was never essential):",
          "T_taxSource" not in lattice.pl("T_teachingAssistant"))

    # Essential-property adoption: drop the type defining taxBracket.
    print("\n--- essential-property adoption ------------------------------")
    tb = prop("taxSource.taxBracket")
    print("taxBracket native in T_employee before:",
          tb in lattice.n("T_employee"))
    lattice.drop_type("T_taxSource")
    print("taxBracket native in T_employee after DT(T_taxSource):",
          tb in lattice.n("T_employee"))

    # Theorems 2.1/2.2, machine-checked against the oracle.
    violations = check_all(lattice)
    report = verify(lattice)
    print("\naxiom violations:", violations)
    print("soundness/completeness:", report)
    assert not violations and report.ok


if __name__ == "__main__":
    main()
