#!/usr/bin/env python3
"""Engineering design: the paper's motivating application domain.

"In an engineering design application many components of an overall
design may go through several modifications before a final product
design is achieved.  These kinds of changes require modifications to the
way components are modeled (i.e., the schema)."

A robot-arm design goes through four iterations; every iteration is a
schema change applied while instances exist, propagated with a different
coercion strategy each time, versioned temporally, and persisted through
the write-ahead journal so the design history survives restarts.

Run:  python examples/engineering_design.py
"""

import tempfile
from pathlib import Path

from repro.core import (
    AddEssentialProperty,
    AddType,
    check_all,
    prop,
)
from repro.propagation import (
    ConversionStrategy,
    FilteringStrategy,
    TemporalSchema,
)
from repro.storage.journal import DurableLattice
from repro.tigukat import Objectbase, SchemaManager
from repro.viz import render_lattice, render_type_card


def main() -> None:
    store = Objectbase()
    mgr = SchemaManager(store)
    temporal = TemporalSchema(store.lattice)

    # -- iteration 0: initial component taxonomy -------------------------
    for semantics, name, rtype in [
        ("component.partNo", "partNo", "T_string"),
        ("component.mass", "mass", "T_real"),
        ("electrical.voltage", "voltage", "T_real"),
        ("mechanical.torque", "torque", "T_real"),
        ("arm.reach", "reach", "T_real"),
    ]:
        store.define_stored_behavior(semantics, name, rtype)
    mgr.at("T_component", behaviors=("component.partNo", "component.mass"),
           with_class=True)
    mgr.at("T_electrical", ("T_component",), ("electrical.voltage",),
           with_class=True)
    mgr.at("T_mechanical", ("T_component",), ("mechanical.torque",),
           with_class=True)
    mgr.at("T_armSegment", ("T_mechanical",), ("arm.reach",),
           with_class=True)
    temporal.commit("iteration 0: taxonomy")

    segment = store.create_object(
        "T_armSegment", partNo="ARM-001", mass=2.4, torque=12.0, reach=0.6,
    )
    print("Design taxonomy:")
    print(render_lattice(store.lattice, root="T_component"))

    # -- iteration 1: arm segments become electro-mechanical -------------
    print("\n>>> iteration 1: MT-ASR — arm segments gain the electrical aspect")
    mgr.mt_asr("T_armSegment", "T_electrical")
    temporal.commit("iteration 1: electro-mechanical arms")
    store.apply(segment, "voltage", 48.0)
    print(render_type_card(store.lattice, "T_armSegment"))

    # -- iteration 2: torque turns out essential to arms -----------------
    print("\n>>> iteration 2: torque declared essential on T_armSegment")
    mgr.mt_ab("T_armSegment", "mechanical.torque")
    # ... so when the mechanical aspect is later dropped, torque is
    # adopted as native instead of being lost (the taxBracket pattern).
    mgr.mt_dsr("T_armSegment", "T_mechanical")
    conversion = ConversionStrategy(store)
    conversion.on_schema_change(frozenset({"T_armSegment"}))
    temporal.commit("iteration 2: electrical-only, torque adopted")
    native = {p.name for p in store.lattice.n("T_armSegment")}
    print("native on T_armSegment now:", sorted(native))
    assert "torque" in native
    print("segment torque survives:", store.apply(segment, "torque"))

    # -- iteration 3: tentative de-rating, filtered (reversible) ---------
    print("\n>>> iteration 3: tentatively drop 'reach' (filtering: reversible)")
    filtering = FilteringStrategy(store)
    mgr.mt_db("T_armSegment", "arm.reach")
    print("reach visible?", filtering.read_slot(segment, "arm.reach"))
    print("...design review says keep it; undo the change")
    mgr.mt_ab("T_armSegment", "arm.reach")
    print("reach restored without data loss:",
          filtering.read_slot(segment, "arm.reach"))

    # -- persist the final schema through the WAL ------------------------
    print("\n>>> persisting the design schema (write-ahead journal)")
    with tempfile.TemporaryDirectory() as tmp:
        wal = Path(tmp) / "design.wal"
        durable = DurableLattice(wal)
        durable.apply(AddType("T_component",
                              properties=(prop("component.partNo"),
                                          prop("component.mass"))))
        durable.apply(AddType("T_electrical", ("T_component",),
                              (prop("electrical.voltage"),)))
        durable.apply(AddType("T_armSegment", ("T_electrical",),
                              (prop("arm.reach"),
                               prop("mechanical.torque"))))
        durable.apply(AddEssentialProperty("T_armSegment",
                                           prop("arm.payload")))
        durable.apply(AddEssentialProperty("T_electrical",
                                           prop("electrical.current")))
        durable.checkpoint()
        reopened = DurableLattice.reopen(wal)
        same = (reopened.lattice.state_fingerprint()
                == durable.lattice.state_fingerprint())
        print("restart recovery identical:", same)
        assert same

    # -- design history ---------------------------------------------------
    print("\nDesign history (temporal versions):")
    for entry in temporal.interface_history("T_armSegment"):
        version, iface = entry
        print(f"  v{version}: I(T_armSegment) = "
              f"{sorted(p.name for p in iface)}")

    assert check_all(store.lattice) == []
    print("\nall nine axioms hold after the full design session")


if __name__ == "__main__":
    main()
