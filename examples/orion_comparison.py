#!/usr/bin/env python3
"""Reducing Orion to the axiomatic model and comparing it with TIGUKAT.

Reproduces Section 4 (the OP1-OP8 reduction, machine-checked) and the
Section 5 comparison: the order-dependence of Orion's edge drops vs.
TIGUKAT's order independence, the minimal-supertype payoff, and why the
reverse reduction (axioms → Orion) is impossible.

Run:  python examples/orion_comparison.py
"""

from repro.analysis import LatticeSpec, run_order_experiment
from repro.orion import (
    OrionOps,
    OrionProperty,
    ReducedOrion,
    check_equivalent,
    check_invariants,
    reverse_reduction_counterexample,
)
from repro.systems import (
    EncoreSchema,
    GemStoneSchema,
    OrionSystem,
    SherpaSchema,
    TigukatSystem,
)
from repro.viz import render_comparison


def main() -> None:
    print("=" * 70)
    print("Section 4: Orion reduced to the axiomatic model")
    print("=" * 70)

    # Drive the native Orion database and its axiomatic reduction
    # through the same OP stream, in lockstep.
    native, reduced = OrionOps(), ReducedOrion()
    script = [
        ("op6", ("PERSON", None)),
        ("op6", ("STUDENT", "PERSON")),
        ("op6", ("EMPLOYEE", "PERSON")),
        ("op6", ("TA", "STUDENT")),
        ("op3", ("TA", "EMPLOYEE")),
        ("op1", ("PERSON", OrionProperty("name", "STRING"))),
        ("op1", ("STUDENT", OrionProperty("id", "NAT"))),
        ("op1", ("EMPLOYEE", OrionProperty("id", "STRING"))),
        ("op5", ("TA", ["EMPLOYEE", "STUDENT"])),
        ("op4", ("TA", "STUDENT")),
        ("op7", ("EMPLOYEE",)),
        ("op8", ("STUDENT", "PUPIL")),
    ]
    for op, args in script:
        getattr(native, op)(*args)
        getattr(reduced, op)(*args)
        report = check_equivalent(native.db, reduced)
        print(f"{op}{args!r:<60} equivalent: {report.equivalent}")
        assert report.equivalent, str(report)

    print("\nOrion invariants:", check_invariants(native.db) or "all hold")
    print("final classes:", sorted(reduced.classes()))
    print("TA's conflict-resolved interface:",
          reduced.resolved_interface("TA"))

    print("\n" + "=" * 70)
    print("Why the reverse reduction fails (Section 4)")
    print("=" * 70)
    cx = reverse_reduction_counterexample()
    print("two types, identical to Orion (same P):",
          cx["identical_p_before"])
    print("after dropping the shared supertype:")
    print("  P(A) =", sorted(cx["p_A_after"]),
          " (A had declared T_top essential)")
    print("  P(B) =", sorted(cx["p_B_after"]),
          " (B had not)")
    print("Orion cannot represent that distinction -> not reducible to.")

    print("\n" + "=" * 70)
    print("Section 5: edge-drop order (in)dependence")
    print("=" * 70)
    result = run_order_experiment(
        n_trials=20, n_drops=5, n_orders=8, spec=LatticeSpec(n_types=16)
    )
    for label, value in result.summary_rows():
        print(f"  {label}: {value}")
    assert result.tigukat_divergence_rate == 0.0

    print("\n" + "=" * 70)
    print("Section 5: five systems through the common framework")
    print("=" * 70)
    print(render_comparison(
        TigukatSystem(), OrionSystem(), GemStoneSchema(), EncoreSchema(),
        SherpaSchema(),
    ))


if __name__ == "__main__":
    main()
