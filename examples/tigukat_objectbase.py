#!/usr/bin/env python3
"""A tour of the TIGUKAT objectbase: uniformity in action.

"The model is uniform in that every component of information, including
its semantics, is modeled as a first-class object with well-defined
behavior."  Types, classes, behaviors, functions and collections are all
objects here; schema is queried by applying behaviors to type objects;
stored attributes and computed methods are interchangeable behaviors.

Run:  python examples/tigukat_objectbase.py
"""

from repro.core import Oid
from repro.tigukat import (
    FunctionKind,
    Objectbase,
    SchemaManager,
    schema_oids,
    schema_sets,
)
from repro.viz import render_table3


def main() -> None:
    store = Objectbase()
    mgr = SchemaManager(store)

    print("bootstrap objectbase:", store)

    # --- everything is an object ----------------------------------------
    t_person_behaviors = [
        ("person.name", "name", "T_string"),
        ("person.birthYear", "birthYear", "T_natural"),
        ("person.age", "age", "T_natural"),
    ]
    for semantics, name, rtype in t_person_behaviors:
        store.define_stored_behavior(semantics, name, rtype)
    mgr.at("T_person", behaviors=tuple(s for s, _, _ in t_person_behaviors),
           with_class=True)

    type_obj = store.type_object("T_person")
    behavior_obj = store.behavior("person.age")
    class_obj = store.class_of("T_person")
    print("\nuniformity — all constructs have OIDs:")
    print("  type object:    ", repr(type_obj))
    print("  behavior object:", repr(behavior_obj), "->", behavior_obj)
    print("  class object:   ", repr(class_obj), "->", class_obj)

    # --- schema queried behaviorally --------------------------------------
    print("\nschema via behavior application (o.b dot notation):")
    print("  T_person.supertypes   =", store.apply(type_obj, "supertypes"))
    print("  T_person.super-lattice =",
          store.apply(type_obj, "super-lattice"))
    print("  |T_person.interface|  =",
          len(store.apply(type_obj, "interface")))

    # --- stored vs computed: one mechanism --------------------------------
    david = store.create_object("T_person", name="David", birthYear=1995)
    store.apply(david, "age", 30)
    print("\nstored 'age':", store.apply(david, "age"))

    computed_age = store.define_function(
        "age_from_birthYear", FunctionKind.COMPUTED,
        body=lambda s, r: 2026 - s.apply(r, "birthYear"),
    )
    mgr.mb_ca("person.age", "T_person", computed_age)
    print("computed 'age' after MB-CA (same call site!):",
          store.apply(david, "age"))

    # --- subtyping with overriding -----------------------------------------
    store.define_stored_behavior("robot.model", "model", "T_string")
    mgr.at("T_robot", ("T_person",), ("robot.model",), with_class=True)
    eternal = store.define_function(
        "robot_age", FunctionKind.COMPUTED, body=lambda s, r: 0,
    )
    mgr.mb_ca("person.age", "T_robot", eternal)
    robot = store.create_object("T_robot", model="R2", birthYear=1977)
    print("\nlate binding: robot.age =", store.apply(robot, "age"),
          "| david.age =", store.apply(david, "age"))

    # --- the schema, per Definitions 3.1/3.2 ------------------------------
    sets = schema_sets(store)
    print("\nDefinition 3.2 — the schema object sets:")
    print(f"  TSO={len(sets.tso)} BSO={len(sets.bso)} FSO={len(sets.fso)} "
          f"LSO={len(sets.lso)} CSO={len(sets.cso)}")
    print("  |schema| =", len(schema_oids(store)))
    print("  david is schema?", david.oid in schema_oids(store))

    # --- collections vs classes --------------------------------------------
    team = store.add_collection("team", member_type="T_person")
    team.insert(david.oid)
    team.insert(robot.oid)  # heterogeneous up to the advisory member type
    print("\ncollection 'team' members:", len(team))
    mgr.dl("team")
    print("after DL, david still exists:", david.oid in store)

    # --- Table 3, regenerated ------------------------------------------------
    print("\nTable 3 (classification of schema changes):\n")
    print(render_table3())


if __name__ == "__main__":
    main()
