#!/usr/bin/env python3
"""Type versioning two ways: Encore natively, and as "just more types"
inside the axiomatic model.

Skarra & Zdonik's Encore evolves types by creating *versions*: instances
stay bound to the version that created them, and handler functions
mediate cross-version access.  The paper's Section 4 claim is that this
whole mechanism is "representable by the axiomatic model" — this example
shows both sides: the native version-set machinery with handlers, its
reduction to a supertype chain of version-types, and the TIGUKAT-side
equivalent built from temporal schema snapshots.

Run:  python examples/type_versioning.py
"""

from repro.core import check_all
from repro.propagation import TemporalSchema
from repro.systems import EncoreSchema
from repro.tigukat import Objectbase, SchemaManager
from repro.viz import render_lattice


def encore_side() -> None:
    print("=" * 70)
    print("Encore: native type versioning with access handlers")
    print("=" * 70)
    enc = EncoreSchema()
    enc.define_type("Part", {"id", "weight_lbs"})
    old_part = enc.create_instance("Part", id=1, weight_lbs=4.4)

    # Evolution: the design team goes metric.  v2 replaces weight_lbs.
    enc.add_property("Part", "weight_kg")
    enc.drop_property("Part", "weight_lbs")          # now at v3
    new_part = enc.create_instance("Part", id=2, weight_kg=1.5)

    print("old part bound to v", enc.bound_version(old_part),
          "| new part bound to v", enc.bound_version(new_part))
    print("version-set interface:",
          sorted(enc.version_set("Part").interface()))

    # Readers written against v3 want weight_kg from v1 instances: the
    # handler computes it from the old representation.
    enc.install_handler(
        "Part", "weight_kg", 3,
        lambda state: round(state["weight_lbs"] * 0.4536, 3),
    )
    print("v1 instance read through v3 interface:",
          enc.read(old_part, "weight_kg"))

    # The reduction: versions become a chain of types.
    lattice = enc.to_axiomatic()
    print("\nreduction (each version is a type):")
    print(render_lattice(lattice, root="Part@v1"))
    print("axiom violations:", check_all(lattice))


def tigukat_side() -> None:
    print("\n" + "=" * 70)
    print("TIGUKAT: the same history via temporal schema snapshots")
    print("=" * 70)
    store = Objectbase()
    mgr = SchemaManager(store)
    temporal = TemporalSchema(store.lattice)

    store.define_stored_behavior("part.id", "id", "T_natural")
    store.define_stored_behavior("part.weight_lbs", "weight_lbs", "T_real")
    store.define_stored_behavior("part.weight_kg", "weight_kg", "T_real")
    mgr.at("T_part", behaviors=("part.id", "part.weight_lbs"),
           with_class=True)
    temporal.commit("v1: imperial")

    mgr.mt_ab("T_part", "part.weight_kg")
    temporal.commit("v2: both units")
    mgr.mt_db("T_part", "part.weight_lbs")
    temporal.commit("v3: metric only")

    print("interface history of T_part:")
    for version, iface in temporal.interface_history("T_part"):
        print(f"  v{version}: {sorted(p.name for p in iface)}")
    print("diff v1 -> v3:", temporal.diff(1, 3))

    # The axiomatic reading of Encore's version set interface: the union
    # over versions — computable straight off the snapshots.
    union = set()
    for v in range(1, len(temporal)):
        union |= {p.name for p in temporal.interface_at("T_part", v)}
    print("union over versions (the 'version-set interface'):",
          sorted(union))


def main() -> None:
    encore_side()
    tigukat_side()


if __name__ == "__main__":
    main()
