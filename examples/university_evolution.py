#!/usr/bin/env python3
"""A university objectbase evolving while in operation.

Full TIGUKAT stack: behaviors, types, classes, instances — then dynamic
schema evolution (Section 3.3 operations) with lazy change propagation
(screening) and temporal versioning, all while the nine axioms are
verified after every step.

Run:  python examples/university_evolution.py
"""

from repro.core import check_all
from repro.propagation import ScreeningStrategy, TemporalSchema
from repro.tigukat import Objectbase, SchemaManager, schema_sets
from repro.viz import render_lattice


def main() -> None:
    store = Objectbase()
    mgr = SchemaManager(store)
    temporal = TemporalSchema(store.lattice)
    screening = ScreeningStrategy(store)

    # --- build the schema (behaviors first, then types + classes) -----
    for semantics, name, rtype in [
        ("person.name", "name", "T_string"),
        ("person.age", "age", "T_natural"),
        ("taxSource.name", "name", "T_string"),
        ("taxSource.taxBracket", "taxBracket", "T_natural"),
        ("employee.salary", "salary", "T_real"),
        ("student.gpa", "gpa", "T_real"),
        ("ta.course", "course", "T_string"),
    ]:
        store.define_stored_behavior(semantics, name, rtype)

    mgr.at("T_person", behaviors=("person.name", "person.age"),
           with_class=True)
    mgr.at("T_taxSource",
           behaviors=("taxSource.name", "taxSource.taxBracket"))
    mgr.at("T_student", ("T_person",), ("student.gpa",), with_class=True)
    mgr.at("T_employee", ("T_person", "T_taxSource"),
           ("employee.salary", "taxSource.taxBracket"), with_class=True)
    mgr.at("T_teachingAssistant", ("T_student", "T_employee"),
           ("ta.course",), with_class=True)
    temporal.commit("initial university schema")

    print("University schema:")
    print(render_lattice(store.lattice, root="T_object"))

    # --- populate instances --------------------------------------------
    david = store.create_object(
        "T_teachingAssistant", gpa=3.8, salary=1800.0, course="CMPUT 391",
    )
    store.apply(david, "person.name", "David")
    ada = store.create_object("T_student", gpa=4.0)
    store.apply(ada, "person.name", "Ada")

    print("\nDavid:", store.apply(david, "person.name"),
          "| course:", store.apply(david, "course"),
          "| salary:", store.apply(david, "salary"))

    sets = schema_sets(store)
    print(f"schema: |TSO|={len(sets.tso)} |BSO|={len(sets.bso)} "
          f"|FSO|={len(sets.fso)} |CSO|={len(sets.cso)}")

    # --- evolve while in operation --------------------------------------
    print("\n>>> MT-DSR: teaching assistants cease to be employees")
    mgr.mt_dsr("T_teachingAssistant", "T_employee")
    screening.on_schema_change(frozenset({"T_teachingAssistant"}))
    temporal.commit("TAs are no longer employees")

    # "if teaching assistants cease to be employees ... they
    # automatically cease to be taxable sources."
    print("TA still a taxSource?",
          store.lattice.is_subtype("T_teachingAssistant", "T_taxSource"))
    # David's salary slot is stranded; screening coerces on access.
    print("David salary slot before access:",
          david._get_slot("employee.salary"))
    print("David salary via screening:",
          screening.read_slot(david, "employee.salary"))
    print("instances screened so far:", screening.coerced_count)

    print("\n>>> DT with migration: retire T_student, keep the students")
    mgr.dt("T_student", migrate_to="T_person")
    print("Ada is now a:", store.get(ada.oid).type_name)
    print("Ada's name survived:", store.apply(ada.oid, "person.name"))

    # --- temporal queries ------------------------------------------------
    print("\nSchema history:")
    for v in range(len(temporal)):
        types = temporal.version(v).types()
        print(f"  v{v} ({temporal.version(v).label}): {len(types)} types")
    print("diff v1 -> v2:", temporal.diff(1, 2))

    violations = check_all(store.lattice)
    print("\naxiom violations after the whole session:", violations)
    assert violations == []


if __name__ == "__main__":
    main()
